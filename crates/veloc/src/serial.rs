//! Checkpoint blob formats.
//!
//! **VCF1** (format version 1): one checkpoint = all protected regions of
//! one rank, packed into a single integrity-framed blob:
//!
//! ```text
//! [4  bytes magic "VCF1"]
//! [u32 crc32(body)]            // IEEE 802.3 polynomial, over `body`
//! body:
//!   [u32 region_count]
//!   repeat region_count times:
//!     [u32 region_id][u64 payload_len][payload bytes]
//! ```
//!
//! **VCF2** (format version 2): an *incremental* frame. Regions whose
//! dirty-tracking generation did not move since the last committed version
//! are referenced by id only; their payloads live in the frame of
//! `base_version` (which may itself be a delta — restart walks the chain).
//! Payload integrity moves from one whole-blob CRC to per-region CRCs, so a
//! frame's changed payloads are checkable without the base frames in hand
//! and the parallel pack pool can compute CRCs region-by-region:
//!
//! ```text
//! [4  bytes magic "VCF2"]
//! [u32 crc32(meta)]            // over `meta` only; payloads carry their own
//! meta:
//!   [u64 base_ref]             // 0 = full frame; else base_version + 1
//!   [u32 changed_count]
//!   [u32 unchanged_count]      // must be 0 when base_ref is 0
//!   repeat unchanged_count times: [u32 region_id]
//!   repeat changed_count   times: [u32 region_id][u64 payload_len][u32 crc32(payload)]
//! payloads: changed payloads concatenated, in `changed` order
//! ```
//!
//! Restores match regions by id, so a restart can tolerate registration in
//! a different order (Kokkos Resilience re-registers views after a context
//! reset). [`unpack_any`] sniffs the magic, so VCF1 blobs written before
//! this format existed still restore.
//!
//! The CRC frames exist because the structural checks alone cannot catch a
//! flipped byte *inside* a region payload — without them, a corrupted blob
//! would silently restore garbage application state. [`unpack`] and
//! [`unpack_any`] reject any blob whose checksums do not match, turning
//! silent corruption into the typed [`crate::VelocError::Corrupt`] the
//! restart path degrades on.
//!
//! The `chaos-mutants` feature re-enables the garbage-restore bug by
//! skipping every checksum comparison in both formats (structure is still
//! parsed). It exists only so the chaos campaign can prove it catches
//! exactly this class of bug (`crates/chaos/tests/mutant.rs`); never enable
//! it in normal builds.

use bytes::{BufMut, Bytes, BytesMut};

/// Leading magic of a full, self-contained checkpoint blob (format
/// version 1).
pub const MAGIC: [u8; 4] = *b"VCF1";

/// Leading magic of an incremental checkpoint frame (format version 2).
pub const MAGIC2: [u8; 4] = *b"VCF2";

/// Lookup tables for the slice-by-16 [`crc32`], built at compile time from
/// the bitwise recurrence. `CRC_TABLES[0]` is the classic one-byte-at-a-time
/// table; `CRC_TABLES[k]` carries a byte through `k` further zero bytes, so
/// one loop iteration folds 16 input bytes at once.
const CRC_TABLES: [[u32; 256]; 16] = {
    let mut t = [[0u32; 256]; 16];
    let mut i = 0usize;
    while i < 256 {
        let mut crc = i as u32;
        let mut j = 0;
        while j < 8 {
            crc = if crc & 1 == 1 {
                0xEDB8_8320 ^ (crc >> 1)
            } else {
                crc >> 1
            };
            j += 1;
        }
        t[0][i] = crc;
        i += 1;
    }
    let mut k = 1usize;
    while k < 16 {
        let mut i = 0usize;
        while i < 256 {
            t[k][i] = (t[k - 1][i] >> 8) ^ t[0][(t[k - 1][i] & 0xFF) as usize];
            i += 1;
        }
        k += 1;
    }
    t
};

/// CRC32 (IEEE 802.3, reflected) of `data`.
///
/// Slice-by-16: sixteen compile-time tables fold 16 bytes per iteration
/// where the bit loop needed 128 shift-and-mask steps, which is what keeps
/// whole-chain verification on the restart path memory-bound rather than
/// compute-bound. Every table index is a single byte, so no corrupted
/// length can steer a lookup out of bounds. [`crc32_bitwise`] is the
/// definitional form this implementation is property-tested against.
pub fn crc32(data: &[u8]) -> u32 {
    // Lookup with the index masked to a byte: infallible by construction,
    // and expressed via `get` (not `[...]`) so the recovery path carries no
    // reachable panic — the mask proves the bound, so the fallback folds
    // away in codegen.
    #[inline(always)]
    fn tab(t: &[u32; 256], i: u32) -> u32 {
        t.get((i & 0xFF) as usize).copied().unwrap_or(0)
    }
    let [t0, t1, t2, t3, t4, t5, t6, t7, t8, t9, t10, t11, t12, t13, t14, t15] = &CRC_TABLES;
    let mut crc = 0xFFFF_FFFFu32;
    let mut bytes = data;
    while let [b0, b1, b2, b3, b4, b5, b6, b7, b8, b9, b10, b11, b12, b13, b14, b15, rest @ ..] =
        bytes
    {
        let folded = crc ^ u32::from_le_bytes([*b0, *b1, *b2, *b3]);
        crc = tab(t15, folded)
            ^ tab(t14, folded >> 8)
            ^ tab(t13, folded >> 16)
            ^ tab(t12, folded >> 24)
            ^ tab(t11, *b4 as u32)
            ^ tab(t10, *b5 as u32)
            ^ tab(t9, *b6 as u32)
            ^ tab(t8, *b7 as u32)
            ^ tab(t7, *b8 as u32)
            ^ tab(t6, *b9 as u32)
            ^ tab(t5, *b10 as u32)
            ^ tab(t4, *b11 as u32)
            ^ tab(t3, *b12 as u32)
            ^ tab(t2, *b13 as u32)
            ^ tab(t1, *b14 as u32)
            ^ tab(t0, *b15 as u32);
        bytes = rest;
    }
    for &b in bytes {
        crc = tab(t0, crc ^ b as u32) ^ (crc >> 8);
    }
    crc ^ 0xFFFF_FFFF
}

/// CRC32 (IEEE 802.3, reflected) of `data`, one bit at a time — the
/// polynomial's definition. Kept solely as the oracle [`crc32`] is
/// property-tested against (`tests/serial_props.rs` and the bench's
/// measured-speedup gate); no production path calls it.
pub fn crc32_bitwise(data: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in data {
        crc ^= b as u32;
        for _ in 0..8 {
            crc = if crc & 1 == 1 {
                0xEDB8_8320 ^ (crc >> 1)
            } else {
                crc >> 1
            };
        }
    }
    crc ^ 0xFFFF_FFFF
}

/// Pack `(id, payload)` pairs into one checkpoint blob.
pub fn pack(regions: &[(u32, Bytes)]) -> Bytes {
    let body_len: usize = 4 + regions.iter().map(|(_, b)| 12 + b.len()).sum::<usize>();
    let mut body = BytesMut::with_capacity(body_len);
    body.put_u32_le(regions.len() as u32);
    for (id, payload) in regions {
        body.put_u32_le(*id);
        body.put_u64_le(payload.len() as u64);
        body.put_slice(payload);
    }
    let body = body.freeze();
    let mut buf = BytesMut::with_capacity(8 + body.len());
    buf.put_slice(&MAGIC);
    buf.put_u32_le(crc32(&body));
    buf.put_slice(&body);
    buf.freeze()
}

/// Unpack a checkpoint blob into `(id, payload)` pairs.
///
/// Returns `None` on a malformed blob — wrong magic, checksum mismatch,
/// truncation, bad counts — a restart from a corrupt checkpoint must fail
/// cleanly, not panic, and must never silently return wrong data.
pub fn unpack(blob: &Bytes) -> Option<Vec<(u32, Bytes)>> {
    if blob.len() < 8 || blob[..4] != MAGIC {
        return None;
    }
    let stored_crc = u32::from_le_bytes(blob[4..8].try_into().ok()?);
    let body = blob.slice(8..);
    // The seeded chaos mutant: skipping this verification re-enables the
    // garbage-restore path the CRC frame exists to close.
    #[cfg(not(feature = "chaos-mutants"))]
    if crc32(&body) != stored_crc {
        return None;
    }
    #[cfg(feature = "chaos-mutants")]
    let _ = stored_crc;

    let mut off = 0usize;
    let take = |off: &mut usize, n: usize| -> Option<&[u8]> {
        let s = body.get(*off..*off + n)?;
        *off += n;
        Some(s)
    };
    let count = u32::from_le_bytes(take(&mut off, 4)?.try_into().ok()?) as usize;
    // Guard against absurd counts from corrupt headers.
    if count > body.len() {
        return None;
    }
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        let id = u32::from_le_bytes(take(&mut off, 4)?.try_into().ok()?);
        let len = u64::from_le_bytes(take(&mut off, 8)?.try_into().ok()?) as usize;
        if off + len > body.len() {
            return None;
        }
        out.push((id, body.slice(off..off + len)));
        off += len;
    }
    if off != body.len() {
        return None; // trailing garbage
    }
    Some(out)
}

/// One changed region as it enters a VCF2 frame: payload plus its CRC,
/// precomputed so the parallel pack pool can fan the checksum work out and
/// [`pack_frame`] only assembles bytes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PackedRegion {
    pub id: u32,
    pub payload: Bytes,
    pub crc: u32,
}

impl PackedRegion {
    pub fn new(id: u32, payload: Bytes) -> Self {
        let crc = crc32(&payload);
        PackedRegion { id, payload, crc }
    }
}

/// A decoded checkpoint frame, either format version.
///
/// A VCF1 blob decodes as a full frame: `base_version: None`, everything in
/// `changed`, `unchanged` empty.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Frame {
    /// `None` for a self-contained full frame; `Some(v)` for a delta whose
    /// `unchanged` regions live in (the chain rooted at) version `v`.
    pub base_version: Option<u64>,
    /// Regions whose payloads this frame carries.
    pub changed: Vec<(u32, Bytes)>,
    /// Regions unchanged since `base_version` (ids only).
    pub unchanged: Vec<u32>,
}

impl Frame {
    /// Whether this frame is self-contained (no base reference).
    pub fn is_full(&self) -> bool {
        self.base_version.is_none()
    }
}

/// Pack a VCF2 frame. A full frame passes `base_version: None` and an empty
/// `unchanged` list; a delta frame references the committed version its
/// unchanged regions live under.
pub fn pack_frame(base_version: Option<u64>, changed: &[PackedRegion], unchanged: &[u32]) -> Bytes {
    debug_assert!(
        base_version.is_some() || unchanged.is_empty(),
        "a full frame cannot reference unchanged regions"
    );
    let meta_len = 16 + 4 * unchanged.len() + 16 * changed.len();
    let mut meta = BytesMut::with_capacity(meta_len);
    // `base_version + 1` so 0 can mean "full"; versions are iteration
    // numbers, nowhere near u64::MAX (saturating keeps this panic-free).
    meta.put_u64_le(match base_version {
        None => 0,
        Some(v) => v.saturating_add(1),
    });
    meta.put_u32_le(changed.len() as u32);
    meta.put_u32_le(unchanged.len() as u32);
    for id in unchanged {
        meta.put_u32_le(*id);
    }
    for r in changed {
        meta.put_u32_le(r.id);
        meta.put_u64_le(r.payload.len() as u64);
        meta.put_u32_le(r.crc);
    }
    let meta = meta.freeze();
    let payload_len: usize = changed.iter().map(|r| r.payload.len()).sum();
    let mut buf = BytesMut::with_capacity(8 + meta.len() + payload_len);
    buf.put_slice(&MAGIC2);
    buf.put_u32_le(crc32(&meta));
    buf.put_slice(&meta);
    for r in changed {
        buf.put_slice(&r.payload);
    }
    buf.freeze()
}

fn put_u32_at(buf: &mut [u8], at: usize, v: u32) {
    buf[at..at + 4].copy_from_slice(&v.to_le_bytes());
}

fn put_u64_at(buf: &mut [u8], at: usize, v: u64) {
    buf[at..at + 8].copy_from_slice(&v.to_le_bytes());
}

/// Zero-copy VCF2 frame assembler.
///
/// [`pack_frame`] touches every payload twice: once serializing protected
/// memory into a `Bytes` snapshot, once copying the snapshot into the
/// frame. `FrameBuilder` allocates the finished frame up front from the
/// planned layout and hands out disjoint `&mut [u8]` payload slots, so
/// regions serialize *straight into their final location*
/// ([`crate::Protected::snapshot_into`]) and the intermediate copy
/// disappears. [`FrameBuilder::seal`] stamps the meta CRC and freezes; the
/// output is byte-identical to `pack_frame` on the same content
/// (`builder_output_matches_pack_frame` below holds the two together).
pub struct FrameBuilder {
    buf: Vec<u8>,
    /// Per changed region: offset of its CRC field in the meta table.
    crc_offsets: Vec<usize>,
    /// Per changed region: `(payload offset, len)` in `buf`.
    payload_slots: Vec<(usize, usize)>,
    /// End of the meta section (= start of the payload section).
    meta_end: usize,
}

impl FrameBuilder {
    /// Lay out a frame for `changed` regions `(id, byte length)` in frame
    /// order, plus `unchanged` references. Payload slots come back zeroed;
    /// the caller fills each and records its CRC via [`Self::set_crc`].
    pub fn new(base_version: Option<u64>, changed: &[(u32, usize)], unchanged: &[u32]) -> Self {
        debug_assert!(
            base_version.is_some() || unchanged.is_empty(),
            "a full frame cannot reference unchanged regions"
        );
        let meta_len = 16 + 4 * unchanged.len() + 16 * changed.len();
        let payload_len: usize = changed.iter().map(|&(_, len)| len).sum();
        let mut buf = vec![0u8; 8 + meta_len + payload_len];
        buf[..4].copy_from_slice(&MAGIC2);
        let mut w = 8usize;
        // Same saturating base_ref encoding as `pack_frame`.
        put_u64_at(
            &mut buf,
            w,
            match base_version {
                None => 0,
                Some(v) => v.saturating_add(1),
            },
        );
        w += 8;
        put_u32_at(&mut buf, w, changed.len() as u32);
        w += 4;
        put_u32_at(&mut buf, w, unchanged.len() as u32);
        w += 4;
        for id in unchanged {
            put_u32_at(&mut buf, w, *id);
            w += 4;
        }
        let mut crc_offsets = Vec::with_capacity(changed.len());
        let mut payload_slots = Vec::with_capacity(changed.len());
        let mut p = 8 + meta_len;
        for &(id, len) in changed {
            put_u32_at(&mut buf, w, id);
            w += 4;
            put_u64_at(&mut buf, w, len as u64);
            w += 8;
            crc_offsets.push(w); // CRC written later by `set_crc`
            w += 4;
            payload_slots.push((p, len));
            p += len;
        }
        FrameBuilder {
            buf,
            crc_offsets,
            payload_slots,
            meta_end: 8 + meta_len,
        }
    }

    /// Number of changed-payload slots.
    pub fn payload_count(&self) -> usize {
        self.payload_slots.len()
    }

    /// All payload slots as disjoint mutable slices, in frame order — what
    /// the pack pool hands its workers.
    pub fn payloads_mut(&mut self) -> Vec<&mut [u8]> {
        let (_, mut rest) = self.buf.split_at_mut(self.meta_end);
        let mut out = Vec::with_capacity(self.payload_slots.len());
        for &(_, len) in &self.payload_slots {
            let (slot, tail) = rest.split_at_mut(len);
            out.push(slot);
            rest = tail;
        }
        out
    }

    /// Payload slot `i`, mutable (the inline recompute path when a pool
    /// worker died mid-fill).
    pub fn payload_mut(&mut self, i: usize) -> &mut [u8] {
        // Out-of-range slots yield an empty slice rather than indexing:
        // the pack path runs during recovery, where a panic kills the rank.
        let (off, len) = self.payload_slots.get(i).copied().unwrap_or((0, 0));
        self.buf.get_mut(off..off + len).unwrap_or(&mut [])
    }

    /// Payload slot `i`, read-only (CRC of an inline-filled slot).
    pub fn payload(&self, i: usize) -> &[u8] {
        let (off, len) = self.payload_slots.get(i).copied().unwrap_or((0, 0));
        self.buf.get(off..off + len).unwrap_or(&[])
    }

    /// Record the CRC of payload slot `i` in the meta table.
    pub fn set_crc(&mut self, i: usize, crc: u32) {
        if let Some(&off) = self.crc_offsets.get(i) {
            put_u32_at(&mut self.buf, off, crc);
        }
    }

    /// Stamp the meta CRC and freeze the frame. The caller must have
    /// filled every payload slot and set every CRC — `seal` cannot tell an
    /// unfilled slot from genuine zeroes.
    pub fn seal(mut self) -> Bytes {
        let crc = crc32(&self.buf[8..self.meta_end]);
        put_u32_at(&mut self.buf, 4, crc);
        Bytes::from(self.buf)
    }
}

/// The structural half of a decoded checkpoint frame: everything *except*
/// the payload bytes, which stay unverified until
/// [`FrameMeta::verify_payloads`] runs against the same blob.
///
/// Splitting decode in two is what makes the parallel chain-walk restart
/// possible: walking a delta chain needs only each frame's meta (a few
/// dozen bytes, verified by the meta CRC), while the expensive half —
/// checksumming megabytes of payload — fans out across the pack pool once
/// the whole chain is in hand.
#[derive(Clone, Debug)]
pub struct FrameMeta {
    /// `None` for a self-contained full frame; `Some(v)` for a delta.
    pub base_version: Option<u64>,
    /// Regions unchanged since `base_version` (ids only).
    pub unchanged: Vec<u32>,
    /// Changed regions in frame order: `(id, payload offset in blob, len)`.
    entries: Vec<(u32, usize, usize)>,
    integrity: Integrity,
}

#[derive(Clone, Debug)]
enum Integrity {
    /// VCF2: one stored CRC per changed payload, in `entries` order.
    PerRegion(Vec<u32>),
    /// VCF1: one stored CRC over the whole body (`blob[8..]`).
    WholeBody(u32),
}

impl FrameMeta {
    /// Total changed-payload bytes this frame carries — the work
    /// [`Self::verify_payloads`] will checksum.
    pub fn payload_bytes(&self) -> usize {
        self.entries.iter().map(|&(_, _, len)| len).sum()
    }

    /// Verify the payload checksums against `blob` — which must be the
    /// blob this meta was parsed from. This is the expensive half of
    /// decode, the part restart runs concurrently per frame.
    pub fn verify_payloads(&self, blob: &Bytes) -> bool {
        // The seeded chaos mutant skips payload verification here exactly
        // as it does in `unpack`, re-enabling the garbage-restore path.
        #[cfg(feature = "chaos-mutants")]
        {
            let _ = blob;
            true
        }
        #[cfg(not(feature = "chaos-mutants"))]
        match &self.integrity {
            Integrity::WholeBody(stored) => blob.get(8..).is_some_and(|b| crc32(b) == *stored),
            Integrity::PerRegion(crcs) => {
                self.entries.iter().zip(crcs).all(|(&(_, off, len), &crc)| {
                    blob.get(off..off + len).is_some_and(|p| crc32(p) == crc)
                })
            }
        }
    }

    /// Ids of the changed regions, in frame order.
    pub fn changed_ids(&self) -> impl Iterator<Item = u32> + '_ {
        self.entries.iter().map(|&(id, _, _)| id)
    }

    /// Zero-copy payload views `(id, bytes)` in frame order. Slices of the
    /// blob's allocation — no payload is copied. Only meaningful after
    /// [`Self::verify_payloads`] passed on the same blob.
    pub fn payloads(&self, blob: &Bytes) -> Vec<(u32, Bytes)> {
        self.entries
            .iter()
            .map(|&(id, off, len)| (id, blob.slice(off..off + len)))
            .collect()
    }
}

/// Parse a blob of either format into a [`FrameMeta`] without touching the
/// payload bytes. All structural checks run here — magic, counts, payload
/// extents, trailing garbage, and (VCF2) the meta CRC — so a `Some` return
/// means the frame's *shape* and chain reference are trustworthy; only the
/// payload checksums remain. Returns `None` on anything malformed.
pub fn parse_meta(blob: &Bytes) -> Option<FrameMeta> {
    if blob.len() < 8 {
        return None;
    }
    if blob[..4] == MAGIC {
        return parse_meta_v1(blob);
    }
    if blob[..4] == MAGIC2 {
        return parse_meta_v2(blob);
    }
    None
}

fn parse_meta_v1(blob: &Bytes) -> Option<FrameMeta> {
    let stored_crc = u32::from_le_bytes(blob.get(4..8)?.try_into().ok()?);
    let body = &blob[8..];
    let mut off = 0usize;
    let take = |off: &mut usize, n: usize| -> Option<&[u8]> {
        let s = body.get(*off..*off + n)?;
        *off += n;
        Some(s)
    };
    let count = u32::from_le_bytes(take(&mut off, 4)?.try_into().ok()?) as usize;
    // Guard against absurd counts from corrupt headers.
    if count > body.len() {
        return None;
    }
    let mut entries = Vec::with_capacity(count);
    for _ in 0..count {
        let id = u32::from_le_bytes(take(&mut off, 4)?.try_into().ok()?);
        let len = u64::from_le_bytes(take(&mut off, 8)?.try_into().ok()?) as usize;
        if off.checked_add(len)? > body.len() {
            return None;
        }
        entries.push((id, 8 + off, len));
        off += len;
    }
    if off != body.len() {
        return None; // trailing garbage
    }
    Some(FrameMeta {
        base_version: None,
        unchanged: Vec::new(),
        entries,
        integrity: Integrity::WholeBody(stored_crc),
    })
}

fn parse_meta_v2(blob: &Bytes) -> Option<FrameMeta> {
    let stored_crc = u32::from_le_bytes(blob.get(4..8)?.try_into().ok()?);
    let body = &blob[8..];
    let mut off = 0usize;
    let take = |off: &mut usize, n: usize| -> Option<&[u8]> {
        let s = body.get(*off..*off + n)?;
        *off += n;
        Some(s)
    };
    let base_ref = u64::from_le_bytes(take(&mut off, 8)?.try_into().ok()?);
    let changed_count = u32::from_le_bytes(take(&mut off, 4)?.try_into().ok()?) as usize;
    let unchanged_count = u32::from_le_bytes(take(&mut off, 4)?.try_into().ok()?) as usize;
    // Guard against absurd counts from corrupt headers before allocating.
    let meta_need = changed_count
        .saturating_mul(16)
        .saturating_add(unchanged_count.saturating_mul(4));
    if meta_need > body.len() {
        return None;
    }
    let mut unchanged = Vec::with_capacity(unchanged_count);
    for _ in 0..unchanged_count {
        unchanged.push(u32::from_le_bytes(take(&mut off, 4)?.try_into().ok()?));
    }
    let mut raw_entries = Vec::with_capacity(changed_count);
    for _ in 0..changed_count {
        let id = u32::from_le_bytes(take(&mut off, 4)?.try_into().ok()?);
        let len = u64::from_le_bytes(take(&mut off, 8)?.try_into().ok()?) as usize;
        let crc = u32::from_le_bytes(take(&mut off, 4)?.try_into().ok()?);
        raw_entries.push((id, len, crc));
    }
    // The seeded chaos mutant skips the meta check here and the payload
    // checks in `FrameMeta::verify_payloads`, re-enabling the
    // garbage-restore path the CRC frames exist to close.
    #[cfg(not(feature = "chaos-mutants"))]
    if crc32(body.get(..off)?) != stored_crc {
        return None;
    }
    #[cfg(feature = "chaos-mutants")]
    let _ = stored_crc;

    let mut entries = Vec::with_capacity(changed_count);
    let mut crcs = Vec::with_capacity(changed_count);
    for (id, len, crc) in raw_entries {
        if len > body.len() || off.checked_add(len)? > body.len() {
            return None;
        }
        entries.push((id, 8 + off, len));
        crcs.push(crc);
        off += len;
    }
    if off != body.len() {
        return None; // trailing garbage
    }
    let base_version = base_ref.checked_sub(1);
    if base_version.is_none() && !unchanged.is_empty() {
        return None; // a full frame cannot reference unchanged regions
    }
    Some(FrameMeta {
        base_version,
        unchanged,
        entries,
        integrity: Integrity::PerRegion(crcs),
    })
}

/// Unpack a VCF2 blob (magic already sniffed by [`unpack_any`]): the
/// sequential composition of the two decode halves.
fn unpack_v2(blob: &Bytes) -> Option<Frame> {
    let meta = parse_meta_v2(blob)?;
    if !meta.verify_payloads(blob) {
        return None;
    }
    Some(Frame {
        base_version: meta.base_version,
        changed: meta.payloads(blob),
        unchanged: meta.unchanged,
    })
}

/// Unpack a checkpoint blob of *either* format version into a [`Frame`],
/// sniffing the magic. Returns `None` on any malformed blob — a restart
/// from a corrupt checkpoint must fail cleanly, not panic.
pub fn unpack_any(blob: &Bytes) -> Option<Frame> {
    if blob.len() < 8 {
        return None;
    }
    if blob[..4] == MAGIC {
        return Some(Frame {
            base_version: None,
            changed: unpack(blob)?,
            unchanged: Vec::new(),
        });
    }
    if blob[..4] == MAGIC2 {
        return unpack_v2(blob);
    }
    None
}

/// Whether `blob` is a well-formed, checksum-intact checkpoint blob of
/// either format version. For a VCF2 delta this checks *the frame itself*
/// (meta + carried payloads); whether its base chain is intact is the
/// client's chain walk to decide.
pub fn verify(blob: &Bytes) -> bool {
    unpack_any(blob).is_some()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_multiple_regions() {
        let regions = vec![
            (1u32, Bytes::from_static(b"alpha")),
            (7u32, Bytes::from_static(b"")),
            (3u32, Bytes::from_static(b"gamma-data")),
        ];
        let blob = pack(&regions);
        assert_eq!(unpack(&blob).unwrap(), regions);
        assert!(verify(&blob));
    }

    #[test]
    fn roundtrip_empty() {
        let blob = pack(&[]);
        assert_eq!(unpack(&blob).unwrap(), vec![]);
    }

    #[test]
    fn crc32_matches_known_vector() {
        // The classic IEEE check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32_bitwise(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32_bitwise(b""), 0);
    }

    #[test]
    fn crc32_slice16_agrees_with_bitwise_at_chunk_boundaries() {
        // Lengths straddling the 16-byte fold width: 0..=17, 31..=33, and a
        // large buffer exercising many folded iterations plus a remainder.
        for len in (0..=17).chain(31..=33).chain([255, 256, 4096 + 5]) {
            let data: Vec<u8> = (0..len)
                .map(|i| (i as u8).wrapping_mul(31).wrapping_add(7))
                .collect();
            assert_eq!(crc32(&data), crc32_bitwise(&data), "len {len}");
        }
    }

    #[test]
    fn builder_output_matches_pack_frame() {
        // The zero-copy assembler must be byte-identical to the copying
        // packer on the same content — restart cannot tell which wrote a
        // frame, and the committed-baseline CRCs must agree.
        let payloads: Vec<(u32, Bytes)> = vec![
            (2, Bytes::from_static(b"changed-two")),
            (5, Bytes::from_static(b"")),
            (9, Bytes::from(vec![0xAB; 100])),
        ];
        let unchanged = [1u32, 3];
        for base in [None, Some(0u64), Some(7)] {
            let unchanged: &[u32] = if base.is_none() { &[] } else { &unchanged };
            let packed: Vec<PackedRegion> = payloads
                .iter()
                .map(|(id, p)| PackedRegion::new(*id, p.clone()))
                .collect();
            let reference = pack_frame(base, &packed, unchanged);

            let plan: Vec<(u32, usize)> = payloads.iter().map(|(id, p)| (*id, p.len())).collect();
            let mut b = FrameBuilder::new(base, &plan, unchanged);
            assert_eq!(b.payload_count(), payloads.len());
            let slots = b.payloads_mut();
            for (slot, (_, p)) in slots.into_iter().zip(&payloads) {
                slot.copy_from_slice(p);
            }
            for i in 0..payloads.len() {
                let crc = crc32(b.payload(i));
                b.set_crc(i, crc);
            }
            assert_eq!(&b.seal()[..], &reference[..], "base {base:?}");
        }
    }

    #[test]
    fn parse_meta_then_verify_equals_unpack_any() {
        let blobs = [
            delta_frame(),
            pack_frame(
                None,
                &[PackedRegion::new(1, Bytes::from_static(b"alpha"))],
                &[],
            ),
            pack(&[(1, Bytes::from_static(b"legacy")), (2, Bytes::new())]),
        ];
        for blob in &blobs {
            let meta = parse_meta(blob).expect("intact blob parses");
            assert!(meta.verify_payloads(blob));
            let frame = unpack_any(blob).unwrap();
            assert_eq!(meta.base_version, frame.base_version);
            assert_eq!(meta.unchanged, frame.unchanged);
            assert_eq!(meta.payloads(blob), frame.changed);
            assert_eq!(
                meta.payload_bytes(),
                frame.changed.iter().map(|(_, p)| p.len()).sum::<usize>()
            );
        }
    }

    #[cfg(not(feature = "chaos-mutants"))]
    #[test]
    fn parse_meta_splits_corruption_by_section() {
        // A payload flip leaves the meta parseable (the split's point) but
        // fails payload verification; a meta flip fails parse outright.
        let blob = delta_frame();
        let mut payload_flip = blob.to_vec();
        let last = payload_flip.len() - 1;
        payload_flip[last] ^= 0xFF;
        let corrupted = Bytes::from(payload_flip);
        let meta = parse_meta(&corrupted).expect("meta section is untouched");
        assert!(!meta.verify_payloads(&corrupted));

        let mut meta_flip = blob.to_vec();
        meta_flip[24] ^= 0xFF; // first unchanged id (8 header + 16 fixed meta)
        assert!(parse_meta(&Bytes::from(meta_flip)).is_none());

        // Same split for VCF1: body flip parses, fails whole-body verify.
        let v1 = pack(&[(1, Bytes::from_static(b"payload"))]);
        let mut v1_flip = v1.to_vec();
        let last = v1_flip.len() - 1;
        v1_flip[last] ^= 0xFF;
        let corrupted = Bytes::from(v1_flip);
        let meta = parse_meta(&corrupted).expect("v1 structure is untouched");
        assert!(!meta.verify_payloads(&corrupted));
    }

    #[test]
    fn truncated_blob_fails_cleanly() {
        let blob = pack(&[(1, Bytes::from_static(b"payload"))]);
        for cut in [0, 3, 5, 9, blob.len() - 1] {
            let truncated = blob.slice(0..cut);
            assert!(unpack(&truncated).is_none(), "cut at {cut} should fail");
            assert!(!verify(&truncated));
        }
    }

    #[test]
    fn trailing_garbage_fails() {
        let mut raw = pack(&[(1, Bytes::from_static(b"x"))]).to_vec();
        raw.push(0xFF);
        assert!(unpack(&Bytes::from(raw)).is_none());
    }

    #[test]
    fn bad_magic_fails() {
        let mut raw = pack(&[(1, Bytes::from_static(b"x"))]).to_vec();
        raw[0] = b'X';
        assert!(unpack(&Bytes::from(raw)).is_none());
    }

    #[cfg(not(feature = "chaos-mutants"))]
    #[test]
    fn payload_byte_flip_is_detected() {
        // A flip inside a region payload passes every structural check —
        // only the CRC catches it. This is the exact bug class the chaos
        // mutant re-introduces.
        let blob = pack(&[(1, Bytes::from_static(b"payload"))]);
        let mut raw = blob.to_vec();
        let last = raw.len() - 1;
        raw[last] ^= 0xFF;
        assert!(unpack(&Bytes::from(raw)).is_none());
    }

    #[cfg(not(feature = "chaos-mutants"))]
    #[test]
    fn corrupt_count_fails() {
        let mut raw = pack(&[]).to_vec();
        // Body starts at offset 8; blow up the region count.
        raw[8] = 0xFF;
        raw[9] = 0xFF;
        raw[10] = 0xFF;
        raw[11] = 0x7F;
        assert!(unpack(&Bytes::from(raw)).is_none());
    }

    fn delta_frame() -> Bytes {
        pack_frame(
            Some(7),
            &[
                PackedRegion::new(2, Bytes::from_static(b"changed-two")),
                PackedRegion::new(5, Bytes::from_static(b"")),
            ],
            &[1, 3],
        )
    }

    #[test]
    fn vcf2_full_frame_roundtrip() {
        let regions = [
            PackedRegion::new(1, Bytes::from_static(b"alpha")),
            PackedRegion::new(7, Bytes::from_static(b"")),
        ];
        let blob = pack_frame(None, &regions, &[]);
        let frame = unpack_any(&blob).unwrap();
        assert!(frame.is_full());
        assert_eq!(
            frame.changed,
            vec![
                (1, Bytes::from_static(b"alpha")),
                (7, Bytes::from_static(b""))
            ]
        );
        assert!(frame.unchanged.is_empty());
        assert!(verify(&blob));
    }

    #[test]
    fn vcf2_delta_frame_roundtrip() {
        let frame = unpack_any(&delta_frame()).unwrap();
        assert_eq!(frame.base_version, Some(7));
        assert_eq!(frame.unchanged, vec![1, 3]);
        assert_eq!(
            frame.changed,
            vec![
                (2, Bytes::from_static(b"changed-two")),
                (5, Bytes::from_static(b""))
            ]
        );
    }

    #[test]
    fn vcf2_base_version_zero_is_representable() {
        let blob = pack_frame(
            Some(0),
            &[PackedRegion::new(1, Bytes::from_static(b"x"))],
            &[2],
        );
        let frame = unpack_any(&blob).unwrap();
        assert_eq!(frame.base_version, Some(0));
        assert!(!frame.is_full());
    }

    #[test]
    fn unpack_any_sniffs_vcf1() {
        let regions = vec![(1u32, Bytes::from_static(b"legacy"))];
        let frame = unpack_any(&pack(&regions)).unwrap();
        assert!(frame.is_full());
        assert_eq!(frame.changed, regions);
        assert!(frame.unchanged.is_empty());
    }

    #[test]
    fn unpack_any_rejects_unknown_magic() {
        let mut raw = delta_frame().to_vec();
        raw[3] = b'9';
        assert!(unpack_any(&Bytes::from(raw)).is_none());
    }

    #[test]
    fn vcf2_truncation_fails_cleanly() {
        let blob = delta_frame();
        for cut in [0, 3, 7, 9, 20, blob.len() - 1] {
            let truncated = blob.slice(0..cut);
            assert!(unpack_any(&truncated).is_none(), "cut at {cut} should fail");
            assert!(!verify(&truncated));
        }
    }

    #[test]
    fn vcf2_trailing_garbage_fails() {
        let mut raw = delta_frame().to_vec();
        raw.push(0xFF);
        assert!(unpack_any(&Bytes::from(raw)).is_none());
    }

    #[cfg(not(feature = "chaos-mutants"))]
    #[test]
    fn vcf2_payload_byte_flip_is_detected() {
        // A flip in the last payload byte passes every structural check —
        // only the per-region CRC catches it.
        let mut raw = delta_frame().to_vec();
        let last = raw.len() - 1;
        raw[last] ^= 0xFF;
        assert!(unpack_any(&Bytes::from(raw)).is_none());
    }

    #[cfg(not(feature = "chaos-mutants"))]
    #[test]
    fn vcf2_meta_flip_is_detected() {
        // Flip an unchanged-region id (meta section, structurally valid) —
        // only the meta CRC catches it.
        let blob = delta_frame();
        let mut raw = blob.to_vec();
        raw[24] ^= 0xFF; // first unchanged id (8 header + 16 fixed meta)
        assert!(unpack_any(&Bytes::from(raw)).is_none());
    }

    #[test]
    fn vcf2_full_frame_with_unchanged_rejected() {
        // Hand-build base_ref=0 with unchanged_count=1: structurally
        // parseable but semantically void — must be rejected even though
        // its CRCs are valid.
        let mut meta = BytesMut::new();
        meta.put_u64_le(0);
        meta.put_u32_le(0);
        meta.put_u32_le(1);
        meta.put_u32_le(42);
        let meta = meta.freeze();
        let mut buf = BytesMut::new();
        buf.put_slice(&MAGIC2);
        buf.put_u32_le(crc32(&meta));
        buf.put_slice(&meta);
        assert!(unpack_any(&buf.freeze()).is_none());
    }

    #[cfg(not(feature = "chaos-mutants"))]
    #[test]
    fn vcf2_corrupt_counts_fail() {
        let mut raw = delta_frame().to_vec();
        // changed_count lives at body offset 8 (blob offset 16).
        raw[16] = 0xFF;
        raw[17] = 0xFF;
        raw[18] = 0xFF;
        raw[19] = 0x7F;
        assert!(unpack_any(&Bytes::from(raw)).is_none());
    }
}
