//! Checkpoint blob formats.
//!
//! **VCF1** (format version 1): one checkpoint = all protected regions of
//! one rank, packed into a single integrity-framed blob:
//!
//! ```text
//! [4  bytes magic "VCF1"]
//! [u32 crc32(body)]            // IEEE 802.3 polynomial, over `body`
//! body:
//!   [u32 region_count]
//!   repeat region_count times:
//!     [u32 region_id][u64 payload_len][payload bytes]
//! ```
//!
//! **VCF2** (format version 2): an *incremental* frame. Regions whose
//! dirty-tracking generation did not move since the last committed version
//! are referenced by id only; their payloads live in the frame of
//! `base_version` (which may itself be a delta — restart walks the chain).
//! Payload integrity moves from one whole-blob CRC to per-region CRCs, so a
//! frame's changed payloads are checkable without the base frames in hand
//! and the parallel pack pool can compute CRCs region-by-region:
//!
//! ```text
//! [4  bytes magic "VCF2"]
//! [u32 crc32(meta)]            // over `meta` only; payloads carry their own
//! meta:
//!   [u64 base_ref]             // 0 = full frame; else base_version + 1
//!   [u32 changed_count]
//!   [u32 unchanged_count]      // must be 0 when base_ref is 0
//!   repeat unchanged_count times: [u32 region_id]
//!   repeat changed_count   times: [u32 region_id][u64 payload_len][u32 crc32(payload)]
//! payloads: changed payloads concatenated, in `changed` order
//! ```
//!
//! Restores match regions by id, so a restart can tolerate registration in
//! a different order (Kokkos Resilience re-registers views after a context
//! reset). [`unpack_any`] sniffs the magic, so VCF1 blobs written before
//! this format existed still restore.
//!
//! The CRC frames exist because the structural checks alone cannot catch a
//! flipped byte *inside* a region payload — without them, a corrupted blob
//! would silently restore garbage application state. [`unpack`] and
//! [`unpack_any`] reject any blob whose checksums do not match, turning
//! silent corruption into the typed [`crate::VelocError::Corrupt`] the
//! restart path degrades on.
//!
//! The `chaos-mutants` feature re-enables the garbage-restore bug by
//! skipping every checksum comparison in both formats (structure is still
//! parsed). It exists only so the chaos campaign can prove it catches
//! exactly this class of bug (`crates/chaos/tests/mutant.rs`); never enable
//! it in normal builds.

use bytes::{BufMut, Bytes, BytesMut};

/// Leading magic of a full, self-contained checkpoint blob (format
/// version 1).
pub const MAGIC: [u8; 4] = *b"VCF1";

/// Leading magic of an incremental checkpoint frame (format version 2).
pub const MAGIC2: [u8; 4] = *b"VCF2";

/// CRC32 (IEEE 802.3, reflected) of `data`.
///
/// Bitwise rather than table-driven: checkpoint blobs here are small and
/// the bit loop keeps the restart path free of any indexing a corrupted
/// length could turn into a panic.
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in data {
        crc ^= b as u32;
        for _ in 0..8 {
            crc = if crc & 1 == 1 {
                0xEDB8_8320 ^ (crc >> 1)
            } else {
                crc >> 1
            };
        }
    }
    crc ^ 0xFFFF_FFFF
}

/// Pack `(id, payload)` pairs into one checkpoint blob.
pub fn pack(regions: &[(u32, Bytes)]) -> Bytes {
    let body_len: usize = 4 + regions.iter().map(|(_, b)| 12 + b.len()).sum::<usize>();
    let mut body = BytesMut::with_capacity(body_len);
    body.put_u32_le(regions.len() as u32);
    for (id, payload) in regions {
        body.put_u32_le(*id);
        body.put_u64_le(payload.len() as u64);
        body.put_slice(payload);
    }
    let body = body.freeze();
    let mut buf = BytesMut::with_capacity(8 + body.len());
    buf.put_slice(&MAGIC);
    buf.put_u32_le(crc32(&body));
    buf.put_slice(&body);
    buf.freeze()
}

/// Unpack a checkpoint blob into `(id, payload)` pairs.
///
/// Returns `None` on a malformed blob — wrong magic, checksum mismatch,
/// truncation, bad counts — a restart from a corrupt checkpoint must fail
/// cleanly, not panic, and must never silently return wrong data.
pub fn unpack(blob: &Bytes) -> Option<Vec<(u32, Bytes)>> {
    if blob.len() < 8 || blob[..4] != MAGIC {
        return None;
    }
    let stored_crc = u32::from_le_bytes(blob[4..8].try_into().ok()?);
    let body = blob.slice(8..);
    // The seeded chaos mutant: skipping this verification re-enables the
    // garbage-restore path the CRC frame exists to close.
    #[cfg(not(feature = "chaos-mutants"))]
    if crc32(&body) != stored_crc {
        return None;
    }
    #[cfg(feature = "chaos-mutants")]
    let _ = stored_crc;

    let mut off = 0usize;
    let take = |off: &mut usize, n: usize| -> Option<&[u8]> {
        let s = body.get(*off..*off + n)?;
        *off += n;
        Some(s)
    };
    let count = u32::from_le_bytes(take(&mut off, 4)?.try_into().ok()?) as usize;
    // Guard against absurd counts from corrupt headers.
    if count > body.len() {
        return None;
    }
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        let id = u32::from_le_bytes(take(&mut off, 4)?.try_into().ok()?);
        let len = u64::from_le_bytes(take(&mut off, 8)?.try_into().ok()?) as usize;
        if off + len > body.len() {
            return None;
        }
        out.push((id, body.slice(off..off + len)));
        off += len;
    }
    if off != body.len() {
        return None; // trailing garbage
    }
    Some(out)
}

/// One changed region as it enters a VCF2 frame: payload plus its CRC,
/// precomputed so the parallel pack pool can fan the checksum work out and
/// [`pack_frame`] only assembles bytes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PackedRegion {
    pub id: u32,
    pub payload: Bytes,
    pub crc: u32,
}

impl PackedRegion {
    pub fn new(id: u32, payload: Bytes) -> Self {
        let crc = crc32(&payload);
        PackedRegion { id, payload, crc }
    }
}

/// A decoded checkpoint frame, either format version.
///
/// A VCF1 blob decodes as a full frame: `base_version: None`, everything in
/// `changed`, `unchanged` empty.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Frame {
    /// `None` for a self-contained full frame; `Some(v)` for a delta whose
    /// `unchanged` regions live in (the chain rooted at) version `v`.
    pub base_version: Option<u64>,
    /// Regions whose payloads this frame carries.
    pub changed: Vec<(u32, Bytes)>,
    /// Regions unchanged since `base_version` (ids only).
    pub unchanged: Vec<u32>,
}

impl Frame {
    /// Whether this frame is self-contained (no base reference).
    pub fn is_full(&self) -> bool {
        self.base_version.is_none()
    }
}

/// Pack a VCF2 frame. A full frame passes `base_version: None` and an empty
/// `unchanged` list; a delta frame references the committed version its
/// unchanged regions live under.
pub fn pack_frame(base_version: Option<u64>, changed: &[PackedRegion], unchanged: &[u32]) -> Bytes {
    debug_assert!(
        base_version.is_some() || unchanged.is_empty(),
        "a full frame cannot reference unchanged regions"
    );
    let meta_len = 16 + 4 * unchanged.len() + 16 * changed.len();
    let mut meta = BytesMut::with_capacity(meta_len);
    // `base_version + 1` so 0 can mean "full"; versions are iteration
    // numbers, nowhere near u64::MAX (saturating keeps this panic-free).
    meta.put_u64_le(match base_version {
        None => 0,
        Some(v) => v.saturating_add(1),
    });
    meta.put_u32_le(changed.len() as u32);
    meta.put_u32_le(unchanged.len() as u32);
    for id in unchanged {
        meta.put_u32_le(*id);
    }
    for r in changed {
        meta.put_u32_le(r.id);
        meta.put_u64_le(r.payload.len() as u64);
        meta.put_u32_le(r.crc);
    }
    let meta = meta.freeze();
    let payload_len: usize = changed.iter().map(|r| r.payload.len()).sum();
    let mut buf = BytesMut::with_capacity(8 + meta.len() + payload_len);
    buf.put_slice(&MAGIC2);
    buf.put_u32_le(crc32(&meta));
    buf.put_slice(&meta);
    for r in changed {
        buf.put_slice(&r.payload);
    }
    buf.freeze()
}

/// Unpack a VCF2 blob (magic already sniffed by [`unpack_any`]).
fn unpack_v2(blob: &Bytes) -> Option<Frame> {
    let stored_crc = u32::from_le_bytes(blob.get(4..8)?.try_into().ok()?);
    let body = blob.slice(8..);
    let mut off = 0usize;
    let take = |off: &mut usize, n: usize| -> Option<&[u8]> {
        let s = body.get(*off..*off + n)?;
        *off += n;
        Some(s)
    };
    let base_ref = u64::from_le_bytes(take(&mut off, 8)?.try_into().ok()?);
    let changed_count = u32::from_le_bytes(take(&mut off, 4)?.try_into().ok()?) as usize;
    let unchanged_count = u32::from_le_bytes(take(&mut off, 4)?.try_into().ok()?) as usize;
    // Guard against absurd counts from corrupt headers before allocating.
    let meta_need = changed_count
        .saturating_mul(16)
        .saturating_add(unchanged_count.saturating_mul(4));
    if meta_need > body.len() {
        return None;
    }
    let mut unchanged = Vec::with_capacity(unchanged_count);
    for _ in 0..unchanged_count {
        unchanged.push(u32::from_le_bytes(take(&mut off, 4)?.try_into().ok()?));
    }
    let mut entries = Vec::with_capacity(changed_count);
    for _ in 0..changed_count {
        let id = u32::from_le_bytes(take(&mut off, 4)?.try_into().ok()?);
        let len = u64::from_le_bytes(take(&mut off, 8)?.try_into().ok()?) as usize;
        let crc = u32::from_le_bytes(take(&mut off, 4)?.try_into().ok()?);
        entries.push((id, len, crc));
    }
    // The seeded chaos mutant skips both this and the per-payload check,
    // re-enabling the garbage-restore path the CRC frames exist to close.
    #[cfg(not(feature = "chaos-mutants"))]
    if crc32(body.get(..off)?) != stored_crc {
        return None;
    }
    #[cfg(feature = "chaos-mutants")]
    let _ = stored_crc;

    let mut changed = Vec::with_capacity(changed_count);
    for (id, len, crc) in entries {
        if len > body.len() || off + len > body.len() {
            return None;
        }
        let payload = body.slice(off..off + len);
        off += len;
        #[cfg(not(feature = "chaos-mutants"))]
        if crc32(&payload) != crc {
            return None;
        }
        #[cfg(feature = "chaos-mutants")]
        let _ = crc;
        changed.push((id, payload));
    }
    if off != body.len() {
        return None; // trailing garbage
    }
    let base_version = base_ref.checked_sub(1);
    if base_version.is_none() && !unchanged.is_empty() {
        return None; // a full frame cannot reference unchanged regions
    }
    Some(Frame {
        base_version,
        changed,
        unchanged,
    })
}

/// Unpack a checkpoint blob of *either* format version into a [`Frame`],
/// sniffing the magic. Returns `None` on any malformed blob — a restart
/// from a corrupt checkpoint must fail cleanly, not panic.
pub fn unpack_any(blob: &Bytes) -> Option<Frame> {
    if blob.len() < 8 {
        return None;
    }
    if blob[..4] == MAGIC {
        return Some(Frame {
            base_version: None,
            changed: unpack(blob)?,
            unchanged: Vec::new(),
        });
    }
    if blob[..4] == MAGIC2 {
        return unpack_v2(blob);
    }
    None
}

/// Whether `blob` is a well-formed, checksum-intact checkpoint blob of
/// either format version. For a VCF2 delta this checks *the frame itself*
/// (meta + carried payloads); whether its base chain is intact is the
/// client's chain walk to decide.
pub fn verify(blob: &Bytes) -> bool {
    unpack_any(blob).is_some()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_multiple_regions() {
        let regions = vec![
            (1u32, Bytes::from_static(b"alpha")),
            (7u32, Bytes::from_static(b"")),
            (3u32, Bytes::from_static(b"gamma-data")),
        ];
        let blob = pack(&regions);
        assert_eq!(unpack(&blob).unwrap(), regions);
        assert!(verify(&blob));
    }

    #[test]
    fn roundtrip_empty() {
        let blob = pack(&[]);
        assert_eq!(unpack(&blob).unwrap(), vec![]);
    }

    #[test]
    fn crc32_matches_known_vector() {
        // The classic IEEE check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn truncated_blob_fails_cleanly() {
        let blob = pack(&[(1, Bytes::from_static(b"payload"))]);
        for cut in [0, 3, 5, 9, blob.len() - 1] {
            let truncated = blob.slice(0..cut);
            assert!(unpack(&truncated).is_none(), "cut at {cut} should fail");
            assert!(!verify(&truncated));
        }
    }

    #[test]
    fn trailing_garbage_fails() {
        let mut raw = pack(&[(1, Bytes::from_static(b"x"))]).to_vec();
        raw.push(0xFF);
        assert!(unpack(&Bytes::from(raw)).is_none());
    }

    #[test]
    fn bad_magic_fails() {
        let mut raw = pack(&[(1, Bytes::from_static(b"x"))]).to_vec();
        raw[0] = b'X';
        assert!(unpack(&Bytes::from(raw)).is_none());
    }

    #[cfg(not(feature = "chaos-mutants"))]
    #[test]
    fn payload_byte_flip_is_detected() {
        // A flip inside a region payload passes every structural check —
        // only the CRC catches it. This is the exact bug class the chaos
        // mutant re-introduces.
        let blob = pack(&[(1, Bytes::from_static(b"payload"))]);
        let mut raw = blob.to_vec();
        let last = raw.len() - 1;
        raw[last] ^= 0xFF;
        assert!(unpack(&Bytes::from(raw)).is_none());
    }

    #[cfg(not(feature = "chaos-mutants"))]
    #[test]
    fn corrupt_count_fails() {
        let mut raw = pack(&[]).to_vec();
        // Body starts at offset 8; blow up the region count.
        raw[8] = 0xFF;
        raw[9] = 0xFF;
        raw[10] = 0xFF;
        raw[11] = 0x7F;
        assert!(unpack(&Bytes::from(raw)).is_none());
    }

    fn delta_frame() -> Bytes {
        pack_frame(
            Some(7),
            &[
                PackedRegion::new(2, Bytes::from_static(b"changed-two")),
                PackedRegion::new(5, Bytes::from_static(b"")),
            ],
            &[1, 3],
        )
    }

    #[test]
    fn vcf2_full_frame_roundtrip() {
        let regions = [
            PackedRegion::new(1, Bytes::from_static(b"alpha")),
            PackedRegion::new(7, Bytes::from_static(b"")),
        ];
        let blob = pack_frame(None, &regions, &[]);
        let frame = unpack_any(&blob).unwrap();
        assert!(frame.is_full());
        assert_eq!(
            frame.changed,
            vec![
                (1, Bytes::from_static(b"alpha")),
                (7, Bytes::from_static(b""))
            ]
        );
        assert!(frame.unchanged.is_empty());
        assert!(verify(&blob));
    }

    #[test]
    fn vcf2_delta_frame_roundtrip() {
        let frame = unpack_any(&delta_frame()).unwrap();
        assert_eq!(frame.base_version, Some(7));
        assert_eq!(frame.unchanged, vec![1, 3]);
        assert_eq!(
            frame.changed,
            vec![
                (2, Bytes::from_static(b"changed-two")),
                (5, Bytes::from_static(b""))
            ]
        );
    }

    #[test]
    fn vcf2_base_version_zero_is_representable() {
        let blob = pack_frame(
            Some(0),
            &[PackedRegion::new(1, Bytes::from_static(b"x"))],
            &[2],
        );
        let frame = unpack_any(&blob).unwrap();
        assert_eq!(frame.base_version, Some(0));
        assert!(!frame.is_full());
    }

    #[test]
    fn unpack_any_sniffs_vcf1() {
        let regions = vec![(1u32, Bytes::from_static(b"legacy"))];
        let frame = unpack_any(&pack(&regions)).unwrap();
        assert!(frame.is_full());
        assert_eq!(frame.changed, regions);
        assert!(frame.unchanged.is_empty());
    }

    #[test]
    fn unpack_any_rejects_unknown_magic() {
        let mut raw = delta_frame().to_vec();
        raw[3] = b'9';
        assert!(unpack_any(&Bytes::from(raw)).is_none());
    }

    #[test]
    fn vcf2_truncation_fails_cleanly() {
        let blob = delta_frame();
        for cut in [0, 3, 7, 9, 20, blob.len() - 1] {
            let truncated = blob.slice(0..cut);
            assert!(unpack_any(&truncated).is_none(), "cut at {cut} should fail");
            assert!(!verify(&truncated));
        }
    }

    #[test]
    fn vcf2_trailing_garbage_fails() {
        let mut raw = delta_frame().to_vec();
        raw.push(0xFF);
        assert!(unpack_any(&Bytes::from(raw)).is_none());
    }

    #[cfg(not(feature = "chaos-mutants"))]
    #[test]
    fn vcf2_payload_byte_flip_is_detected() {
        // A flip in the last payload byte passes every structural check —
        // only the per-region CRC catches it.
        let mut raw = delta_frame().to_vec();
        let last = raw.len() - 1;
        raw[last] ^= 0xFF;
        assert!(unpack_any(&Bytes::from(raw)).is_none());
    }

    #[cfg(not(feature = "chaos-mutants"))]
    #[test]
    fn vcf2_meta_flip_is_detected() {
        // Flip an unchanged-region id (meta section, structurally valid) —
        // only the meta CRC catches it.
        let blob = delta_frame();
        let mut raw = blob.to_vec();
        raw[24] ^= 0xFF; // first unchanged id (8 header + 16 fixed meta)
        assert!(unpack_any(&Bytes::from(raw)).is_none());
    }

    #[test]
    fn vcf2_full_frame_with_unchanged_rejected() {
        // Hand-build base_ref=0 with unchanged_count=1: structurally
        // parseable but semantically void — must be rejected even though
        // its CRCs are valid.
        let mut meta = BytesMut::new();
        meta.put_u64_le(0);
        meta.put_u32_le(0);
        meta.put_u32_le(1);
        meta.put_u32_le(42);
        let meta = meta.freeze();
        let mut buf = BytesMut::new();
        buf.put_slice(&MAGIC2);
        buf.put_u32_le(crc32(&meta));
        buf.put_slice(&meta);
        assert!(unpack_any(&buf.freeze()).is_none());
    }

    #[cfg(not(feature = "chaos-mutants"))]
    #[test]
    fn vcf2_corrupt_counts_fail() {
        let mut raw = delta_frame().to_vec();
        // changed_count lives at body offset 8 (blob offset 16).
        raw[16] = 0xFF;
        raw[17] = 0xFF;
        raw[18] = 0xFF;
        raw[19] = 0x7F;
        assert!(unpack_any(&Bytes::from(raw)).is_none());
    }
}
