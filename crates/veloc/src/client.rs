//! The VeloC client API.
//!
//! One [`Client`] per rank. The client distinguishes two rank identities:
//!
//! * the **physical rank** — the global rank whose NIC and node-local
//!   scratch this client uses; and
//! * the **logical rank** — the id used in checkpoint file names.
//!
//! Under Fenix, a spare that replaces a failed rank keeps its own physical
//! placement but assumes the victim's *logical* rank ([`Client::set_rank`],
//! the paper's "update cached information … on the current rank ID"). Its
//! checkpoints-by-name are on the parallel filesystem (flushed there by the
//! victim before dying) but not in its own scratch — so a recovered rank
//! pays a remote read while survivors restore from scratch. This asymmetry
//! is central to the paper's recovery-cost results.

use std::collections::BTreeMap;
use std::sync::Arc;

use bytes::Bytes;
use cluster::Cluster;
use parking_lot::Mutex;
use simmpi::{Comm, MpiError, ReduceOp};
use telemetry::{Event, Recorder};

use crate::backend::ActiveBackend;
use crate::region::Protected;
use crate::serial;

/// How restart agreement is performed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Mode {
    /// The client owns a communicator and agrees on the globally best
    /// version internally (stock VeloC). Incompatible with a changing
    /// process pool.
    Collective,
    /// The client answers from local knowledge only; the caller performs
    /// the agreement (the non-collective mode this paper's integration
    /// requires).
    Single,
}

/// Client configuration.
#[derive(Clone, Debug)]
pub struct Config {
    pub mode: Mode,
    /// Flush scratch→PFS asynchronously on the backend thread (VeloC's
    /// async mode, used throughout the paper). When false the flush happens
    /// inside `checkpoint` (VeloC sync mode).
    pub async_flush: bool,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            mode: Mode::Single,
            async_flush: true,
        }
    }
}

/// Errors from checkpoint/restart operations.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum VelocError {
    /// No checkpoint with the requested name/version is reachable.
    NotFound { name: String, version: u64 },
    /// The stored blob failed to deserialize.
    Corrupt { path: String },
    /// A stored region id has no matching protected region.
    UnknownRegion { id: u32 },
    /// An MPI error during collective agreement.
    Mpi(MpiError),
    /// `Collective` mode was asked to agree without a communicator.
    NoCommunicator,
    /// The asynchronous flush backend thread could not be spawned. This is
    /// recoverable: the client degrades to synchronous flushing.
    BackendSpawn { reason: String },
}

impl std::fmt::Display for VelocError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VelocError::NotFound { name, version } => {
                write!(f, "checkpoint {name} v{version} not found")
            }
            VelocError::Corrupt { path } => write!(f, "corrupt checkpoint blob at {path}"),
            VelocError::UnknownRegion { id } => write!(f, "no protected region with id {id}"),
            VelocError::Mpi(e) => write!(f, "MPI error during restart agreement: {e}"),
            VelocError::NoCommunicator => {
                write!(f, "collective restart agreement requires a communicator")
            }
            VelocError::BackendSpawn { reason } => {
                write!(
                    f,
                    "could not spawn flush backend ({reason}); flushing synchronously"
                )
            }
        }
    }
}

impl std::error::Error for VelocError {}

impl From<MpiError> for VelocError {
    fn from(e: MpiError) -> Self {
        VelocError::Mpi(e)
    }
}

/// The per-rank checkpoint/restart client.
pub struct Client {
    cluster: Cluster,
    /// Physical (global) rank: placement of NIC and scratch.
    physical_rank: usize,
    /// Logical rank: checkpoint naming. Mutable across Fenix repairs.
    logical_rank: Mutex<usize>,
    mode: Mode,
    async_flush: bool,
    regions: Mutex<BTreeMap<u32, Arc<dyn Protected>>>,
    /// `None` when flushing synchronously — either by configuration or
    /// because the backend thread could not be spawned (see `spawn_error`).
    backend: Option<ActiveBackend>,
    /// Why async flushing was degraded to synchronous, if it was.
    spawn_error: Option<VelocError>,
    recorder: Mutex<Recorder>,
}

impl Client {
    /// Initialize a client for `physical_rank` (which is also the initial
    /// logical rank).
    ///
    /// If the asynchronous flush backend cannot be spawned the client does
    /// not fail: it degrades to synchronous flushing (every checkpoint pays
    /// the scratch→PFS transfer inline) and records the reason, observable
    /// via [`Client::spawn_error`] / [`Client::async_flush_active`].
    pub fn init(cluster: Cluster, physical_rank: usize, config: Config) -> Self {
        let (backend, spawn_error) = if config.async_flush {
            match ActiveBackend::spawn(cluster.clone(), physical_rank) {
                Ok(b) => (Some(b), None),
                Err(e) => (None, Some(e)),
            }
        } else {
            (None, None)
        };
        Client {
            cluster,
            physical_rank,
            logical_rank: Mutex::new(physical_rank),
            mode: config.mode,
            async_flush: config.async_flush,
            regions: Mutex::new(BTreeMap::new()),
            backend,
            spawn_error,
            recorder: Mutex::new(Recorder::disabled()),
        }
    }

    /// Whether async flushing was requested by configuration (it may still
    /// have degraded; compare with [`Client::async_flush_active`]).
    pub fn async_flush_requested(&self) -> bool {
        self.async_flush
    }

    /// Whether flushes actually run on the background thread. False in sync
    /// mode and when async mode degraded because the backend failed to spawn.
    pub fn async_flush_active(&self) -> bool {
        self.backend.is_some()
    }

    /// The spawn failure that degraded async flushing, if any.
    pub fn spawn_error(&self) -> Option<&VelocError> {
        self.spawn_error.as_ref()
    }

    /// Attach a telemetry recorder; checkpoint/restart lifecycle events go
    /// through it (including [`Event::FlushDone`] from the backend thread).
    pub fn set_recorder(&self, rec: Recorder) {
        *self.recorder.lock() = rec;
    }

    fn recorder(&self) -> Recorder {
        self.recorder.lock().clone()
    }

    pub fn mode(&self) -> Mode {
        self.mode
    }

    pub fn physical_rank(&self) -> usize {
        self.physical_rank
    }

    pub fn logical_rank(&self) -> usize {
        *self.logical_rank.lock()
    }

    /// Update the logical rank after a process-pool change (Fenix repair or
    /// shrunk-communicator continuation).
    pub fn set_rank(&self, logical_rank: usize) {
        *self.logical_rank.lock() = logical_rank;
    }

    fn node(&self) -> usize {
        self.cluster.topology().node_of(self.physical_rank)
    }

    fn path(&self, name: &str, version: u64) -> String {
        format!("{name}/v{version}/r{}", self.logical_rank())
    }

    /// Offer a blob about to be written to the installed fault injector
    /// (chaos corruption hook); identity when no injector is installed.
    fn offer_to_injector(
        cluster: &Cluster,
        tier: cluster::StorageTier,
        path: &str,
        blob: Bytes,
    ) -> Bytes {
        match cluster.injector() {
            Some(inj) => inj.corrupt_write(tier, path, &blob).unwrap_or(blob),
            None => blob,
        }
    }

    // ---- protection -------------------------------------------------------

    /// Register a memory region under `id` (VeloC `mem_protect`). Replaces
    /// any previous region with the same id.
    pub fn protect(&self, id: u32, region: Arc<dyn Protected>) {
        self.recorder().emit_with(|| Event::Protect {
            name: id.to_string(),
            bytes: region.byte_len() as u64,
        });
        self.regions.lock().insert(id, region);
    }

    /// Remove a protected region.
    pub fn unprotect(&self, id: u32) -> bool {
        self.regions.lock().remove(&id).is_some()
    }

    /// Drop every protected region (used by a Kokkos Resilience context
    /// reset, which re-registers views after a repair).
    pub fn clear_protected(&self) {
        self.regions.lock().clear();
    }

    /// Number of protected regions.
    pub fn protected_count(&self) -> usize {
        self.regions.lock().len()
    }

    /// Total protected bytes (checkpoint size).
    pub fn protected_bytes(&self) -> usize {
        self.regions.lock().values().map(|r| r.byte_len()).sum()
    }

    // ---- checkpoint -------------------------------------------------------

    /// Take checkpoint `version` under `name`.
    ///
    /// Blocks on any previous outstanding flush (`checkpoint_wait`), then
    /// serializes the protected regions to node-local scratch; the flush to
    /// the parallel filesystem proceeds asynchronously unless the client is
    /// configured for synchronous flushing. The synchronous part — what the
    /// paper books as "Checkpoint Function" — is everything this method does
    /// before returning.
    pub fn checkpoint(&self, name: &str, version: u64) -> Result<(), VelocError> {
        let rec = self.recorder();
        rec.emit_with(|| Event::CheckpointBegin {
            name: name.to_owned(),
            version,
        });
        self.checkpoint_wait();
        let blob = {
            let regions = self.regions.lock();
            let parts: Vec<(u32, Bytes)> =
                regions.iter().map(|(&id, r)| (id, r.snapshot())).collect();
            serial::pack(&parts)
        };
        let path = self.path(name, version);
        let scratch_blob = Self::offer_to_injector(
            &self.cluster,
            cluster::StorageTier::Scratch,
            &path,
            blob.clone(),
        );
        self.cluster
            .scratch()
            .write(self.node(), &path, scratch_blob);
        rec.emit_with(|| Event::CheckpointLocal {
            name: name.to_owned(),
            version,
            bytes: blob.len() as u64,
        });
        if let Some(backend) = &self.backend {
            rec.emit_with(|| Event::FlushEnqueued {
                name: name.to_owned(),
                version,
            });
            backend.enqueue_flush(path, blob, name.to_owned(), version, rec);
        } else {
            self.cluster
                .network()
                .egress(self.physical_rank, blob.len());
            let bytes = blob.len() as u64;
            let pfs_blob =
                Self::offer_to_injector(&self.cluster, cluster::StorageTier::Pfs, &path, blob);
            self.cluster.pfs().write(&path, pfs_blob);
            rec.emit_with(|| Event::FlushDone {
                name: name.to_owned(),
                version,
                bytes,
            });
        }
        Ok(())
    }

    /// Block until all asynchronous flushes complete. A no-op when flushing
    /// synchronously (nothing is ever outstanding).
    pub fn checkpoint_wait(&self) {
        if let Some(backend) = &self.backend {
            backend.wait();
        }
    }

    // ---- restart ----------------------------------------------------------

    /// Latest version of `name` reachable *by this rank* (scratch or PFS).
    /// This is the local half of the paper's manual best-version reduction.
    pub fn latest_version(&self, name: &str) -> Option<u64> {
        let r = self.logical_rank();
        let suffix = format!("/r{r}");
        let parse = |p: &str| -> Option<u64> {
            // "{name}/v{version}/r{rank}"
            let rest = p.strip_prefix(name)?.strip_prefix("/v")?;
            let rest = rest.strip_suffix(&suffix)?;
            rest.parse().ok()
        };
        let mut best: Option<u64> = None;
        for p in self
            .cluster
            .scratch()
            .list(self.node(), &format!("{name}/"))
            .iter()
            .chain(self.cluster.pfs().list(&format!("{name}/")).iter())
        {
            if let Some(v) = parse(p) {
                best = Some(best.map_or(v, |b| b.max(v)));
            }
        }
        best
    }

    /// Whether checkpoint `name`/`version` is reachable by this rank.
    pub fn version_available(&self, name: &str, version: u64) -> bool {
        let path = self.path(name, version);
        self.cluster.scratch().exists(self.node(), &path) || self.cluster.pfs().exists(&path)
    }

    /// Whether this rank holds an *intact* (checksum-verified) copy of
    /// checkpoint `name`/`version` on either tier. A corrupted scratch copy
    /// with an intact PFS copy counts — restart falls back tier by tier.
    pub fn version_intact(&self, name: &str, version: u64) -> bool {
        let path = self.path(name, version);
        if let Some((blob, _)) = self.cluster.scratch().read(self.node(), &path) {
            if serial::verify(&blob) {
                return true;
            }
        }
        match self.cluster.pfs().read(&path) {
            Some((blob, _)) => serial::verify(&blob),
            None => false,
        }
    }

    /// Newest version of `name` at or below `bound` for which this rank
    /// holds an intact copy. This is the local half of the degraded
    /// agreement: a corrupt newest version must not wedge restart.
    pub fn latest_intact_version(&self, name: &str, bound: u64) -> Option<u64> {
        let r = self.logical_rank();
        let suffix = format!("/r{r}");
        let parse = |p: &str| -> Option<u64> {
            let rest = p.strip_prefix(name)?.strip_prefix("/v")?;
            rest.strip_suffix(&suffix)?.parse().ok()
        };
        let mut versions: Vec<u64> = self
            .cluster
            .scratch()
            .list(self.node(), &format!("{name}/"))
            .iter()
            .chain(self.cluster.pfs().list(&format!("{name}/")).iter())
            .filter_map(|p| parse(p))
            .filter(|&v| v <= bound)
            .collect();
        versions.sort_unstable();
        versions.dedup();
        versions
            .into_iter()
            .rev()
            .find(|&v| self.version_intact(name, v))
    }

    /// Agree on the newest version of `name` that is intact on *every* rank
    /// of `comm` — the degraded-but-correct replacement for the paper's
    /// plain min-reduction, which fails on an agreed-but-corrupt version.
    ///
    /// The agreement is iterative: each round proposes the min over ranks of
    /// each rank's newest intact version below the current bound, then every
    /// rank verifies it holds that exact version intact; on any miss the
    /// bound drops below the proposal and the loop repeats. Rounds strictly
    /// decrease the bound, so the loop terminates within the version count.
    /// With `comm == None` the answer is local-only (`Single`-mode restart
    /// on a sole rank, tests).
    pub fn agree_intact_version(
        &self,
        name: &str,
        comm: Option<&Comm>,
    ) -> Result<Option<u64>, VelocError> {
        self.agree_intact_version_below(name, u64::MAX, comm)
    }

    /// [`Self::agree_intact_version`] restricted to versions `<= bound`.
    ///
    /// Restart logic needs this when the newest agreed version leaves no
    /// work to replay (a kill at the final commit): the job re-agrees on an
    /// older version so recovery lands inside the iteration space.
    pub fn agree_intact_version_below(
        &self,
        name: &str,
        bound: u64,
        comm: Option<&Comm>,
    ) -> Result<Option<u64>, VelocError> {
        let Some(comm) = comm else {
            return Ok(self.latest_intact_version(name, bound));
        };
        let mut bound = bound;
        loop {
            let local = self
                .latest_intact_version(name, bound)
                .map_or(-1i64, |v| v as i64);
            let proposed = comm.allreduce_scalar(local, ReduceOp::Min)?;
            if proposed < 0 {
                return Ok(None);
            }
            let v = proposed as u64;
            let ok_here = self.version_intact(name, v) as i64;
            let all_ok = comm.allreduce_scalar(ok_here, ReduceOp::Min)?;
            if all_ok == 1 {
                return Ok(Some(v));
            }
            // Some rank's copy of `v` is corrupt or missing: every rank
            // lowers the bound identically and proposes again.
            if v == 0 {
                return Ok(None);
            }
            bound = v - 1;
        }
    }

    /// Find the best restartable version.
    ///
    /// `Single` mode answers locally; `Collective` mode agrees over `comm`
    /// on the newest version available everywhere (min over ranks of each
    /// rank's latest). Collective mode *requires* a communicator — this is
    /// precisely the coupling the paper had to break for Fenix integration.
    pub fn restart_test(&self, name: &str, comm: Option<&Comm>) -> Result<Option<u64>, VelocError> {
        match self.mode {
            Mode::Single => Ok(self.latest_version(name)),
            Mode::Collective => {
                // The Fenix integration owns the communicator lifecycle; a
                // missing one here is a wiring error the caller must see,
                // not a panic on the restart path.
                let Some(comm) = comm else {
                    return Err(VelocError::NoCommunicator);
                };
                // Encode None as i64 -1 so min() finds the weakest rank.
                let local = self.latest_version(name).map_or(-1i64, |v| v as i64);
                let agreed = comm.allreduce_scalar(local, ReduceOp::Min)?;
                Ok((agreed >= 0).then_some(agreed as u64))
            }
        }
    }

    /// Restore every protected region from checkpoint `name`/`version`.
    ///
    /// Reads node-local scratch when available (survivors), falling back to
    /// the parallel filesystem (recovered replacement ranks). Returns the
    /// number of regions restored.
    pub fn restart(&self, name: &str, version: u64) -> Result<usize, VelocError> {
        let rec = self.recorder();
        rec.emit_with(|| Event::RestartBegin {
            name: name.to_owned(),
            version,
        });
        let out = self.restart_inner(name, version);
        rec.emit_with(|| Event::RestartEnd {
            name: name.to_owned(),
            version,
            ok: out.is_ok(),
        });
        out
    }

    fn restart_inner(&self, name: &str, version: u64) -> Result<usize, VelocError> {
        let path = self.path(name, version);
        // Prefer scratch, but degrade tier by tier: a corrupt scratch copy
        // must not mask an intact PFS copy of the same version.
        let mut found = false;
        let mut parts: Option<Vec<(u32, Bytes)>> = None;
        if let Some((blob, _)) = self.cluster.scratch().read(self.node(), &path) {
            found = true;
            parts = serial::unpack(&blob);
        }
        if parts.is_none() {
            if let Some((blob, _)) = self.cluster.pfs().read(&path) {
                found = true;
                parts = serial::unpack(&blob);
            }
        }
        if !found {
            return Err(VelocError::NotFound {
                name: name.to_owned(),
                version,
            });
        }
        let parts = parts.ok_or(VelocError::Corrupt { path })?;
        let regions = self.regions.lock();
        let mut restored = 0;
        for (id, payload) in parts {
            let region = regions.get(&id).ok_or(VelocError::UnknownRegion { id })?;
            region.restore(&payload);
            restored += 1;
        }
        Ok(restored)
    }

    /// Drop all but the newest `keep_last` versions of `name` reachable by
    /// this rank, from both storage tiers (VeloC's bounded checkpoint
    /// history). Returns how many versions were removed.
    pub fn prune(&self, name: &str, keep_last: usize) -> usize {
        self.checkpoint_wait();
        let r = self.logical_rank();
        let suffix = format!("/r{r}");
        let parse = |p: &str| -> Option<u64> {
            p.strip_prefix(name)?
                .strip_prefix("/v")?
                .strip_suffix(&suffix)?
                .parse()
                .ok()
        };
        let mut versions: Vec<u64> = self
            .cluster
            .scratch()
            .list(self.node(), &format!("{name}/"))
            .iter()
            .chain(self.cluster.pfs().list(&format!("{name}/")).iter())
            .filter_map(|p| parse(p))
            .collect();
        versions.sort_unstable();
        versions.dedup();
        if versions.len() <= keep_last {
            return 0;
        }
        let cutoff = versions.len() - keep_last;
        let mut removed = 0;
        for &v in &versions[..cutoff] {
            let path = self.path(name, v);
            let s = self.cluster.scratch().remove(self.node(), &path);
            let p = self.cluster.pfs().remove(&path);
            if s || p {
                removed += 1;
            }
        }
        removed
    }

    /// Finalize: drain outstanding flushes. (Also happens on drop.)
    pub fn finalize(&self) {
        self.checkpoint_wait();
    }
}

impl std::fmt::Debug for Client {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Client")
            .field("physical_rank", &self.physical_rank)
            .field("logical_rank", &self.logical_rank())
            .field("mode", &self.mode)
            .field("regions", &self.protected_count())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::region::VecRegion;
    use cluster::{ClusterConfig, TimeScale};

    fn cluster(n: usize) -> Cluster {
        let cfg = ClusterConfig {
            nodes: n,
            ranks_per_node: 1,
            time_scale: TimeScale::instant(),
            ..ClusterConfig::default()
        };
        Cluster::new(cfg)
    }

    fn client(c: &Cluster, rank: usize) -> Client {
        Client::init(c.clone(), rank, Config::default())
    }

    #[test]
    fn collective_restart_test_without_comm_is_an_error() {
        let c = cluster(1);
        let cl = Client::init(
            c.clone(),
            0,
            Config {
                mode: Mode::Collective,
                ..Config::default()
            },
        );
        assert!(matches!(
            cl.restart_test("ck", None),
            Err(VelocError::NoCommunicator)
        ));
    }

    #[test]
    fn checkpoint_restart_roundtrip() {
        let c = cluster(1);
        let cl = client(&c, 0);
        let r = VecRegion::new(vec![1.0f64, 2.0, 3.0]);
        cl.protect(0, Arc::new(r.clone()));
        cl.checkpoint("heat", 1).unwrap();
        r.lock().iter_mut().for_each(|x| *x = 0.0);
        assert_eq!(cl.restart("heat", 1).unwrap(), 1);
        assert_eq!(*r.lock(), vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn latest_version_scans_both_tiers() {
        let c = cluster(1);
        let cl = client(&c, 0);
        cl.protect(0, Arc::new(VecRegion::new(vec![0u8; 8])));
        assert_eq!(cl.latest_version("ck"), None);
        cl.checkpoint("ck", 1).unwrap();
        cl.checkpoint("ck", 4).unwrap();
        cl.checkpoint("ck", 2).unwrap();
        cl.checkpoint_wait();
        assert_eq!(cl.latest_version("ck"), Some(4));
        // Scratch lost (node reboot): PFS copy still found.
        c.scratch().purge_node(0);
        assert_eq!(cl.latest_version("ck"), Some(4));
    }

    #[test]
    fn restart_falls_back_to_pfs() {
        let c = cluster(1);
        let cl = client(&c, 0);
        let r = VecRegion::new(vec![7u32; 4]);
        cl.protect(3, Arc::new(r.clone()));
        cl.checkpoint("ck", 1).unwrap();
        cl.checkpoint_wait();
        c.scratch().purge_node(0);
        r.lock().iter_mut().for_each(|x| *x = 0);
        assert_eq!(cl.restart("ck", 1).unwrap(), 1);
        assert_eq!(*r.lock(), vec![7u32; 4]);
    }

    #[test]
    fn restart_missing_version_errors() {
        let c = cluster(1);
        let cl = client(&c, 0);
        assert_eq!(
            cl.restart("nope", 9),
            Err(VelocError::NotFound {
                name: "nope".into(),
                version: 9
            })
        );
    }

    #[test]
    fn set_rank_redirects_naming() {
        let c = cluster(2);
        // Rank 0 checkpoints as logical rank 0 and flushes to PFS.
        let cl0 = client(&c, 0);
        let r0 = VecRegion::new(vec![42u64]);
        cl0.protect(0, Arc::new(r0.clone()));
        cl0.checkpoint("ck", 1).unwrap();
        cl0.checkpoint_wait();
        // Rank 1 (a spare replacing rank 0) assumes logical rank 0 and can
        // restore rank 0's checkpoint — from the PFS, since its own scratch
        // never saw it.
        let cl1 = client(&c, 1);
        let r1 = VecRegion::new(vec![0u64]);
        cl1.protect(0, Arc::new(r1.clone()));
        cl1.set_rank(0);
        assert_eq!(cl1.latest_version("ck"), Some(1));
        cl1.restart("ck", 1).unwrap();
        assert_eq!(*r1.lock(), vec![42]);
    }

    #[test]
    fn unknown_region_id_errors() {
        let c = cluster(1);
        let cl = client(&c, 0);
        cl.protect(5, Arc::new(VecRegion::new(vec![1u8])));
        cl.checkpoint("ck", 1).unwrap();
        cl.clear_protected();
        cl.protect(6, Arc::new(VecRegion::new(vec![1u8])));
        assert_eq!(
            cl.restart("ck", 1),
            Err(VelocError::UnknownRegion { id: 5 })
        );
    }

    #[test]
    fn multiple_regions_restore_by_id() {
        let c = cluster(1);
        let cl = client(&c, 0);
        let a = VecRegion::new(vec![1u8, 2]);
        let b = VecRegion::new(vec![9.0f64]);
        cl.protect(1, Arc::new(a.clone()));
        cl.protect(2, Arc::new(b.clone()));
        cl.checkpoint("ck", 1).unwrap();
        // Re-register in the opposite order; ids still match.
        cl.clear_protected();
        cl.protect(2, Arc::new(b.clone()));
        cl.protect(1, Arc::new(a.clone()));
        a.lock().iter_mut().for_each(|x| *x = 0);
        b.lock().iter_mut().for_each(|x| *x = 0.0);
        assert_eq!(cl.restart("ck", 1).unwrap(), 2);
        assert_eq!(*a.lock(), vec![1, 2]);
        assert_eq!(*b.lock(), vec![9.0]);
    }

    #[test]
    fn protected_bytes_counts() {
        let c = cluster(1);
        let cl = client(&c, 0);
        cl.protect(0, Arc::new(VecRegion::new(vec![0u64; 10])));
        cl.protect(1, Arc::new(VecRegion::new(vec![0u8; 3])));
        assert_eq!(cl.protected_bytes(), 83);
        assert_eq!(cl.protected_count(), 2);
    }

    #[test]
    fn prune_keeps_newest_versions() {
        let c = cluster(1);
        let cl = client(&c, 0);
        cl.protect(0, Arc::new(VecRegion::new(vec![1u8; 4])));
        for v in [1u64, 3, 5, 9] {
            cl.checkpoint("pr", v).unwrap();
        }
        cl.checkpoint_wait();
        assert_eq!(cl.prune("pr", 2), 2);
        assert!(!cl.version_available("pr", 1));
        assert!(!cl.version_available("pr", 3));
        assert!(cl.version_available("pr", 5));
        assert!(cl.version_available("pr", 9));
        assert_eq!(cl.latest_version("pr"), Some(9));
        // Pruning again removes nothing.
        assert_eq!(cl.prune("pr", 2), 0);
    }

    #[test]
    fn prune_is_per_name() {
        let c = cluster(1);
        let cl = client(&c, 0);
        cl.protect(0, Arc::new(VecRegion::new(vec![1u8; 4])));
        cl.checkpoint("a", 1).unwrap();
        cl.checkpoint("b", 1).unwrap();
        cl.checkpoint_wait();
        assert_eq!(cl.prune("a", 0), 1);
        assert!(cl.version_available("b", 1));
    }

    #[test]
    fn sync_mode_flushes_inline() {
        let c = cluster(1);
        let cl = Client::init(
            c.clone(),
            0,
            Config {
                mode: Mode::Single,
                async_flush: false,
            },
        );
        cl.protect(0, Arc::new(VecRegion::new(vec![5u8])));
        assert!(!cl.async_flush_active());
        assert!(cl.spawn_error().is_none());
        cl.checkpoint("ck", 1).unwrap();
        // No wait needed: already on the PFS.
        assert!(c.pfs().exists("ck/v1/r0"));
    }

    #[test]
    fn backend_spawn_failure_degrades_to_sync_flush() {
        let c = cluster(1);
        loom::thread::fail_next_spawn();
        let cl = client(&c, 0);
        // Async was requested but the backend could not start: the client
        // comes up anyway, reports why, and flushes inline from now on.
        assert!(!cl.async_flush_active());
        assert!(matches!(
            cl.spawn_error(),
            Some(VelocError::BackendSpawn { .. })
        ));
        let r = VecRegion::new(vec![3.5f32; 8]);
        cl.protect(0, Arc::new(r.clone()));
        cl.checkpoint("deg", 1).unwrap();
        // Synchronous semantics: on the PFS before any wait.
        assert!(c.pfs().exists("deg/v1/r0"));
        r.lock().iter_mut().for_each(|x| *x = 0.0);
        assert_eq!(cl.restart("deg", 1).unwrap(), 1);
        assert_eq!(*r.lock(), vec![3.5f32; 8]);
        cl.finalize();
    }
}
