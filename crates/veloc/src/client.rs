//! The VeloC client API.
//!
//! One [`Client`] per rank. The client distinguishes two rank identities:
//!
//! * the **physical rank** — the global rank whose NIC and node-local
//!   scratch this client uses; and
//! * the **logical rank** — the id used in checkpoint file names.
//!
//! Under Fenix, a spare that replaces a failed rank keeps its own physical
//! placement but assumes the victim's *logical* rank ([`Client::set_rank`],
//! the paper's "update cached information … on the current rank ID"). Its
//! checkpoints-by-name are on the parallel filesystem (flushed there by the
//! victim before dying) but not in its own scratch — so a recovered rank
//! pays a remote read while survivors restore from scratch. This asymmetry
//! is central to the paper's recovery-cost results.

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::sync::Arc;

use bytes::Bytes;
use cluster::Cluster;
use parking_lot::Mutex;
use simmpi::{Comm, MpiError, ReduceOp};
use telemetry::{Event, Recorder};

use crate::backend::ActiveBackend;
use crate::pool;
use crate::region::Protected;
use crate::serial;

/// Longest delta chain the client will emit before forcing a full frame.
/// Bounds both restart's chain walk and the blast radius of a lost base.
pub const MAX_DELTA_DEPTH: usize = 8;

/// Worker fan-out for the parallel pack (including the calling thread).
const PACK_WORKERS: usize = 4;

/// Changed-payload volume below which the pack stays on the calling thread
/// (thread spawn costs more than serializing a few KiB).
const PARALLEL_PACK_THRESHOLD: usize = 64 * 1024;

/// Worker fan-out for restart's parallel payload verification (including
/// the calling thread).
const RESTART_WORKERS: usize = 4;

/// Chain payload volume below which restart verification stays on the
/// calling thread — same spawn-cost argument as the pack threshold.
const PARALLEL_RESTART_THRESHOLD: usize = 64 * 1024;

/// Delta bookkeeping for one checkpoint name: what the last *committed*
/// (acknowledged to the application) version looked like.
#[derive(Clone, Debug)]
struct ChainState {
    /// Version the stamps below were committed under.
    version: u64,
    /// Region id → dirty-tracking stamp at commit time. `None` stamps mean
    /// the region does not support tracking and is re-sent every time.
    gens: BTreeMap<u32, Option<u64>>,
    /// Delta-chain length ending at `version` (0 = full frame).
    depth: usize,
}

/// How restart agreement is performed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Mode {
    /// The client owns a communicator and agrees on the globally best
    /// version internally (stock VeloC). Incompatible with a changing
    /// process pool.
    Collective,
    /// The client answers from local knowledge only; the caller performs
    /// the agreement (the non-collective mode this paper's integration
    /// requires).
    Single,
}

/// Client configuration.
#[derive(Clone, Debug)]
pub struct Config {
    pub mode: Mode,
    /// Flush scratch→PFS asynchronously on the backend thread (VeloC's
    /// async mode, used throughout the paper). When false the flush happens
    /// inside `checkpoint` (VeloC sync mode).
    pub async_flush: bool,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            mode: Mode::Single,
            async_flush: true,
        }
    }
}

/// Per-stage accounting of one restart — the numbers behind the paper's
/// recovery-cost claim. `read_ns` covers the chain walk (tier reads + meta
/// parse), `verify_ns` the parallel payload checksumming, `apply_ns` the
/// in-order restore into protected regions. All three are modeled-clock
/// durations under a virtual clock and wall durations otherwise.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RestartReport {
    /// Regions restored.
    pub regions: usize,
    /// Payload bytes written back into protected memory.
    pub bytes_restored: u64,
    /// Frames the delta-chain walk visited (1 = full frame).
    pub frames_walked: usize,
    pub read_ns: u64,
    pub verify_ns: u64,
    pub apply_ns: u64,
}

/// Errors from checkpoint/restart operations.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum VelocError {
    /// No checkpoint with the requested name/version is reachable.
    NotFound { name: String, version: u64 },
    /// The stored blob failed to deserialize.
    Corrupt { path: String },
    /// A stored region id has no matching protected region.
    UnknownRegion { id: u32 },
    /// An MPI error during collective agreement.
    Mpi(MpiError),
    /// `Collective` mode was asked to agree without a communicator.
    NoCommunicator,
    /// The asynchronous flush backend thread could not be spawned. This is
    /// recoverable: the client degrades to synchronous flushing.
    BackendSpawn { reason: String },
}

impl std::fmt::Display for VelocError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VelocError::NotFound { name, version } => {
                write!(f, "checkpoint {name} v{version} not found")
            }
            VelocError::Corrupt { path } => write!(f, "corrupt checkpoint blob at {path}"),
            VelocError::UnknownRegion { id } => write!(f, "no protected region with id {id}"),
            VelocError::Mpi(e) => write!(f, "MPI error during restart agreement: {e}"),
            VelocError::NoCommunicator => {
                write!(f, "collective restart agreement requires a communicator")
            }
            VelocError::BackendSpawn { reason } => {
                write!(
                    f,
                    "could not spawn flush backend ({reason}); flushing synchronously"
                )
            }
        }
    }
}

impl std::error::Error for VelocError {}

impl From<MpiError> for VelocError {
    fn from(e: MpiError) -> Self {
        VelocError::Mpi(e)
    }
}

/// The per-rank checkpoint/restart client.
pub struct Client {
    cluster: Cluster,
    /// Physical (global) rank: placement of NIC and scratch.
    physical_rank: usize,
    /// Logical rank: checkpoint naming. Mutable across Fenix repairs.
    logical_rank: Mutex<usize>,
    mode: Mode,
    async_flush: bool,
    regions: Mutex<BTreeMap<u32, Arc<dyn Protected>>>,
    /// Per-name delta bookkeeping ([`ChainState`]). Cleared by
    /// [`Client::invalidate_deltas`] whenever the rank can no longer vouch
    /// for the base a delta would reference (logical-rank change, context
    /// reset).
    chains: Mutex<HashMap<String, ChainState>>,
    /// `None` when flushing synchronously — either by configuration or
    /// because the backend thread could not be spawned (see `spawn_error`).
    backend: Option<ActiveBackend>,
    /// Why async flushing was degraded to synchronous, if it was.
    spawn_error: Option<VelocError>,
    recorder: Mutex<Recorder>,
}

impl Client {
    /// Initialize a client for `physical_rank` (which is also the initial
    /// logical rank).
    ///
    /// If the asynchronous flush backend cannot be spawned the client does
    /// not fail: it degrades to synchronous flushing (every checkpoint pays
    /// the scratch→PFS transfer inline) and records the reason, observable
    /// via [`Client::spawn_error`] / [`Client::async_flush_active`].
    pub fn init(cluster: Cluster, physical_rank: usize, config: Config) -> Self {
        // Under a virtual-time cluster (the DES backend) there is no
        // free-running worker to overlap with: flushes run synchronously
        // on the rank task so the schedule stays a pure function of the
        // seed. This is a backend choice, not a degradation — spawn_error
        // stays clear.
        let async_flush = config.async_flush && !cluster.clock().is_virtual();
        let (backend, spawn_error) = if async_flush {
            match ActiveBackend::spawn(cluster.clone(), physical_rank) {
                Ok(b) => (Some(b), None),
                Err(e) => (None, Some(e)),
            }
        } else {
            (None, None)
        };
        Client {
            cluster,
            physical_rank,
            logical_rank: Mutex::new(physical_rank),
            mode: config.mode,
            async_flush: config.async_flush,
            regions: Mutex::new(BTreeMap::new()),
            chains: Mutex::new(HashMap::new()),
            backend,
            spawn_error,
            recorder: Mutex::new(Recorder::disabled()),
        }
    }

    /// Whether async flushing was requested by configuration (it may still
    /// have degraded; compare with [`Client::async_flush_active`]).
    pub fn async_flush_requested(&self) -> bool {
        self.async_flush
    }

    /// Whether flushes actually run on the background thread. False in sync
    /// mode and when async mode degraded because the backend failed to spawn.
    pub fn async_flush_active(&self) -> bool {
        self.backend.is_some()
    }

    /// The spawn failure that degraded async flushing, if any.
    pub fn spawn_error(&self) -> Option<&VelocError> {
        self.spawn_error.as_ref()
    }

    /// Attach a telemetry recorder; checkpoint/restart lifecycle events go
    /// through it (including [`Event::FlushDone`] from the backend thread).
    pub fn set_recorder(&self, rec: Recorder) {
        *self.recorder.lock() = rec;
    }

    fn recorder(&self) -> Recorder {
        self.recorder.lock().clone()
    }

    pub fn mode(&self) -> Mode {
        self.mode
    }

    pub fn physical_rank(&self) -> usize {
        self.physical_rank
    }

    pub fn logical_rank(&self) -> usize {
        *self.logical_rank.lock()
    }

    /// Update the logical rank after a process-pool change (Fenix repair or
    /// shrunk-communicator continuation).
    ///
    /// Also invalidates delta bookkeeping: checkpoint paths embed the
    /// logical rank, so any base version committed under the old identity
    /// is not the file a delta written under the new identity would chain
    /// to. A recovered rank must never emit a delta against a base it no
    /// longer possesses — its first checkpoint after this call is a full
    /// frame.
    pub fn set_rank(&self, logical_rank: usize) {
        self.invalidate_deltas();
        *self.logical_rank.lock() = logical_rank;
    }

    /// Forget every committed delta base, forcing the next checkpoint of
    /// every name to be a self-contained full frame. Called on any event
    /// after which this rank can no longer vouch for its bases: a Fenix
    /// repair / context reset ([`Self::set_rank`] calls this internally),
    /// or an explicit backend clear.
    pub fn invalidate_deltas(&self) {
        self.chains.lock().clear();
    }

    fn node(&self) -> usize {
        self.cluster.topology().node_of(self.physical_rank)
    }

    fn path(&self, name: &str, version: u64) -> String {
        format!("{name}/v{version}/r{}", self.logical_rank())
    }

    /// Offer a blob about to be written to the installed fault injector
    /// (chaos corruption hook). Borrows the blob: `Some(damaged)` only when
    /// an injector actually fires, so the common path never copies.
    fn offer_to_injector(
        cluster: &Cluster,
        tier: cluster::StorageTier,
        path: &str,
        blob: &Bytes,
    ) -> Option<Bytes> {
        cluster
            .injector()
            .and_then(|inj| inj.corrupt_write(tier, path, blob))
    }

    // ---- protection -------------------------------------------------------

    /// Register a memory region under `id` (VeloC `mem_protect`). Replaces
    /// any previous region with the same id.
    pub fn protect(&self, id: u32, region: Arc<dyn Protected>) {
        self.recorder().emit_with(|| Event::Protect {
            name: id.to_string(),
            bytes: region.byte_len() as u64,
        });
        self.regions.lock().insert(id, region);
    }

    /// Remove a protected region.
    pub fn unprotect(&self, id: u32) -> bool {
        self.regions.lock().remove(&id).is_some()
    }

    /// Drop every protected region (used by a Kokkos Resilience context
    /// reset, which re-registers views after a repair).
    ///
    /// Does *not* invalidate delta bookkeeping: generation stamps are
    /// globally unique, so re-registering the same allocations later still
    /// matches the committed stamps (delta resumes), while registering
    /// different allocations under the same ids can never collide with
    /// them (full frame follows). Reset paths that also lose the *files* a
    /// delta would chain to call [`Self::invalidate_deltas`] explicitly.
    pub fn clear_protected(&self) {
        self.regions.lock().clear();
    }

    /// Replace the whole protection table in one call — equivalent to
    /// [`Self::clear_protected`] followed by [`Self::protect`] for each
    /// entry, in one lock acquisition. Kokkos Resilience re-registers
    /// every captured view before each checkpoint; routing that through
    /// here keeps re-registration cheap and delta-friendly.
    pub fn protect_exact(&self, entries: Vec<(u32, Arc<dyn Protected>)>) {
        let rec = self.recorder();
        for (id, region) in &entries {
            rec.emit_with(|| Event::Protect {
                name: id.to_string(),
                bytes: region.byte_len() as u64,
            });
        }
        let mut regions = self.regions.lock();
        regions.clear();
        regions.extend(entries);
    }

    /// Number of protected regions.
    pub fn protected_count(&self) -> usize {
        self.regions.lock().len()
    }

    /// Total protected bytes (checkpoint size).
    pub fn protected_bytes(&self) -> usize {
        self.regions.lock().values().map(|r| r.byte_len()).sum()
    }

    // ---- checkpoint -------------------------------------------------------

    /// Take checkpoint `version` under `name`.
    ///
    /// Blocks on any previous outstanding flush (`checkpoint_wait`), then
    /// serializes the protected regions to node-local scratch; the flush to
    /// the parallel filesystem proceeds asynchronously unless the client is
    /// configured for synchronous flushing. The synchronous part — what the
    /// paper books as "Checkpoint Function" — is everything this method does
    /// before returning.
    ///
    /// The frame written is incremental where the dirty tracking allows:
    /// regions whose generation stamp did not move since the last committed
    /// version of `name` are referenced by id only (VCF2 delta), so the
    /// synchronous cost scales with *changed* bytes, not protected bytes.
    /// Changed-region serialization and CRC fan out across a small worker
    /// pool when the payload volume warrants it.
    pub fn checkpoint(&self, name: &str, version: u64) -> Result<(), VelocError> {
        let rec = self.recorder();
        rec.emit_with(|| Event::CheckpointBegin {
            name: name.to_owned(),
            version,
        });
        self.checkpoint_wait();
        // Snapshot the region *handles* under the lock and pack outside
        // it, so a concurrent `protect` from another thread never stalls
        // behind a large pack.
        let handles: Vec<(u32, Arc<dyn Protected>)> = {
            let regions = self.regions.lock();
            regions.iter().map(|(&id, r)| (id, Arc::clone(r))).collect()
        };
        // Read stamps *before* snapshotting. Writers re-stamp before
        // taking their data lock, so this order means a racing write is
        // either fully visible in the snapshot or re-stamps afterwards and
        // dirties the next checkpoint — never silently skipped.
        let gens: Vec<(u32, Option<u64>)> = handles
            .iter()
            .map(|(id, r)| (*id, r.generation()))
            .collect();
        let (base, depth, unchanged) = self.plan_delta(name, version, &gens);
        let unchanged_set: BTreeSet<u32> = unchanged.iter().copied().collect();
        let changed: Vec<(u32, Arc<dyn Protected>)> = handles
            .iter()
            .filter(|(id, _)| !unchanged_set.contains(id))
            .map(|(id, r)| (*id, Arc::clone(r)))
            .collect();
        let blob = self.pack_blob(base, &changed, &unchanged);
        if let Some(metrics) = rec.metrics() {
            let protected: usize = handles.iter().map(|(_, r)| r.byte_len()).sum();
            metrics
                .counter(telemetry::names::VELOC_BYTES_PROTECTED)
                .add(protected as u64);
            metrics
                .counter(telemetry::names::VELOC_BYTES_WRITTEN)
                .add(blob.len() as u64);
            if base.is_some() {
                metrics.counter(telemetry::names::VELOC_DELTA_FRAMES).inc();
            }
        }
        let path = self.path(name, version);
        let scratch_blob =
            Self::offer_to_injector(&self.cluster, cluster::StorageTier::Scratch, &path, &blob)
                .unwrap_or_else(|| blob.clone());
        self.cluster
            .scratch()
            .write(self.node(), &path, scratch_blob);
        // Commit the stamps only after the blob exists on scratch: this
        // version is now a legitimate base for the next delta.
        self.chains.lock().insert(
            name.to_owned(),
            ChainState {
                version,
                gens: gens.into_iter().collect(),
                depth,
            },
        );
        rec.emit_with(|| Event::CheckpointLocal {
            name: name.to_owned(),
            version,
            bytes: blob.len() as u64,
        });
        if let Some(backend) = &self.backend {
            rec.emit_with(|| Event::FlushEnqueued {
                name: name.to_owned(),
                version,
            });
            backend.enqueue_flush(path, blob, name.to_owned(), version, rec);
        } else {
            self.cluster
                .network()
                .egress(self.physical_rank, blob.len());
            let bytes = blob.len() as u64;
            let pfs_blob =
                Self::offer_to_injector(&self.cluster, cluster::StorageTier::Pfs, &path, &blob)
                    .unwrap_or(blob);
            self.cluster.pfs().write(&path, pfs_blob);
            rec.emit_with(|| Event::FlushDone {
                name: name.to_owned(),
                version,
                bytes,
            });
        }
        Ok(())
    }

    /// Assemble the frame for `changed` regions (zero-copy pack).
    ///
    /// The fast path lays the finished frame out up front and serializes
    /// each region *straight into its payload slot* — one copy from
    /// protected memory to the frame, no intermediate `Bytes` snapshots —
    /// fanning the fill + CRC work out across the pack pool when the
    /// changed volume warrants it. A region whose byte length drifted
    /// between planning and serialization (a concurrent resize) invalidates
    /// the planned layout; the whole frame then falls back to the copying
    /// [`serial::pack_frame`] path, whose layout follows the snapshots
    /// themselves.
    fn pack_blob(
        &self,
        base: Option<u64>,
        changed: &[(u32, Arc<dyn Protected>)],
        unchanged: &[u32],
    ) -> Bytes {
        let plan: Vec<(u32, usize)> = changed.iter().map(|(id, r)| (*id, r.byte_len())).collect();
        let changed_bytes: usize = plan.iter().map(|&(_, len)| len).sum();
        let workers = if changed_bytes >= PARALLEL_PACK_THRESHOLD {
            PACK_WORKERS
        } else {
            1
        };
        let mut builder = serial::FrameBuilder::new(base, &plan, unchanged);
        let fills: Vec<Option<Option<u32>>> = {
            let work: Vec<(&Arc<dyn Protected>, &mut [u8])> = changed
                .iter()
                .map(|(_, r)| r)
                .zip(builder.payloads_mut())
                .collect();
            pool::scoped_map(work, workers, |(r, slot)| {
                if r.snapshot_into(slot) {
                    Some(serial::crc32(slot))
                } else {
                    None
                }
            })
        };
        let mut drifted = false;
        for (i, (fill, (_, region))) in fills.iter().zip(changed).enumerate() {
            match fill {
                Some(Some(crc)) => builder.set_crc(i, *crc),
                // The region resized between planning and serialization.
                Some(None) => {
                    drifted = true;
                    break;
                }
                // A pool worker died mid-fill: recompute inline.
                None => {
                    if region.snapshot_into(builder.payload_mut(i)) {
                        let crc = serial::crc32(builder.payload(i));
                        builder.set_crc(i, crc);
                    } else {
                        drifted = true;
                        break;
                    }
                }
            }
        }
        if !drifted {
            return builder.seal();
        }
        let packed: Vec<serial::PackedRegion> = changed
            .iter()
            .map(|(id, r)| serial::PackedRegion::new(*id, r.snapshot()))
            .collect();
        serial::pack_frame(base, &packed, unchanged)
    }

    /// Decide the delta plan for the next checkpoint of `name`: the base
    /// version to reference (`None` = full frame), the resulting chain
    /// depth, and the ids to carry as unchanged.
    ///
    /// A region counts as unchanged only under the strictest reading: the
    /// committed state is for an older version of the same name, the region
    /// id sets match exactly, and both stamps are `Some` and equal. Any
    /// doubt — missing state, version reuse, membership drift, a `None`
    /// stamp, chain at [`MAX_DELTA_DEPTH`] — degrades to a full frame.
    fn plan_delta(
        &self,
        name: &str,
        version: u64,
        gens: &[(u32, Option<u64>)],
    ) -> (Option<u64>, usize, Vec<u32>) {
        let chains = self.chains.lock();
        let Some(committed) = chains.get(name) else {
            return (None, 0, Vec::new());
        };
        let ids_match = committed.gens.len() == gens.len()
            && gens.iter().all(|(id, _)| committed.gens.contains_key(id));
        if committed.version >= version || committed.depth >= MAX_DELTA_DEPTH || !ids_match {
            return (None, 0, Vec::new());
        }
        let unchanged: Vec<u32> = gens
            .iter()
            .filter(|(id, g)| {
                g.is_some() && committed.gens.get(id).map(|c| *c == *g).unwrap_or(false)
            })
            .map(|(id, _)| *id)
            .collect();
        if unchanged.is_empty() {
            // Nothing to reference: a delta frame would only add a chain
            // dependency without saving a byte.
            return (None, 0, Vec::new());
        }
        (Some(committed.version), committed.depth + 1, unchanged)
    }

    /// Block until all asynchronous flushes complete. A no-op when flushing
    /// synchronously (nothing is ever outstanding).
    pub fn checkpoint_wait(&self) {
        if let Some(backend) = &self.backend {
            // lint: sanction(blocks): delegates to the backend drain
            // barrier; same DES yield point. audited 2026-08.
            backend.wait();
        }
    }

    // ---- restart ----------------------------------------------------------

    /// Latest version of `name` reachable *by this rank* (scratch or PFS).
    /// This is the local half of the paper's manual best-version reduction.
    pub fn latest_version(&self, name: &str) -> Option<u64> {
        let r = self.logical_rank();
        let suffix = format!("/r{r}");
        let parse = |p: &str| -> Option<u64> {
            // "{name}/v{version}/r{rank}"
            let rest = p.strip_prefix(name)?.strip_prefix("/v")?;
            let rest = rest.strip_suffix(&suffix)?;
            rest.parse().ok()
        };
        let mut best: Option<u64> = None;
        for p in self
            .cluster
            .scratch()
            .list(self.node(), &format!("{name}/"))
            .iter()
            .chain(self.cluster.pfs().list(&format!("{name}/")).iter())
        {
            if let Some(v) = parse(p) {
                best = Some(best.map_or(v, |b| b.max(v)));
            }
        }
        best
    }

    /// Whether checkpoint `name`/`version` is reachable by this rank.
    pub fn version_available(&self, name: &str, version: u64) -> bool {
        let path = self.path(name, version);
        self.cluster.scratch().exists(self.node(), &path) || self.cluster.pfs().exists(&path)
    }

    /// Read and decode an intact frame of `name`/`version`, preferring
    /// node-local scratch and degrading to the PFS — a corrupted scratch
    /// copy must not mask an intact PFS copy of the same version.
    fn read_frame(&self, name: &str, version: u64) -> Option<serial::Frame> {
        let path = self.path(name, version);
        if let Some((blob, _)) = self.cluster.scratch().read(self.node(), &path) {
            if let Some(frame) = serial::unpack_any(&blob) {
                return Some(frame);
            }
        }
        let (blob, _) = self.cluster.pfs().read(&path)?;
        serial::unpack_any(&blob)
    }

    /// Whether this rank holds an *intact* (checksum-verified) copy of
    /// checkpoint `name`/`version` on either tier. A corrupted scratch copy
    /// with an intact PFS copy counts — restart falls back tier by tier.
    ///
    /// For an incremental (VCF2 delta) frame this walks the whole base
    /// chain: a delta is only as restorable as every frame beneath it, on
    /// whichever tier each happens to survive. Base references must
    /// strictly decrease, so a corrupt forward/self reference terminates
    /// the walk as not-intact instead of looping.
    pub fn version_intact(&self, name: &str, version: u64) -> bool {
        let mut v = version;
        loop {
            let Some(frame) = self.read_frame(name, v) else {
                return false;
            };
            match frame.base_version {
                None => return true,
                Some(base) if base < v => v = base,
                Some(_) => return false,
            }
        }
    }

    /// Newest version of `name` at or below `bound` for which this rank
    /// holds an intact copy. This is the local half of the degraded
    /// agreement: a corrupt newest version must not wedge restart.
    pub fn latest_intact_version(&self, name: &str, bound: u64) -> Option<u64> {
        let r = self.logical_rank();
        let suffix = format!("/r{r}");
        let parse = |p: &str| -> Option<u64> {
            let rest = p.strip_prefix(name)?.strip_prefix("/v")?;
            rest.strip_suffix(&suffix)?.parse().ok()
        };
        let mut versions: Vec<u64> = self
            .cluster
            .scratch()
            .list(self.node(), &format!("{name}/"))
            .iter()
            .chain(self.cluster.pfs().list(&format!("{name}/")).iter())
            .filter_map(|p| parse(p))
            .filter(|&v| v <= bound)
            .collect();
        versions.sort_unstable();
        versions.dedup();
        versions
            .into_iter()
            .rev()
            .find(|&v| self.version_intact(name, v))
    }

    /// Agree on the newest version of `name` that is intact on *every* rank
    /// of `comm` — the degraded-but-correct replacement for the paper's
    /// plain min-reduction, which fails on an agreed-but-corrupt version.
    ///
    /// The agreement is iterative: each round proposes the min over ranks of
    /// each rank's newest intact version below the current bound, then every
    /// rank verifies it holds that exact version intact; on any miss the
    /// bound drops below the proposal and the loop repeats. Rounds strictly
    /// decrease the bound, so the loop terminates within the version count.
    /// With `comm == None` the answer is local-only (`Single`-mode restart
    /// on a sole rank, tests).
    pub fn agree_intact_version(
        &self,
        name: &str,
        comm: Option<&Comm>,
    ) -> Result<Option<u64>, VelocError> {
        self.agree_intact_version_below(name, u64::MAX, comm)
    }

    /// [`Self::agree_intact_version`] restricted to versions `<= bound`.
    ///
    /// Restart logic needs this when the newest agreed version leaves no
    /// work to replay (a kill at the final commit): the job re-agrees on an
    /// older version so recovery lands inside the iteration space.
    pub fn agree_intact_version_below(
        &self,
        name: &str,
        bound: u64,
        comm: Option<&Comm>,
    ) -> Result<Option<u64>, VelocError> {
        let Some(comm) = comm else {
            return Ok(self.latest_intact_version(name, bound));
        };
        let mut bound = bound;
        loop {
            let local = self
                .latest_intact_version(name, bound)
                .map_or(-1i64, |v| v as i64);
            let proposed = comm.allreduce_scalar(local, ReduceOp::Min)?;
            if proposed < 0 {
                return Ok(None);
            }
            let v = proposed as u64;
            let ok_here = self.version_intact(name, v) as i64;
            let all_ok = comm.allreduce_scalar(ok_here, ReduceOp::Min)?;
            if all_ok == 1 {
                return Ok(Some(v));
            }
            // Some rank's copy of `v` is corrupt or missing: every rank
            // lowers the bound identically and proposes again.
            if v == 0 {
                return Ok(None);
            }
            bound = v - 1;
        }
    }

    /// Find the best restartable version.
    ///
    /// `Single` mode answers locally; `Collective` mode agrees over `comm`
    /// on the newest version available everywhere (min over ranks of each
    /// rank's latest). Collective mode *requires* a communicator — this is
    /// precisely the coupling the paper had to break for Fenix integration.
    pub fn restart_test(&self, name: &str, comm: Option<&Comm>) -> Result<Option<u64>, VelocError> {
        match self.mode {
            Mode::Single => Ok(self.latest_version(name)),
            Mode::Collective => {
                // The Fenix integration owns the communicator lifecycle; a
                // missing one here is a wiring error the caller must see,
                // not a panic on the restart path.
                let Some(comm) = comm else {
                    return Err(VelocError::NoCommunicator);
                };
                // Encode None as i64 -1 so min() finds the weakest rank.
                let local = self.latest_version(name).map_or(-1i64, |v| v as i64);
                let agreed = comm.allreduce_scalar(local, ReduceOp::Min)?;
                Ok((agreed >= 0).then_some(agreed as u64))
            }
        }
    }

    /// Restore every protected region from checkpoint `name`/`version`.
    ///
    /// Reads node-local scratch when available (survivors), falling back to
    /// the parallel filesystem (recovered replacement ranks). Returns the
    /// number of regions restored.
    pub fn restart(&self, name: &str, version: u64) -> Result<usize, VelocError> {
        self.restart_with_workers(name, version, RESTART_WORKERS)
            .map(|r| r.regions)
    }

    /// [`Client::restart`] with an explicit verification fan-out and the
    /// full per-stage accounting. `workers = 1` is the sequential baseline
    /// the restart benchmarks and the parallel/sequential equivalence
    /// proptests compare against.
    pub fn restart_with_workers(
        &self,
        name: &str,
        version: u64,
        workers: usize,
    ) -> Result<RestartReport, VelocError> {
        let rec = self.recorder();
        rec.emit_with(|| Event::RestartBegin {
            name: name.to_owned(),
            version,
        });
        let out = self.restart_inner(name, version, workers);
        rec.emit_with(|| Event::RestartEnd {
            name: name.to_owned(),
            version,
            ok: out.is_ok(),
        });
        out
    }

    fn restart_inner(
        &self,
        name: &str,
        version: u64,
        workers: usize,
    ) -> Result<RestartReport, VelocError> {
        struct WalkedFrame {
            path: String,
            blob: Bytes,
            meta: serial::FrameMeta,
            /// Whether `blob` came from scratch (a PFS copy may still exist
            /// as a verification-failure fallback) or already from PFS (no
            /// further tier to fall back to).
            from_scratch: bool,
        }

        let clock = self.cluster.clock();
        let t0 = clock.now_ns();

        // Stage 1 — chain walk by meta only. Each frame's *shape* (magic,
        // counts, extents, meta CRC) is validated here, which is all the
        // walk needs to follow base references; the expensive payload
        // checksums are deferred to stage 2. Every frame degrades tier by
        // tier independently: a corrupt scratch copy must not mask an
        // intact PFS copy of the same version.
        let mut frames: Vec<WalkedFrame> = Vec::new();
        let mut v = version;
        loop {
            let path = self.path(name, v);
            let mut present = false;
            let mut picked: Option<(Bytes, serial::FrameMeta, bool)> = None;
            if let Some((blob, _)) = self.cluster.scratch().read(self.node(), &path) {
                present = true;
                if let Some(meta) = serial::parse_meta(&blob) {
                    picked = Some((blob, meta, true));
                }
            }
            if picked.is_none() {
                if let Some((blob, _)) = self.cluster.pfs().read(&path) {
                    present = true;
                    if let Some(meta) = serial::parse_meta(&blob) {
                        picked = Some((blob, meta, false));
                    }
                }
            }
            if !present && frames.is_empty() {
                return Err(VelocError::NotFound {
                    name: name.to_owned(),
                    version,
                });
            }
            // A missing *base* of a chain already entered is corruption of
            // the chain, not absence of the checkpoint.
            let Some((blob, meta, from_scratch)) = picked else {
                return Err(VelocError::Corrupt { path });
            };
            let base = meta.base_version;
            frames.push(WalkedFrame {
                path,
                blob,
                meta,
                from_scratch,
            });
            match base {
                None => break,
                Some(base) if base < v => v = base,
                // A forward/self reference can only come from corruption;
                // refuse rather than loop.
                Some(_) => {
                    return Err(VelocError::Corrupt {
                        path: self.path(name, v),
                    })
                }
            }
        }
        let t_read = clock.now_ns();

        // Stage 2 — payload verification, the CRC-bound bulk of decode,
        // fanned out across the pool when the chain carries enough bytes.
        // Verdicts are consumed in chain order (newest first) so the first
        // failure — and therefore the reported path — is deterministic
        // regardless of worker scheduling.
        let total_payload: usize = frames.iter().map(|f| f.meta.payload_bytes()).sum();
        let fan_out = if total_payload >= PARALLEL_RESTART_THRESHOLD {
            workers
        } else {
            1
        };
        let verdicts = pool::scoped_map(frames.iter().collect(), fan_out, |f: &WalkedFrame| {
            f.meta.verify_payloads(&f.blob)
        });
        for (f, verdict) in frames.iter_mut().zip(verdicts) {
            // A `None` slot means the pool worker died; recompute inline.
            let ok = verdict.unwrap_or_else(|| f.meta.verify_payloads(&f.blob));
            if ok {
                continue;
            }
            // The scratch copy carries corrupt payloads; the PFS copy of
            // the same version may still be intact. Read lazily — only
            // frames that actually fail pay the remote read, preserving
            // the modeled cost of the common path.
            if !f.from_scratch {
                return Err(VelocError::Corrupt {
                    path: f.path.clone(),
                });
            }
            let fallback = self.cluster.pfs().read(&f.path).and_then(|(blob, _)| {
                let meta = serial::parse_meta(&blob)?;
                // The replacement must describe the same frame: same chain
                // reference and same region sets, else the walk above (and
                // any newer frame's first-occurrence claims) would not hold.
                let same_shape = meta.base_version == f.meta.base_version
                    && meta.unchanged == f.meta.unchanged
                    && meta.changed_ids().eq(f.meta.changed_ids());
                (same_shape && meta.verify_payloads(&blob)).then_some((blob, meta))
            });
            match fallback {
                Some((blob, meta)) => {
                    f.blob = blob;
                    f.meta = meta;
                    f.from_scratch = false;
                }
                None => {
                    return Err(VelocError::Corrupt {
                        path: f.path.clone(),
                    })
                }
            }
        }
        let t_verify = clock.now_ns();

        // Stage 3 — sequential apply. Collect each region's *newest*
        // payload (first occurrence along the newest→oldest walk wins) as
        // zero-copy slices of the frame blobs, then restore in id order.
        // The requested version's frame defines which regions restart
        // restores; older frames only supply payloads for them.
        let Some(newest) = frames.first() else {
            // Unreachable — stage 1 errors out before leaving `frames`
            // empty — but the recovery path must stay panic-free.
            return Err(VelocError::Corrupt {
                path: self.path(name, version),
            });
        };
        let expected: BTreeSet<u32> = newest
            .meta
            .changed_ids()
            .chain(newest.meta.unchanged.iter().copied())
            .collect();
        let mut payloads: BTreeMap<u32, Bytes> = BTreeMap::new();
        for f in &frames {
            for (id, payload) in f.meta.payloads(&f.blob) {
                if expected.contains(&id) {
                    payloads.entry(id).or_insert(payload);
                }
            }
        }
        if payloads.len() != expected.len() {
            // An unchanged id whose payload never appeared anywhere down
            // the chain: the chain is inconsistent.
            return Err(VelocError::Corrupt {
                path: self.path(name, version),
            });
        }
        let regions = self.regions.lock();
        let mut report = RestartReport {
            frames_walked: frames.len(),
            ..RestartReport::default()
        };
        for (id, payload) in payloads {
            let region = regions.get(&id).ok_or(VelocError::UnknownRegion { id })?;
            region.restore(&payload);
            report.regions += 1;
            report.bytes_restored += payload.len() as u64;
        }
        let t_apply = clock.now_ns();
        report.read_ns = t_read.saturating_sub(t0);
        report.verify_ns = t_verify.saturating_sub(t_read);
        report.apply_ns = t_apply.saturating_sub(t_verify);
        Ok(report)
    }

    /// Drop all but the newest `keep_last` versions of `name` reachable by
    /// this rank, from both storage tiers (VeloC's bounded checkpoint
    /// history). Returns how many versions were removed.
    ///
    /// Chain-aware: a version an incremental frame (transitively) chains to
    /// is kept even when it falls below the cutoff — removing a base makes
    /// every delta above it unrestorable. [`MAX_DELTA_DEPTH`] bounds how far
    /// a kept version can pin history.
    pub fn prune(&self, name: &str, keep_last: usize) -> usize {
        self.checkpoint_wait();
        let r = self.logical_rank();
        let suffix = format!("/r{r}");
        let parse = |p: &str| -> Option<u64> {
            p.strip_prefix(name)?
                .strip_prefix("/v")?
                .strip_suffix(&suffix)?
                .parse()
                .ok()
        };
        let mut versions: Vec<u64> = self
            .cluster
            .scratch()
            .list(self.node(), &format!("{name}/"))
            .iter()
            .chain(self.cluster.pfs().list(&format!("{name}/")).iter())
            .filter_map(|p| parse(p))
            .collect();
        versions.sort_unstable();
        versions.dedup();
        if versions.len() <= keep_last {
            return 0;
        }
        let cutoff = versions.len() - keep_last;
        // Transitive bases of every kept version must survive the prune.
        let mut needed: BTreeSet<u64> = versions[cutoff..].iter().copied().collect();
        for &kept in &versions[cutoff..] {
            let mut v = kept;
            while let Some(frame) = self.read_frame(name, v) {
                match frame.base_version {
                    Some(base) if base < v => {
                        needed.insert(base);
                        v = base;
                    }
                    _ => break,
                }
            }
        }
        let mut removed = 0;
        for &v in &versions[..cutoff] {
            if needed.contains(&v) {
                continue;
            }
            let path = self.path(name, v);
            let s = self.cluster.scratch().remove(self.node(), &path);
            let p = self.cluster.pfs().remove(&path);
            if s || p {
                removed += 1;
            }
        }
        removed
    }

    /// Finalize: drain outstanding flushes. (Also happens on drop.)
    pub fn finalize(&self) {
        self.checkpoint_wait();
    }
}

impl std::fmt::Debug for Client {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Client")
            .field("physical_rank", &self.physical_rank)
            .field("logical_rank", &self.logical_rank())
            .field("mode", &self.mode)
            .field("regions", &self.protected_count())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::region::VecRegion;
    use cluster::{ClusterConfig, TimeScale};

    fn cluster(n: usize) -> Cluster {
        let cfg = ClusterConfig {
            nodes: n,
            ranks_per_node: 1,
            time_scale: TimeScale::instant(),
            ..ClusterConfig::default()
        };
        Cluster::new(cfg)
    }

    fn client(c: &Cluster, rank: usize) -> Client {
        Client::init(c.clone(), rank, Config::default())
    }

    #[test]
    fn collective_restart_test_without_comm_is_an_error() {
        let c = cluster(1);
        let cl = Client::init(
            c.clone(),
            0,
            Config {
                mode: Mode::Collective,
                ..Config::default()
            },
        );
        assert!(matches!(
            cl.restart_test("ck", None),
            Err(VelocError::NoCommunicator)
        ));
    }

    #[test]
    fn checkpoint_restart_roundtrip() {
        let c = cluster(1);
        let cl = client(&c, 0);
        let r = VecRegion::new(vec![1.0f64, 2.0, 3.0]);
        cl.protect(0, Arc::new(r.clone()));
        cl.checkpoint("heat", 1).unwrap();
        r.lock().iter_mut().for_each(|x| *x = 0.0);
        assert_eq!(cl.restart("heat", 1).unwrap(), 1);
        assert_eq!(*r.lock(), vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn latest_version_scans_both_tiers() {
        let c = cluster(1);
        let cl = client(&c, 0);
        cl.protect(0, Arc::new(VecRegion::new(vec![0u8; 8])));
        assert_eq!(cl.latest_version("ck"), None);
        cl.checkpoint("ck", 1).unwrap();
        cl.checkpoint("ck", 4).unwrap();
        cl.checkpoint("ck", 2).unwrap();
        cl.checkpoint_wait();
        assert_eq!(cl.latest_version("ck"), Some(4));
        // Scratch lost (node reboot): PFS copy still found.
        c.scratch().purge_node(0);
        assert_eq!(cl.latest_version("ck"), Some(4));
    }

    #[test]
    fn restart_falls_back_to_pfs() {
        let c = cluster(1);
        let cl = client(&c, 0);
        let r = VecRegion::new(vec![7u32; 4]);
        cl.protect(3, Arc::new(r.clone()));
        cl.checkpoint("ck", 1).unwrap();
        cl.checkpoint_wait();
        c.scratch().purge_node(0);
        r.lock().iter_mut().for_each(|x| *x = 0);
        assert_eq!(cl.restart("ck", 1).unwrap(), 1);
        assert_eq!(*r.lock(), vec![7u32; 4]);
    }

    #[test]
    fn restart_missing_version_errors() {
        let c = cluster(1);
        let cl = client(&c, 0);
        assert_eq!(
            cl.restart("nope", 9),
            Err(VelocError::NotFound {
                name: "nope".into(),
                version: 9
            })
        );
    }

    #[test]
    fn set_rank_redirects_naming() {
        let c = cluster(2);
        // Rank 0 checkpoints as logical rank 0 and flushes to PFS.
        let cl0 = client(&c, 0);
        let r0 = VecRegion::new(vec![42u64]);
        cl0.protect(0, Arc::new(r0.clone()));
        cl0.checkpoint("ck", 1).unwrap();
        cl0.checkpoint_wait();
        // Rank 1 (a spare replacing rank 0) assumes logical rank 0 and can
        // restore rank 0's checkpoint — from the PFS, since its own scratch
        // never saw it.
        let cl1 = client(&c, 1);
        let r1 = VecRegion::new(vec![0u64]);
        cl1.protect(0, Arc::new(r1.clone()));
        cl1.set_rank(0);
        assert_eq!(cl1.latest_version("ck"), Some(1));
        cl1.restart("ck", 1).unwrap();
        assert_eq!(*r1.lock(), vec![42]);
    }

    #[test]
    fn unknown_region_id_errors() {
        let c = cluster(1);
        let cl = client(&c, 0);
        cl.protect(5, Arc::new(VecRegion::new(vec![1u8])));
        cl.checkpoint("ck", 1).unwrap();
        cl.clear_protected();
        cl.protect(6, Arc::new(VecRegion::new(vec![1u8])));
        assert_eq!(
            cl.restart("ck", 1),
            Err(VelocError::UnknownRegion { id: 5 })
        );
    }

    #[test]
    fn multiple_regions_restore_by_id() {
        let c = cluster(1);
        let cl = client(&c, 0);
        let a = VecRegion::new(vec![1u8, 2]);
        let b = VecRegion::new(vec![9.0f64]);
        cl.protect(1, Arc::new(a.clone()));
        cl.protect(2, Arc::new(b.clone()));
        cl.checkpoint("ck", 1).unwrap();
        // Re-register in the opposite order; ids still match.
        cl.clear_protected();
        cl.protect(2, Arc::new(b.clone()));
        cl.protect(1, Arc::new(a.clone()));
        a.lock().iter_mut().for_each(|x| *x = 0);
        b.lock().iter_mut().for_each(|x| *x = 0.0);
        assert_eq!(cl.restart("ck", 1).unwrap(), 2);
        assert_eq!(*a.lock(), vec![1, 2]);
        assert_eq!(*b.lock(), vec![9.0]);
    }

    #[test]
    fn protected_bytes_counts() {
        let c = cluster(1);
        let cl = client(&c, 0);
        cl.protect(0, Arc::new(VecRegion::new(vec![0u64; 10])));
        cl.protect(1, Arc::new(VecRegion::new(vec![0u8; 3])));
        assert_eq!(cl.protected_bytes(), 83);
        assert_eq!(cl.protected_count(), 2);
    }

    #[test]
    fn prune_keeps_newest_versions() {
        let c = cluster(1);
        let cl = client(&c, 0);
        let r = VecRegion::new(vec![1u8; 4]);
        cl.protect(0, Arc::new(r.clone()));
        for v in [1u64, 3, 5, 9] {
            // Dirty the region so every frame is full and self-contained;
            // chain-aware retention is covered separately below.
            r.lock()[0] = v as u8;
            cl.checkpoint("pr", v).unwrap();
        }
        cl.checkpoint_wait();
        assert_eq!(cl.prune("pr", 2), 2);
        assert!(!cl.version_available("pr", 1));
        assert!(!cl.version_available("pr", 3));
        assert!(cl.version_available("pr", 5));
        assert!(cl.version_available("pr", 9));
        assert_eq!(cl.latest_version("pr"), Some(9));
        // Pruning again removes nothing.
        assert_eq!(cl.prune("pr", 2), 0);
    }

    #[test]
    fn prune_preserves_delta_bases() {
        let c = cluster(1);
        let cl = client(&c, 0);
        let hot = VecRegion::new(vec![0u8; 8]);
        cl.protect(0, Arc::new(hot.clone()));
        cl.protect(1, Arc::new(VecRegion::new(vec![7u8; 8]))); // never written
        for v in [1u64, 2, 3] {
            hot.lock()[0] = v as u8;
            cl.checkpoint("pr", v).unwrap();
        }
        cl.checkpoint_wait();
        // v2 and v3 are deltas chaining back to the full frame at v1, so a
        // keep-last-1 prune must keep the whole chain alive.
        assert_eq!(cl.prune("pr", 1), 0);
        assert!(cl.version_available("pr", 1));
        hot.lock().iter_mut().for_each(|x| *x = 0);
        assert_eq!(cl.restart("pr", 3).unwrap(), 2);
        assert_eq!(hot.lock()[0], 3);
    }

    /// Decode the frame this rank's scratch holds for `name`/`version`.
    fn scratch_frame(c: &Cluster, name: &str, version: u64) -> serial::Frame {
        let (blob, _) = c
            .scratch()
            .read(0, &format!("{name}/v{version}/r0"))
            .expect("scratch blob present");
        serial::unpack_any(&blob).expect("intact frame")
    }

    #[test]
    fn unwritten_regions_become_deltas() {
        let c = cluster(1);
        let cl = client(&c, 0);
        let hot = VecRegion::new(vec![1u64; 64]);
        let cold = VecRegion::new(vec![2u64; 1024]);
        cl.protect(0, Arc::new(hot.clone()));
        cl.protect(1, Arc::new(cold.clone()));
        cl.checkpoint("inc", 1).unwrap();
        assert!(scratch_frame(&c, "inc", 1).is_full());
        hot.lock()[0] = 99;
        cl.checkpoint("inc", 2).unwrap();
        let f2 = scratch_frame(&c, "inc", 2);
        assert_eq!(f2.base_version, Some(1));
        assert_eq!(f2.unchanged, vec![1]);
        assert_eq!(f2.changed.len(), 1);
        cl.checkpoint_wait();
        // The delta is materially smaller than the full frame.
        let full = c.scratch().read(0, "inc/v1/r0").unwrap().0.len();
        let delta = c.scratch().read(0, "inc/v2/r0").unwrap().0.len();
        assert!(delta * 2 < full, "delta {delta} vs full {full}");
        // And restores to the exact state.
        hot.lock().iter_mut().for_each(|x| *x = 0);
        cold.lock().iter_mut().for_each(|x| *x = 0);
        assert_eq!(cl.restart("inc", 2).unwrap(), 2);
        assert_eq!(hot.lock()[0], 99);
        assert_eq!(*cold.lock(), vec![2u64; 1024]);
    }

    #[test]
    fn invalidate_deltas_forces_full_frame() {
        let c = cluster(1);
        let cl = client(&c, 0);
        let r = VecRegion::new(vec![5u8; 16]);
        cl.protect(0, Arc::new(r.clone()));
        cl.protect(1, Arc::new(VecRegion::new(vec![6u8; 16])));
        cl.checkpoint("inv", 1).unwrap();
        r.lock()[0] = 1;
        cl.checkpoint("inv", 2).unwrap();
        assert!(!scratch_frame(&c, "inv", 2).is_full());
        cl.invalidate_deltas();
        r.lock()[0] = 2;
        cl.checkpoint("inv", 3).unwrap();
        assert!(
            scratch_frame(&c, "inv", 3).is_full(),
            "first frame after invalidation must be self-contained"
        );
    }

    #[test]
    fn set_rank_invalidates_deltas() {
        let c = cluster(1);
        let cl = client(&c, 0);
        cl.protect(0, Arc::new(VecRegion::new(vec![1u8; 8])));
        cl.protect(1, Arc::new(VecRegion::new(vec![2u8; 8])));
        cl.checkpoint("sr", 1).unwrap();
        // Same logical rank re-asserted still counts as an identity event.
        cl.set_rank(0);
        cl.checkpoint("sr", 2).unwrap();
        assert!(scratch_frame(&c, "sr", 2).is_full());
    }

    #[test]
    fn delta_chain_depth_is_bounded() {
        let c = cluster(1);
        let cl = client(&c, 0);
        let hot = VecRegion::new(vec![0u8; 8]);
        cl.protect(0, Arc::new(hot.clone()));
        cl.protect(1, Arc::new(VecRegion::new(vec![9u8; 8])));
        let mut fulls = 0;
        let n = 2 * MAX_DELTA_DEPTH as u64 + 3;
        for v in 1..=n {
            hot.lock()[0] = v as u8;
            cl.checkpoint("cap", v).unwrap();
            if scratch_frame(&c, "cap", v).is_full() {
                fulls += 1;
            }
        }
        assert!(
            fulls >= 3,
            "a full frame must recur at least every MAX_DELTA_DEPTH checkpoints (got {fulls})"
        );
        assert!(fulls < n, "deltas must still dominate the cadence");
    }

    #[test]
    fn corrupt_base_breaks_the_chain() {
        let c = cluster(1);
        let cl = Client::init(
            c.clone(),
            0,
            Config {
                mode: Mode::Single,
                async_flush: false,
            },
        );
        let hot = VecRegion::new(vec![1u8; 32]);
        cl.protect(0, Arc::new(hot.clone()));
        cl.protect(1, Arc::new(VecRegion::new(vec![2u8; 32])));
        cl.checkpoint("cb", 1).unwrap();
        hot.lock()[0] = 9;
        cl.checkpoint("cb", 2).unwrap();
        assert!(cl.version_intact("cb", 2));
        // Destroy the base on both tiers: the delta at v2 is now worthless
        // even though its own bytes are pristine.
        let path = "cb/v1/r0";
        let (mut raw, _) = c.pfs().read(path).map(|(b, t)| (b.to_vec(), t)).unwrap();
        let last = raw.len() - 1;
        raw[last] ^= 0xFF;
        c.scratch().write(0, path, bytes::Bytes::from(raw.clone()));
        c.pfs().write(path, bytes::Bytes::from(raw));
        assert!(!cl.version_intact("cb", 1));
        assert!(
            !cl.version_intact("cb", 2),
            "intactness must consider the whole chain"
        );
        assert_eq!(cl.latest_intact_version("cb", u64::MAX), None);
        assert!(matches!(
            cl.restart("cb", 2),
            Err(VelocError::Corrupt { .. })
        ));
    }

    #[test]
    fn protect_exact_replaces_table_and_keeps_deltas() {
        let c = cluster(1);
        let cl = client(&c, 0);
        let a = VecRegion::new(vec![1u8; 16]);
        let b = VecRegion::new(vec![2u8; 16]);
        let table: Vec<(u32, Arc<dyn Protected>)> =
            vec![(0, Arc::new(a.clone())), (1, Arc::new(b.clone()))];
        cl.protect_exact(table.clone());
        assert_eq!(cl.protected_count(), 2);
        cl.checkpoint("pe", 1).unwrap();
        a.lock()[0] = 7;
        // Re-registering the same allocations (what Kokkos Resilience does
        // before every checkpoint) must not break the delta chain.
        cl.protect_exact(table);
        cl.checkpoint("pe", 2).unwrap();
        let f2 = scratch_frame(&c, "pe", 2);
        assert_eq!(f2.base_version, Some(1));
        assert_eq!(f2.unchanged, vec![1]);
    }

    #[test]
    fn prune_is_per_name() {
        let c = cluster(1);
        let cl = client(&c, 0);
        cl.protect(0, Arc::new(VecRegion::new(vec![1u8; 4])));
        cl.checkpoint("a", 1).unwrap();
        cl.checkpoint("b", 1).unwrap();
        cl.checkpoint_wait();
        assert_eq!(cl.prune("a", 0), 1);
        assert!(cl.version_available("b", 1));
    }

    #[test]
    fn sync_mode_flushes_inline() {
        let c = cluster(1);
        let cl = Client::init(
            c.clone(),
            0,
            Config {
                mode: Mode::Single,
                async_flush: false,
            },
        );
        cl.protect(0, Arc::new(VecRegion::new(vec![5u8])));
        assert!(!cl.async_flush_active());
        assert!(cl.spawn_error().is_none());
        cl.checkpoint("ck", 1).unwrap();
        // No wait needed: already on the PFS.
        assert!(c.pfs().exists("ck/v1/r0"));
    }

    #[test]
    fn backend_spawn_failure_degrades_to_sync_flush() {
        let c = cluster(1);
        loom::thread::fail_next_spawn();
        let cl = client(&c, 0);
        // Async was requested but the backend could not start: the client
        // comes up anyway, reports why, and flushes inline from now on.
        assert!(!cl.async_flush_active());
        assert!(matches!(
            cl.spawn_error(),
            Some(VelocError::BackendSpawn { .. })
        ));
        let r = VecRegion::new(vec![3.5f32; 8]);
        cl.protect(0, Arc::new(r.clone()));
        cl.checkpoint("deg", 1).unwrap();
        // Synchronous semantics: on the PFS before any wait.
        assert!(c.pfs().exists("deg/v1/r0"));
        r.lock().iter_mut().for_each(|x| *x = 0.0);
        assert_eq!(cl.restart("deg", 1).unwrap(), 1);
        assert_eq!(*r.lock(), vec![3.5f32; 8]);
        cl.finalize();
    }
}
