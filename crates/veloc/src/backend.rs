//! The asynchronous flush backend — the co-located "VeloC server" thread.
//!
//! One backend serves one client (the paper runs one rank, and hence one
//! server, per node). Flush jobs move a checkpoint blob from node-local
//! scratch to the parallel filesystem, paying the modeled network egress and
//! filesystem ingest costs while the application keeps computing. The
//! application only blocks on the backend in `checkpoint_wait` (at the next
//! checkpoint call) and at finalize — exactly VeloC's contract.
//!
//! Failure posture: the backend is an *optimization*, never a correctness
//! dependency. If the worker thread cannot be spawned, [`ActiveBackend::spawn`]
//! reports a recoverable [`VelocError::BackendSpawn`] and the client degrades
//! to synchronous flushing; if the worker disappears mid-run, an enqueued
//! flush is performed inline on the caller. A checkpoint acknowledged to the
//! application is flushed eventually in every one of those paths.
//!
//! Concurrency: thread creation goes through `loom::thread` and the queue /
//! pending-count / condvar through the model-aware shims, so the whole
//! enqueue → flush → wait → drop lifecycle is explored by
//! `crates/modelcheck/tests/veloc_flush.rs`.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use bytes::Bytes;
use cluster::{Cluster, StorageTier};
use crossbeam::channel::{unbounded, Sender};
use loom::thread::JoinHandle;
use parking_lot::{Condvar, Mutex};
use telemetry::{Event, Recorder};

use crate::client::VelocError;

struct FlushJob {
    path: String,
    blob: Bytes,
    name: String,
    version: u64,
    rec: Recorder,
}

enum Job {
    Flush(FlushJob),
    Stop,
}

struct PendingCount {
    count: Mutex<usize>,
    cv: Condvar,
}

/// Most flush jobs one worker wakeup will coalesce into a single batched
/// PFS write. Bounds both the drain loop and how long a `wait()`er can be
/// held behind jobs enqueued after it started waiting.
const MAX_FLUSH_BATCH: usize = 16;

/// Move a backlog of blobs scratch→PFS as one coalesced operation: a single
/// network egress reservation and a single [`write_batch`] on the PFS, so a
/// storm of small-region flushes pays the per-operation latencies once per
/// batch instead of once per blob. Only the injector-free path batches —
/// chaos schedules (per-job corruption and worker-death hooks) keep the
/// per-job [`run_flush`] semantics.
///
/// [`write_batch`]: cluster::ParallelFileSystem::write_batch
fn run_flush_batch(cluster: &Cluster, rank: usize, jobs: Vec<FlushJob>, pending: &PendingCount) {
    if jobs.is_empty() {
        return;
    }
    let count = jobs.len();
    let total: usize = jobs.iter().map(|j| j.blob.len()).sum();
    cluster.network().egress(rank, total);
    let mut items = Vec::with_capacity(count);
    let mut completions = Vec::with_capacity(count);
    for job in jobs {
        completions.push((job.name, job.version, job.blob.len() as u64, job.rec));
        items.push((job.path, job.blob));
    }
    cluster.pfs().write_batch(items);
    for (name, version, bytes, rec) in completions {
        rec.emit(Event::FlushDone {
            name,
            version,
            bytes,
        });
    }
    let mut c = pending.count.lock();
    *c -= count;
    pending.cv.notify_all();
}

/// Move one blob scratch→PFS and retire it from the pending count. Shared
/// by the worker thread and the synchronous fallback paths so every flush
/// pays the same modeled costs and emits the same completion event.
fn run_flush(cluster: &Cluster, rank: usize, job: FlushJob, pending: &PendingCount) {
    // Egress from the rank's NIC, then filesystem ingest: this is the
    // traffic that congests application MPI.
    let bytes = job.blob.len() as u64;
    cluster.network().egress(rank, job.blob.len());
    // Chaos corruption hook: the blob may be damaged on its way to the PFS.
    let blob = match cluster.injector() {
        Some(inj) => inj
            .corrupt_write(StorageTier::Pfs, &job.path, &job.blob)
            .unwrap_or(job.blob),
        None => job.blob,
    };
    cluster.pfs().write(&job.path, blob);
    job.rec.emit(Event::FlushDone {
        name: job.name,
        version: job.version,
        bytes,
    });
    let mut c = pending.count.lock();
    *c -= 1;
    pending.cv.notify_all();
}

/// Handle to the background flush thread.
pub struct ActiveBackend {
    cluster: Cluster,
    rank: usize,
    tx: Sender<Job>,
    pending: Arc<PendingCount>,
    handle: Option<JoinHandle<()>>,
    /// Set by the worker when an injected fault kills it mid-run; tells the
    /// teardown invariant that the early exit was scheduled, not a bug.
    worker_died: Arc<AtomicBool>,
}

impl ActiveBackend {
    /// Spawn a backend for the client of global rank `rank`.
    ///
    /// Thread creation can fail (resource exhaustion — exactly the regime a
    /// resilience stack operates in, and a fault the chaos injector
    /// schedules deliberately); the error is recoverable and the caller is
    /// expected to fall back to synchronous flushing.
    pub fn spawn(cluster: Cluster, rank: usize) -> Result<Self, VelocError> {
        if let Some(inj) = cluster.injector() {
            if inj.backend_spawn_fails(rank) {
                return Err(VelocError::BackendSpawn {
                    reason: "spawn failure injected by fault schedule".to_owned(),
                });
            }
        }
        let (tx, rx) = unbounded::<Job>();
        let pending = Arc::new(PendingCount {
            count: Mutex::new(0),
            cv: Condvar::new(),
        });
        let worker_died = Arc::new(AtomicBool::new(false));
        let pending2 = Arc::clone(&pending);
        let died2 = Arc::clone(&worker_died);
        let cluster2 = cluster.clone();
        let handle = loom::thread::Builder::new()
            .name(format!("veloc-backend-{rank}"))
            .spawn(move || {
                let mut completed = 0u64;
                while let Ok(job) = rx.recv() {
                    match job {
                        Job::Flush(job) => {
                            // Injector-free fast path: coalesce the backlog
                            // behind this job into one batched PFS write.
                            // Chaos schedules stay on the per-job path — the
                            // corruption and worker-death hooks are defined
                            // per flush, and replays must see them fire at
                            // the same points.
                            if cluster2.injector().is_none() {
                                let mut batch = vec![job];
                                let mut stopped = false;
                                while batch.len() < MAX_FLUSH_BATCH {
                                    match rx.try_recv() {
                                        Ok(Job::Flush(j)) => batch.push(j),
                                        Ok(Job::Stop) => {
                                            stopped = true;
                                            break;
                                        }
                                        Err(_) => break,
                                    }
                                }
                                run_flush_batch(&cluster2, rank, batch, &pending2);
                                if stopped {
                                    break;
                                }
                                continue;
                            }
                            run_flush(&cluster2, rank, job, &pending2);
                            completed += 1;
                            // Chaos worker-death hook, consulted between
                            // jobs only: an acknowledged flush always
                            // completes. Any backlog is drained first —
                            // the worker "dies" having lost nothing, and
                            // later enqueues degrade to inline flushing.
                            let dies = cluster2
                                .injector()
                                .is_some_and(|inj| inj.flush_worker_dies(rank, completed));
                            if dies {
                                while let Ok(Job::Flush(job)) = rx.try_recv() {
                                    run_flush(&cluster2, rank, job, &pending2);
                                }
                                died2.store(true, Ordering::Release);
                                break;
                            }
                        }
                        Job::Stop => break,
                    }
                }
            })
            .map_err(|e| VelocError::BackendSpawn {
                reason: e.to_string(),
            })?;
        Ok(ActiveBackend {
            cluster,
            rank,
            tx,
            pending,
            handle: Some(handle),
            worker_died,
        })
    }

    /// Enqueue an asynchronous flush of `blob` to `path` on the PFS.
    /// `rec` lets the flush thread stamp the completion ([`Event::FlushDone`])
    /// at the time the blob actually lands on the PFS.
    ///
    /// If the worker thread is gone (it can only have exited; it is never
    /// detached), the flush runs inline here instead — degraded latency,
    /// never a lost checkpoint.
    pub fn enqueue_flush(
        &self,
        path: String,
        blob: Bytes,
        name: String,
        version: u64,
        rec: Recorder,
    ) {
        {
            let mut c = self.pending.count.lock();
            *c += 1;
        }
        if let Err(crossbeam::channel::SendError(Job::Flush(job))) =
            self.tx.send(Job::Flush(FlushJob {
                path,
                blob,
                name,
                version,
                rec,
            }))
        {
            run_flush(&self.cluster, self.rank, job, &self.pending);
        }
    }

    /// Number of flushes not yet completed.
    pub fn outstanding(&self) -> usize {
        *self.pending.count.lock()
    }

    /// Block until all enqueued flushes have completed (VeloC
    /// `checkpoint_wait`).
    pub fn wait(&self) {
        let mut c = self.pending.count.lock();
        while *c > 0 {
            // lint: sanction(blocks): the checkpoint drain barrier (VeloC
            // checkpoint_wait semantics); the DES scheduler parks the rank
            // task here instead of the thread. audited 2026-08.
            self.pending.cv.wait(&mut c);
        }
    }
}

impl Drop for ActiveBackend {
    fn drop(&mut self) {
        // Drain outstanding work, then stop the thread. A dropped client
        // must never lose an acknowledged checkpoint.
        self.wait();
        // The worker exits only when told to; a refused Stop or an Err from
        // join means it died abnormally. Past `wait()` the queue is drained,
        // so no acknowledged checkpoint is lost — but the abnormal exit is
        // still a bug, stated as an invariant instead of silently swallowed.
        let stop_received = self.tx.send(Job::Stop).is_ok();
        let join_ok = self.handle.take().is_none_or(|h| h.join().is_ok());
        let scheduled_death = self.worker_died.load(Ordering::Acquire);
        debug_assert!(
            (stop_received && join_ok) || scheduled_death,
            "flush worker died abnormally (panic or early exit)"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cluster::{ClusterConfig, TimeScale};

    fn cluster() -> Cluster {
        let cfg = ClusterConfig {
            nodes: 2,
            time_scale: TimeScale::instant(),
            ..ClusterConfig::default()
        };
        Cluster::new(cfg)
    }

    #[test]
    fn drop_stops_worker_cleanly_when_idle() {
        let c = cluster();
        let b = ActiveBackend::spawn(c, 0).unwrap();
        b.wait();
        // Drop sends Stop and joins; the in-drop invariant (worker alive
        // until told to stop) is checked under debug assertions here.
        drop(b);
    }

    #[test]
    fn flush_lands_on_pfs() {
        let c = cluster();
        let b = ActiveBackend::spawn(c.clone(), 0).unwrap();
        b.enqueue_flush(
            "ck/v1/r0".into(),
            Bytes::from_static(b"data"),
            "ck".into(),
            1,
            Recorder::disabled(),
        );
        b.wait();
        assert_eq!(&c.pfs().read("ck/v1/r0").unwrap().0[..], b"data");
    }

    #[test]
    fn wait_blocks_until_drained() {
        let c = cluster();
        let b = ActiveBackend::spawn(c.clone(), 0).unwrap();
        for v in 0..10 {
            b.enqueue_flush(
                format!("ck/v{v}/r0"),
                Bytes::from(vec![0u8; 100]),
                "ck".into(),
                v,
                Recorder::disabled(),
            );
        }
        b.wait();
        assert_eq!(b.outstanding(), 0);
        assert_eq!(c.pfs().list("ck/").len(), 10);
    }

    #[test]
    fn bursts_batch_and_still_land_completely() {
        // More jobs than MAX_FLUSH_BATCH: the worker coalesces the backlog
        // into several batched writes, and every blob still lands intact.
        let c = cluster();
        let b = ActiveBackend::spawn(c.clone(), 0).unwrap();
        for v in 0..40u64 {
            b.enqueue_flush(
                format!("burst/v{v}/r0"),
                Bytes::from(vec![v as u8; 64]),
                "burst".into(),
                v,
                Recorder::disabled(),
            );
        }
        b.wait();
        assert_eq!(b.outstanding(), 0);
        assert_eq!(c.pfs().list("burst/").len(), 40);
        assert_eq!(&c.pfs().read("burst/v7/r0").unwrap().0[..], &[7u8; 64][..]);
    }

    #[test]
    fn drop_drains_outstanding_flushes() {
        let c = cluster();
        {
            let b = ActiveBackend::spawn(c.clone(), 1).unwrap();
            b.enqueue_flush(
                "ck/v1/r1".into(),
                Bytes::from_static(b"x"),
                "ck".into(),
                1,
                Recorder::disabled(),
            );
        }
        assert!(c.pfs().exists("ck/v1/r1"), "drop must drain, not discard");
    }

    #[test]
    fn spawn_failure_is_recoverable() {
        loom::thread::fail_next_spawn();
        match ActiveBackend::spawn(cluster(), 0) {
            Err(VelocError::BackendSpawn { reason }) => {
                assert!(reason.contains("injected"), "got: {reason}");
            }
            other => panic!("expected BackendSpawn error, got {:?}", other.map(|_| ())),
        }
    }
}
