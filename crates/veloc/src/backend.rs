//! The asynchronous flush backend — the co-located "VeloC server" thread.
//!
//! One backend serves one client (the paper runs one rank, and hence one
//! server, per node). Flush jobs move a checkpoint blob from node-local
//! scratch to the parallel filesystem, paying the modeled network egress and
//! filesystem ingest costs while the application keeps computing. The
//! application only blocks on the backend in `checkpoint_wait` (at the next
//! checkpoint call) and at finalize — exactly VeloC's contract.

use std::sync::Arc;
use std::thread::JoinHandle;

use bytes::Bytes;
use cluster::Cluster;
use crossbeam::channel::{unbounded, Sender};
use parking_lot::{Condvar, Mutex};
use telemetry::{Event, Recorder};

enum Job {
    Flush {
        path: String,
        blob: Bytes,
        name: String,
        version: u64,
        rec: Recorder,
    },
    Stop,
}

struct PendingCount {
    count: Mutex<usize>,
    cv: Condvar,
}

/// Handle to the background flush thread.
pub struct ActiveBackend {
    tx: Sender<Job>,
    pending: Arc<PendingCount>,
    handle: Option<JoinHandle<()>>,
}

impl ActiveBackend {
    /// Spawn a backend for the client of global rank `rank`.
    pub fn spawn(cluster: Cluster, rank: usize) -> Self {
        let (tx, rx) = unbounded::<Job>();
        let pending = Arc::new(PendingCount {
            count: Mutex::new(0),
            cv: Condvar::new(),
        });
        let pending2 = Arc::clone(&pending);
        let handle = std::thread::Builder::new()
            .name(format!("veloc-backend-{rank}"))
            .spawn(move || {
                while let Ok(job) = rx.recv() {
                    match job {
                        Job::Flush {
                            path,
                            blob,
                            name,
                            version,
                            rec,
                        } => {
                            // Egress from the rank's NIC, then filesystem
                            // ingest: this is the traffic that congests
                            // application MPI.
                            let bytes = blob.len() as u64;
                            cluster.network().egress(rank, blob.len());
                            cluster.pfs().write(&path, blob);
                            rec.emit(Event::FlushDone {
                                name,
                                version,
                                bytes,
                            });
                            let mut c = pending2.count.lock();
                            *c -= 1;
                            pending2.cv.notify_all();
                        }
                        Job::Stop => break,
                    }
                }
            })
            .expect("spawn veloc backend");
        ActiveBackend {
            tx,
            pending,
            handle: Some(handle),
        }
    }

    /// Enqueue an asynchronous flush of `blob` to `path` on the PFS.
    /// `rec` lets the flush thread stamp the completion ([`Event::FlushDone`])
    /// at the time the blob actually lands on the PFS.
    pub fn enqueue_flush(
        &self,
        path: String,
        blob: Bytes,
        name: String,
        version: u64,
        rec: Recorder,
    ) {
        {
            let mut c = self.pending.count.lock();
            *c += 1;
        }
        self.tx
            .send(Job::Flush {
                path,
                blob,
                name,
                version,
                rec,
            })
            .expect("backend thread alive");
    }

    /// Number of flushes not yet completed.
    pub fn outstanding(&self) -> usize {
        *self.pending.count.lock()
    }

    /// Block until all enqueued flushes have completed (VeloC
    /// `checkpoint_wait`).
    pub fn wait(&self) {
        let mut c = self.pending.count.lock();
        while *c > 0 {
            self.pending.cv.wait(&mut c);
        }
    }
}

impl Drop for ActiveBackend {
    fn drop(&mut self) {
        // Drain outstanding work, then stop the thread. A dropped client
        // must never lose an acknowledged checkpoint.
        self.wait();
        let _ = self.tx.send(Job::Stop);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cluster::{ClusterConfig, TimeScale};

    fn cluster() -> Cluster {
        let cfg = ClusterConfig {
            nodes: 2,
            time_scale: TimeScale::instant(),
            ..ClusterConfig::default()
        };
        Cluster::new(cfg)
    }

    #[test]
    fn flush_lands_on_pfs() {
        let c = cluster();
        let b = ActiveBackend::spawn(c.clone(), 0);
        b.enqueue_flush(
            "ck/v1/r0".into(),
            Bytes::from_static(b"data"),
            "ck".into(),
            1,
            Recorder::disabled(),
        );
        b.wait();
        assert_eq!(&c.pfs().read("ck/v1/r0").unwrap().0[..], b"data");
    }

    #[test]
    fn wait_blocks_until_drained() {
        let c = cluster();
        let b = ActiveBackend::spawn(c.clone(), 0);
        for v in 0..10 {
            b.enqueue_flush(
                format!("ck/v{v}/r0"),
                Bytes::from(vec![0u8; 100]),
                "ck".into(),
                v,
                Recorder::disabled(),
            );
        }
        b.wait();
        assert_eq!(b.outstanding(), 0);
        assert_eq!(c.pfs().list("ck/").len(), 10);
    }

    #[test]
    fn drop_drains_outstanding_flushes() {
        let c = cluster();
        {
            let b = ActiveBackend::spawn(c.clone(), 1);
            b.enqueue_flush(
                "ck/v1/r1".into(),
                Bytes::from_static(b"x"),
                "ck".into(),
                1,
                Recorder::disabled(),
            );
        }
        assert!(c.pfs().exists("ck/v1/r1"), "drop must drain, not discard");
    }
}
