//! VeloC-style asynchronous multi-tier checkpoint/restart.
//!
//! Mirrors the VeloC architecture the paper uses as its data layer:
//!
//! * Applications *protect* memory regions ([`Client::protect`]) and then
//!   call [`Client::checkpoint`]. The **synchronous** phase serializes the
//!   protected regions to node-local scratch (the paper configures scratch
//!   as memory-mapped storage, so this is "just a memory copy").
//! * An **asynchronous** backend thread — the stand-in for the co-located
//!   VeloC server process — then flushes the scratch blob to the parallel
//!   filesystem, consuming real modeled network bandwidth. This background
//!   traffic is what congests application MPI in the paper's Figure 5.
//! * Restart finds the best available version: in [`Mode::Collective`] the
//!   client performs the agreement over its communicator; in
//!   [`Mode::Single`] — the mode this paper *adds* to make VeloC usable
//!   under Fenix process recovery — the client answers from local knowledge
//!   only and the caller (Kokkos Resilience) performs the reduction itself.
//!
//! Checkpoints live under `"{name}/v{version}/r{rank}"` in both tiers;
//! restart prefers scratch (fast, node-local) and falls back to the
//! filesystem — which is why in the paper "other ranks are able to restore
//! using locally-available checkpoint files" while only the replacement
//! rank pays a remote read.

//!
//! Checkpoints are *incremental* where the data layer's dirty tracking
//! allows: regions whose generation stamp did not move since the last
//! committed version are referenced by id in a VCF2 delta frame instead of
//! re-serialized, so the synchronous phase scales with changed bytes (see
//! [`serial`] for the frame formats and [`client::MAX_DELTA_DEPTH`] for the
//! forced-full-frame cadence).

pub mod backend;
pub mod client;
pub mod pool;
pub mod region;
pub mod serial;

pub use backend::ActiveBackend;
pub use client::{Client, Config, Mode, RestartReport, VelocError, MAX_DELTA_DEPTH};
pub use region::{Protected, VecRegion};
