//! GF(2^8) arithmetic for the Reed–Solomon codec.
//!
//! The field is GF(256) with the conventional AES-adjacent reduction
//! polynomial `x^8 + x^4 + x^3 + x^2 + 1` (0x11d) and generator 2. All
//! operations go through exp/log tables built once at startup, so encode
//! and decode inner loops are a table lookup and an addition — fast enough
//! that the codec bench is memory-bound, like real RS implementations.

/// Reduction polynomial for GF(256): x^8 + x^4 + x^3 + x^2 + 1.
const POLY: u16 = 0x11d;

/// exp table over a doubled period so `exp[a + b]` needs no modulo for
/// `a, b < 255`.
struct Tables {
    exp: [u8; 512],
    log: [u8; 256],
}

fn build_tables() -> Tables {
    let mut exp = [0u8; 512];
    let mut log = [0u8; 256];
    let mut x: u16 = 1;
    for (i, e) in exp.iter_mut().enumerate().take(255) {
        *e = x as u8;
        log[x as usize] = i as u8;
        x <<= 1;
        if x & 0x100 != 0 {
            x ^= POLY;
        }
    }
    for i in 255..512 {
        exp[i] = exp[i - 255];
    }
    Tables { exp, log }
}

fn tables() -> &'static Tables {
    use std::sync::OnceLock;
    static TABLES: OnceLock<Tables> = OnceLock::new();
    TABLES.get_or_init(build_tables)
}

/// Field addition (= subtraction): XOR.
#[inline]
pub fn add(a: u8, b: u8) -> u8 {
    a ^ b
}

/// Field multiplication via log/exp tables.
#[inline]
pub fn mul(a: u8, b: u8) -> u8 {
    if a == 0 || b == 0 {
        return 0;
    }
    let t = tables();
    t.exp[t.log[a as usize] as usize + t.log[b as usize] as usize]
}

/// Multiplicative inverse. Panics on zero (a singular matrix is a caller
/// bug — the Cauchy construction guarantees nonsingularity).
#[inline]
pub fn inv(a: u8) -> u8 {
    assert_ne!(a, 0, "zero has no inverse in GF(256)");
    let t = tables();
    t.exp[255 - t.log[a as usize] as usize]
}

/// Field division: `a / b`.
#[inline]
pub fn div(a: u8, b: u8) -> u8 {
    mul(a, inv(b))
}

/// `acc[i] ^= coeff * src[i]` over a whole slice — the codec's inner loop.
#[inline]
pub fn mul_acc(acc: &mut [u8], src: &[u8], coeff: u8) {
    debug_assert_eq!(acc.len(), src.len());
    if coeff == 0 {
        return;
    }
    if coeff == 1 {
        for (a, s) in acc.iter_mut().zip(src) {
            *a ^= *s;
        }
        return;
    }
    let t = tables();
    let lc = t.log[coeff as usize] as usize;
    for (a, s) in acc.iter_mut().zip(src) {
        if *s != 0 {
            *a ^= t.exp[lc + t.log[*s as usize] as usize];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mul_matches_schoolbook() {
        // Carry-less multiply reduced by POLY, bit by bit.
        fn slow_mul(mut a: u8, mut b: u8) -> u8 {
            let mut acc = 0u8;
            while b != 0 {
                if b & 1 != 0 {
                    acc ^= a;
                }
                let carry = a & 0x80 != 0;
                a <<= 1;
                if carry {
                    a ^= (POLY & 0xff) as u8;
                }
                b >>= 1;
            }
            acc
        }
        for a in 0..=255u8 {
            for b in 0..=255u8 {
                assert_eq!(mul(a, b), slow_mul(a, b), "{a} * {b}");
            }
        }
    }

    #[test]
    fn every_nonzero_element_has_an_inverse() {
        for a in 1..=255u8 {
            assert_eq!(mul(a, inv(a)), 1, "inv({a})");
        }
    }

    #[test]
    fn mul_acc_is_linear() {
        let src = [1u8, 2, 3, 250, 0, 7];
        let mut acc = [9u8, 9, 9, 9, 9, 9];
        mul_acc(&mut acc, &src, 0x53);
        for (i, s) in src.iter().enumerate() {
            assert_eq!(acc[i], 9 ^ mul(*s, 0x53));
        }
    }

    #[test]
    #[should_panic(expected = "no inverse")]
    fn inverse_of_zero_panics() {
        inv(0);
    }
}
