//! The redundancy dial: how many peers hold what for each rank.

use crate::placement;

/// How a placement group protects its members' payloads.
///
/// `width()` is the minimum group size the mode needs; groups may be
/// larger (the remainder of an uneven partition), in which case the coded
/// modes simply use more data shards at the same parity count — tolerance
/// per group is unchanged.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RedundancyMode {
    /// `k` full copies per payload (the owner plus `k-1` peers). Survives
    /// any `k-1` failures inside a group. Memory: `k×` payload.
    Replicate { k: usize },
    /// Single XOR parity over `width-1` data shards. Survives 1 failure
    /// per group at `width/(width-1)×` memory.
    XorParity { width: usize },
    /// Reed–Solomon over GF(256): `width-parity` data + `parity` Cauchy
    /// shards. Survives any `parity` failures per group at
    /// `width/(width-parity)×` memory.
    ReedSolomon { width: usize, parity: usize },
}

impl RedundancyMode {
    /// Minimum members a placement group needs.
    pub fn width(self) -> usize {
        match self {
            RedundancyMode::Replicate { k } => k,
            RedundancyMode::XorParity { width } => width,
            RedundancyMode::ReedSolomon { width, .. } => width,
        }
    }

    /// Concurrent in-group failures the mode survives.
    pub fn tolerance(self) -> usize {
        match self {
            RedundancyMode::Replicate { k } => k - 1,
            RedundancyMode::XorParity { .. } => 1,
            RedundancyMode::ReedSolomon { parity, .. } => parity,
        }
    }

    /// Parity shards in a group of `size` members (coded modes).
    pub fn parity_of(self) -> usize {
        match self {
            RedundancyMode::Replicate { .. } => 0,
            RedundancyMode::XorParity { .. } => 1,
            RedundancyMode::ReedSolomon { parity, .. } => parity,
        }
    }

    /// Is the shape sane? (Validated at store time; a bad explicit config
    /// must be a typed error, not a panic in a rank thread.)
    pub fn validate(self) -> Result<(), String> {
        match self {
            RedundancyMode::Replicate { k } if k < 2 => {
                Err(format!("replication needs k ≥ 2, got {k}"))
            }
            RedundancyMode::XorParity { width } if width < 2 => {
                Err(format!("xor needs width ≥ 2, got {width}"))
            }
            RedundancyMode::ReedSolomon { width, parity } if parity < 1 || width < parity + 1 => {
                Err(format!("rs needs width > parity ≥ 1, got {width}/{parity}"))
            }
            _ => Ok(()),
        }
    }

    /// Pick the strongest mode the communicator shape supports: RS(n+2)
    /// over width-4 groups when four-way distinct-node groups are
    /// feasible, XOR n+1 at three, plain mirroring at two. Deterministic
    /// from the node map, so every rank picks the same mode collectively.
    pub fn auto(nodes: &[usize]) -> Option<RedundancyMode> {
        [
            RedundancyMode::ReedSolomon {
                width: 4,
                parity: 2,
            },
            RedundancyMode::XorParity { width: 3 },
            RedundancyMode::Replicate { k: 2 },
        ]
        .into_iter()
        .find(|&mode| placement::feasible(nodes, mode.width()))
    }

    /// Compact spec form (`k2`, `xor3`, `rs4.2`) used by config flags and
    /// chaos schedule specs.
    pub fn to_spec(self) -> String {
        match self {
            RedundancyMode::Replicate { k } => format!("k{k}"),
            RedundancyMode::XorParity { width } => format!("xor{width}"),
            RedundancyMode::ReedSolomon { width, parity } => format!("rs{width}.{parity}"),
        }
    }

    /// Parse [`RedundancyMode::to_spec`] output.
    pub fn parse(spec: &str) -> Result<RedundancyMode, String> {
        let mode = if let Some(k) = spec.strip_prefix('k') {
            RedundancyMode::Replicate {
                k: k.parse()
                    .map_err(|_| format!("bad replica count `{spec}`"))?,
            }
        } else if let Some(w) = spec.strip_prefix("xor") {
            RedundancyMode::XorParity {
                width: w.parse().map_err(|_| format!("bad xor width `{spec}`"))?,
            }
        } else if let Some(rest) = spec.strip_prefix("rs") {
            let (w, p) = rest
                .split_once('.')
                .ok_or_else(|| format!("rs spec `{spec}` wants rs<width>.<parity>"))?;
            RedundancyMode::ReedSolomon {
                width: w.parse().map_err(|_| format!("bad rs width `{spec}`"))?,
                parity: p.parse().map_err(|_| format!("bad rs parity `{spec}`"))?,
            }
        } else {
            return Err(format!("unknown redundancy mode `{spec}`"));
        };
        mode.validate()?;
        Ok(mode)
    }

    /// Human label for tables.
    pub fn label(self) -> String {
        match self {
            RedundancyMode::Replicate { k } => format!("{k}-replica"),
            RedundancyMode::XorParity { width } => format!("XOR n+1 (w={width})"),
            RedundancyMode::ReedSolomon { width, parity } => {
                format!("RS n+{parity} (w={width})")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_round_trips() {
        for mode in [
            RedundancyMode::Replicate { k: 2 },
            RedundancyMode::Replicate { k: 3 },
            RedundancyMode::XorParity { width: 3 },
            RedundancyMode::ReedSolomon {
                width: 4,
                parity: 2,
            },
        ] {
            assert_eq!(RedundancyMode::parse(&mode.to_spec()), Ok(mode));
        }
        assert!(RedundancyMode::parse("k1").is_err());
        assert!(RedundancyMode::parse("rs2.2").is_err());
        assert!(RedundancyMode::parse("frob").is_err());
    }

    #[test]
    fn auto_degrades_with_the_node_count() {
        let four: Vec<usize> = (0..4).collect();
        assert_eq!(
            RedundancyMode::auto(&four),
            Some(RedundancyMode::ReedSolomon {
                width: 4,
                parity: 2
            })
        );
        // 4 ranks over 2 nodes: only pairs are feasible.
        let two = [0, 0, 1, 1];
        assert_eq!(
            RedundancyMode::auto(&two),
            Some(RedundancyMode::Replicate { k: 2 })
        );
        // Everything on one node: nothing is feasible.
        assert_eq!(RedundancyMode::auto(&[0, 0, 0, 0]), None);
    }

    #[test]
    fn tolerance_matches_the_coverage_matrix() {
        assert_eq!(RedundancyMode::Replicate { k: 2 }.tolerance(), 1);
        assert_eq!(RedundancyMode::Replicate { k: 3 }.tolerance(), 2);
        assert_eq!(RedundancyMode::XorParity { width: 3 }.tolerance(), 1);
        assert_eq!(
            RedundancyMode::ReedSolomon {
                width: 4,
                parity: 2
            }
            .tolerance(),
            2
        );
    }
}
