//! Topology-aware placement of redundancy groups.
//!
//! The store's coverage claims only hold if the replicas/shards of one
//! group live on distinct modeled nodes — a whole-node failure must never
//! take out more than one member of any group. [`Placement::compute`]
//! guarantees that *by construction*: ranks are dealt to groups in
//! node-interleaved order, so co-located ranks land in different groups
//! whenever the shape makes it possible, and an impossible shape is a
//! typed error instead of silent single-node redundancy.
//!
//! The same module provides [`node_interleaved_order`], which the Fenix
//! buddy scheme reuses: a buddy ring walked in this order never pairs two
//! ranks of one node unless a node hosts more than half the communicator.

use simmpi::Comm;

/// Typed placement failures. Deterministic from the communicator shape, so
/// every rank reaches the same verdict collectively.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PlacementError {
    /// Fewer ranks than one group needs.
    InsufficientRanks { ranks: usize, width: usize },
    /// Some node hosts more ranks than there are groups, so two members of
    /// one group would share that node.
    InsufficientNodes {
        ranks: usize,
        width: usize,
        max_per_node: usize,
        groups: usize,
    },
}

impl std::fmt::Display for PlacementError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlacementError::InsufficientRanks { ranks, width } => {
                write!(f, "{ranks} ranks cannot form a width-{width} group")
            }
            PlacementError::InsufficientNodes {
                ranks,
                width,
                max_per_node,
                groups,
            } => write!(
                f,
                "{ranks} ranks / width {width}: a node hosts {max_per_node} ranks \
                 but only {groups} groups exist — distinct-node placement impossible"
            ),
        }
    }
}

impl std::error::Error for PlacementError {}

/// The node hosting each communicator rank, indexed by comm rank.
pub fn comm_node_map(comm: &Comm) -> Vec<usize> {
    let topo = comm.router().cluster().topology().clone();
    (0..comm.size())
        .map(|r| topo.node_of(comm.global_of(r)))
        .collect()
}

/// Node buckets ordered most-loaded first (ties to the lower node id),
/// each bucket's ranks ascending. The deterministic backbone of both the
/// group deal and the buddy ordering.
fn node_buckets(nodes: &[usize]) -> Vec<Vec<usize>> {
    let mut buckets: Vec<(usize, Vec<usize>)> = Vec::new();
    for (rank, &node) in nodes.iter().enumerate() {
        match buckets.iter_mut().find(|(n, _)| *n == node) {
            Some((_, b)) => b.push(rank),
            None => buckets.push((node, vec![rank])),
        }
    }
    buckets.sort_by(|(an, ab), (bn, bb)| bb.len().cmp(&ab.len()).then(an.cmp(bn)));
    buckets.into_iter().map(|(_, b)| b).collect()
}

/// Ranks reordered so consecutive entries sit on distinct nodes whenever
/// the load shape allows: buckets are interleaved round-robin, most-loaded
/// node first.
pub fn node_interleaved_order(nodes: &[usize]) -> Vec<usize> {
    let buckets = node_buckets(nodes);
    let mut order = Vec::with_capacity(nodes.len());
    let mut depth = 0;
    loop {
        let mut any = false;
        for b in &buckets {
            if let Some(&r) = b.get(depth) {
                order.push(r);
                any = true;
            }
        }
        if !any {
            return order;
        }
        depth += 1;
    }
}

/// A partition of the communicator into redundancy groups.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Placement {
    groups: Vec<Vec<usize>>,
}

impl Placement {
    /// Partition `nodes.len()` ranks into groups of at least `width`
    /// members, no two members of a group sharing a node.
    ///
    /// Ranks are dealt card-style across `floor(ranks / width)` groups in
    /// *concatenated bucket* order (node by node): one node's ranks occupy
    /// consecutive deal positions, so they land on distinct residues
    /// mod `groups` exactly when the node hosts at most `groups` ranks —
    /// checked up front, typed error otherwise. The invariant therefore
    /// holds by construction, not by search.
    pub fn compute(nodes: &[usize], width: usize) -> Result<Placement, PlacementError> {
        let ranks = nodes.len();
        if width < 2 || ranks < width {
            return Err(PlacementError::InsufficientRanks { ranks, width });
        }
        let n_groups = ranks / width;
        let buckets = node_buckets(nodes);
        let max_per_node = buckets.first().map_or(0, Vec::len);
        if max_per_node > n_groups {
            return Err(PlacementError::InsufficientNodes {
                ranks,
                width,
                max_per_node,
                groups: n_groups,
            });
        }
        let mut groups: Vec<Vec<usize>> = vec![Vec::new(); n_groups];
        for (i, rank) in buckets.into_iter().flatten().enumerate() {
            groups[i % n_groups].push(rank);
        }
        for g in &mut groups {
            g.sort_unstable();
        }
        Ok(Placement { groups })
    }

    pub fn groups(&self) -> &[Vec<usize>] {
        &self.groups
    }

    /// The group containing `rank` and the rank's position inside it.
    pub fn locate(&self, rank: usize) -> Option<(usize, usize)> {
        self.groups
            .iter()
            .enumerate()
            .find_map(|(gi, g)| g.iter().position(|&r| r == rank).map(|pos| (gi, pos)))
    }

    /// Check the invariant against a node map (tests; construction already
    /// guarantees it).
    pub fn all_groups_on_distinct_nodes(&self, nodes: &[usize]) -> bool {
        self.groups.iter().all(|g| {
            let mut seen: Vec<usize> = g.iter().map(|&r| nodes[r]).collect();
            seen.sort_unstable();
            let n = seen.len();
            seen.dedup();
            seen.len() == n
        })
    }

    /// Rebuild from serialized group lists (restore-side layout transfer).
    pub fn from_groups(groups: Vec<Vec<usize>>) -> Placement {
        Placement { groups }
    }
}

/// Can `nodes.len()` ranks form distinct-node groups of `width`?
pub fn feasible(nodes: &[usize], width: usize) -> bool {
    Placement::compute(nodes, width).is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_rank_per_node_fills_groups_in_order() {
        let nodes = [0, 1, 2, 3];
        let p = Placement::compute(&nodes, 4).unwrap();
        assert_eq!(p.groups(), &[vec![0, 1, 2, 3]]);
        assert!(p.all_groups_on_distinct_nodes(&nodes));
    }

    #[test]
    fn colocated_ranks_split_across_groups() {
        // Two nodes, two ranks each: naive {0,1},{2,3} grouping would put
        // both members of each pair on one node.
        let nodes = [0, 0, 1, 1];
        let p = Placement::compute(&nodes, 2).unwrap();
        assert!(p.all_groups_on_distinct_nodes(&nodes));
        assert_eq!(p.groups().len(), 2);
        for g in p.groups() {
            assert_eq!(g.len(), 2);
        }
    }

    #[test]
    fn uneven_sizes_spread_the_remainder() {
        let nodes = [0, 1, 2, 3, 4];
        let p = Placement::compute(&nodes, 2).unwrap();
        let mut sizes: Vec<usize> = p.groups().iter().map(Vec::len).collect();
        sizes.sort_unstable();
        assert_eq!(sizes, vec![2, 3]);
        assert!(p.all_groups_on_distinct_nodes(&nodes));
    }

    #[test]
    fn overloaded_node_is_a_typed_error() {
        // Three of four ranks on node 0: one width-2 group pair must
        // collide. groups = 2, max load 3.
        let nodes = [0, 0, 0, 1];
        assert!(matches!(
            Placement::compute(&nodes, 4),
            Err(PlacementError::InsufficientNodes { .. })
        ));
        // Width 2 also fails: 2 groups but node 0 has 3 ranks.
        assert!(matches!(
            Placement::compute(&nodes, 2),
            Err(PlacementError::InsufficientNodes {
                max_per_node: 3,
                groups: 2,
                ..
            })
        ));
    }

    #[test]
    fn too_few_ranks_is_a_typed_error() {
        assert!(matches!(
            Placement::compute(&[0, 1], 3),
            Err(PlacementError::InsufficientRanks { ranks: 2, width: 3 })
        ));
    }

    #[test]
    fn interleaved_order_avoids_adjacent_colocation() {
        let nodes = [0, 0, 1, 1, 2, 2];
        let order = node_interleaved_order(&nodes);
        assert_eq!(order.len(), 6);
        for w in order.windows(2) {
            assert_ne!(nodes[w[0]], nodes[w[1]], "adjacent ranks share a node");
        }
        // The ring wrap (last, first) also stays cross-node here.
        assert_ne!(nodes[order[0]], nodes[*order.last().unwrap()]);
    }

    #[test]
    fn skewed_loads_at_the_feasibility_edge_stay_distinct() {
        // Loads 3,2,1 with 3 groups: an interleaved deal would collide
        // (ranks 0 and 1 both land in group 0); the concatenated deal
        // cannot, because node 0's ranks sit on consecutive positions.
        let nodes = [0, 0, 0, 1, 1, 2];
        let p = Placement::compute(&nodes, 2).unwrap();
        assert!(p.all_groups_on_distinct_nodes(&nodes));
    }

    #[test]
    fn invariant_holds_across_many_shapes() {
        for (nodes, rpn) in [(4usize, 1usize), (4, 2), (3, 2), (6, 2), (2, 2), (5, 3)] {
            let map: Vec<usize> = (0..nodes * rpn).map(|r| r / rpn).collect();
            for width in 2..=4 {
                if let Ok(p) = Placement::compute(&map, width) {
                    assert!(
                        p.all_groups_on_distinct_nodes(&map),
                        "nodes={nodes} rpn={rpn} width={width}"
                    );
                    let total: usize = p.groups().iter().map(Vec::len).sum();
                    assert_eq!(total, map.len(), "every rank assigned");
                    for g in p.groups() {
                        assert!(g.len() >= width, "group below width");
                    }
                }
            }
        }
    }
}
