//! redstore — a replicated + erasure-coded in-memory checkpoint tier.
//!
//! The paper's in-memory recovery story (Fenix IMR, buddy ranks) stops at
//! single failures: one partner holds one copy, so losing a rank *and* its
//! buddy — or a whole node that hosts both — is job loss. This crate is
//! the next redundancy tier (ROADMAP item 2), following ReStore's
//! replicated in-memory storage design (arXiv 2203.01107) and FTHP-MPI's
//! tunable-redundancy dial (arXiv 2504.09989):
//!
//! * **k-replica placement groups** — every rank's checkpoint payload is
//!   mirrored to `k-1` peers in its group ([`RedundancyMode::Replicate`]).
//! * **Erasure coding** — XOR parity for `n+1` or a GF(256) Cauchy
//!   Reed–Solomon code for `n+m` ([`RedundancyMode::XorParity`],
//!   [`RedundancyMode::ReedSolomon`]): the same coverage as replication
//!   for single failures at a fraction of the memory, and tunable
//!   multi-failure coverage beyond it.
//!
//! Placement is topology-aware ([`placement`]): members of one group land
//! on distinct modeled nodes *by construction*, so a whole-node failure
//! costs each group at most one member. After a Fenix repair the store
//! re-encodes every group under a freshly computed placement, restoring
//! coverage instead of consuming it ([`RedundancyGroup::restore`]).
//!
//! The commit protocol is Fenix's two-phase `data_commit` (exchange, then
//! fault-tolerant agreement), so a failure mid-store leaves every rank on
//! the previous committed version, never a mix.

pub mod codec;
pub mod gf256;
pub mod mode;
pub mod placement;
pub mod store;

pub use codec::CodecError;
pub use mode::RedundancyMode;
pub use placement::{comm_node_map, node_interleaved_order, Placement, PlacementError};
pub use store::{CommitLayout, RedError, RedStore, RedundancyGroup};
