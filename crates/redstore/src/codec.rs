//! Erasure codecs over opaque checkpoint payloads.
//!
//! A payload (one rank's packed checkpoint frame) is split into `n` equal
//! data shards (zero-padded; the original length travels with the commit)
//! and extended with parity:
//!
//! * [`xor_encode`] — single XOR parity shard (`n+1`, tolerates 1 erasure),
//! * [`rs_encode`] — `m` Reed–Solomon parity shards over GF(256) built
//!   from a Cauchy matrix (`n+m`, tolerates any `m` erasures — MDS).
//!
//! Decoding never panics on bad inputs: missing too many shards or
//! inconsistent shard sizes surface as a typed [`CodecError`], because a
//! multi-failure that exceeds coverage is an expected runtime outcome the
//! resilience stack must convert into a clean job-level error.

use crate::gf256;

/// Typed codec failures.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CodecError {
    /// Fewer than `needed` shards survive: the erasure count exceeds the
    /// code's tolerance and the payload is unrecoverable.
    TooManyErasures { available: usize, needed: usize },
    /// A shard's length disagrees with the others (transport damage).
    ShardSizeMismatch { expected: usize, got: usize },
    /// Shard geometry is impossible (zero data shards, > 256 total, or a
    /// recorded original length that cannot fit the shards).
    BadGeometry(String),
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::TooManyErasures { available, needed } => {
                write!(
                    f,
                    "unrecoverable: {available} shards survive, {needed} needed"
                )
            }
            CodecError::ShardSizeMismatch { expected, got } => {
                write!(f, "shard size mismatch: expected {expected}, got {got}")
            }
            CodecError::BadGeometry(msg) => write!(f, "bad shard geometry: {msg}"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Split `payload` into `n` zero-padded data shards of equal length.
/// A zero-length payload yields `n` empty shards.
pub fn split_payload(payload: &[u8], n: usize) -> Result<Vec<Vec<u8>>, CodecError> {
    if n == 0 {
        return Err(CodecError::BadGeometry("zero data shards".into()));
    }
    let shard_len = payload.len().div_ceil(n);
    let mut shards = Vec::with_capacity(n);
    for i in 0..n {
        let lo = (i * shard_len).min(payload.len());
        let hi = ((i + 1) * shard_len).min(payload.len());
        let mut s = payload[lo..hi].to_vec();
        s.resize(shard_len, 0);
        shards.push(s);
    }
    Ok(shards)
}

/// Reassemble the original payload from `n` data shards.
pub fn join_payload(data: &[Vec<u8>], orig_len: usize) -> Result<Vec<u8>, CodecError> {
    let total: usize = data.iter().map(Vec::len).sum();
    if orig_len > total {
        return Err(CodecError::BadGeometry(format!(
            "original length {orig_len} exceeds shard capacity {total}"
        )));
    }
    let mut out = Vec::with_capacity(total);
    for s in data {
        out.extend_from_slice(s);
    }
    out.truncate(orig_len);
    Ok(out)
}

fn check_sizes(shards: &[Vec<u8>]) -> Result<usize, CodecError> {
    let len = shards.first().map_or(0, Vec::len);
    for s in shards {
        if s.len() != len {
            return Err(CodecError::ShardSizeMismatch {
                expected: len,
                got: s.len(),
            });
        }
    }
    Ok(len)
}

/// XOR encode: `n` data shards + 1 parity shard (tolerates 1 erasure).
pub fn xor_encode(payload: &[u8], n: usize) -> Result<Vec<Vec<u8>>, CodecError> {
    let mut shards = split_payload(payload, n)?;
    let len = shards[0].len();
    let mut parity = vec![0u8; len];
    for s in &shards {
        for (p, b) in parity.iter_mut().zip(s) {
            *p ^= *b;
        }
    }
    shards.push(parity);
    Ok(shards)
}

/// XOR decode from `n + 1` slots (`None` = erased). At most one erasure is
/// recoverable; the data shards come back in order.
pub fn xor_decode(
    shards: &[Option<Vec<u8>>],
    n: usize,
    orig_len: usize,
) -> Result<Vec<u8>, CodecError> {
    if n == 0 || shards.len() != n + 1 {
        return Err(CodecError::BadGeometry(format!(
            "xor expects {} slots, got {}",
            n + 1,
            shards.len()
        )));
    }
    let present: Vec<&Vec<u8>> = shards.iter().flatten().collect();
    if present.len() < n {
        return Err(CodecError::TooManyErasures {
            available: present.len(),
            needed: n,
        });
    }
    let len = present.first().map_or(0, |s| s.len());
    for s in &present {
        if s.len() != len {
            return Err(CodecError::ShardSizeMismatch {
                expected: len,
                got: s.len(),
            });
        }
    }
    let missing: Vec<usize> = (0..n).filter(|&i| shards[i].is_none()).collect();
    let mut data: Vec<Vec<u8>> = Vec::with_capacity(n);
    match missing.as_slice() {
        [] => {
            for s in shards.iter().take(n) {
                data.push(s.clone().expect("checked present"));
            }
        }
        [hole] => {
            // The lost data shard is the XOR of everything else, parity
            // included.
            let mut rec = vec![0u8; len];
            for (i, s) in shards.iter().enumerate() {
                if i == *hole {
                    continue;
                }
                let s = s.as_ref().expect("only one erasure");
                for (r, b) in rec.iter_mut().zip(s) {
                    *r ^= *b;
                }
            }
            for (i, s) in shards.iter().enumerate().take(n) {
                data.push(if i == *hole {
                    rec.clone()
                } else {
                    s.clone().expect("present")
                });
            }
        }
        _ => unreachable!("≥2 data erasures implies present < n"),
    }
    join_payload(&data, orig_len)
}

/// Cauchy coefficient of parity row `i` and data column `j` for an
/// `(n, m)` code: `1 / (x_i ⊕ y_j)` with `x_i = i`, `y_j = m + j`. The two
/// index sets are disjoint, so the denominator is never zero and every
/// square submatrix of the extended matrix is nonsingular (MDS).
fn cauchy(i: usize, j: usize, m: usize) -> u8 {
    gf256::inv((i as u8) ^ ((m + j) as u8))
}

/// Reed–Solomon encode: `n` data shards + `m` Cauchy parity shards
/// (tolerates any `m` erasures).
pub fn rs_encode(payload: &[u8], n: usize, m: usize) -> Result<Vec<Vec<u8>>, CodecError> {
    if n + m > 256 {
        return Err(CodecError::BadGeometry(format!(
            "{n}+{m} shards exceed the GF(256) limit"
        )));
    }
    if m == 0 {
        return Err(CodecError::BadGeometry("zero parity shards".into()));
    }
    let data = split_payload(payload, n)?;
    let len = data[0].len();
    let mut shards = data;
    for i in 0..m {
        let mut row = vec![0u8; len];
        for (j, d) in shards.iter().take(n).enumerate() {
            gf256::mul_acc(&mut row, d, cauchy(i, j, m));
        }
        shards.push(row);
    }
    Ok(shards)
}

/// Generator-matrix row of shard `idx`: identity for data shards, Cauchy
/// for parity shards.
fn generator_row(idx: usize, n: usize, m: usize) -> Vec<u8> {
    let mut row = vec![0u8; n];
    if idx < n {
        row[idx] = 1;
    } else {
        for (j, r) in row.iter_mut().enumerate() {
            *r = cauchy(idx - n, j, m);
        }
    }
    row
}

/// Invert an `n × n` GF(256) matrix (rows are concatenated). Returns `None`
/// when singular — impossible for Cauchy-derived submatrices, but decode
/// treats it as a typed error anyway rather than trusting the proof.
fn invert(mut a: Vec<Vec<u8>>) -> Option<Vec<Vec<u8>>> {
    let n = a.len();
    let mut inv: Vec<Vec<u8>> = (0..n)
        .map(|i| {
            let mut row = vec![0u8; n];
            row[i] = 1;
            row
        })
        .collect();
    for col in 0..n {
        let pivot = (col..n).find(|&r| a[r][col] != 0)?;
        a.swap(col, pivot);
        inv.swap(col, pivot);
        let p = gf256::inv(a[col][col]);
        for x in &mut a[col] {
            *x = gf256::mul(*x, p);
        }
        for x in &mut inv[col] {
            *x = gf256::mul(*x, p);
        }
        for r in 0..n {
            if r != col && a[r][col] != 0 {
                let f = a[r][col];
                let (ar, ac) = split_rows(&mut a, r, col);
                gf256::mul_acc(ar, ac, f);
                let (ir, ic) = split_rows(&mut inv, r, col);
                gf256::mul_acc(ir, ic, f);
            }
        }
    }
    Some(inv)
}

/// Two distinct rows of a matrix, mutably and immutably.
fn split_rows(m: &mut [Vec<u8>], r: usize, c: usize) -> (&mut [u8], &[u8]) {
    debug_assert_ne!(r, c);
    if r < c {
        let (lo, hi) = m.split_at_mut(c);
        (&mut lo[r], &hi[0])
    } else {
        let (lo, hi) = m.split_at_mut(r);
        (&mut hi[0], &lo[c])
    }
}

/// Reed–Solomon decode from `n + m` slots (`None` = erased). Any `n`
/// surviving shards reconstruct the payload.
pub fn rs_decode(
    shards: &[Option<Vec<u8>>],
    n: usize,
    m: usize,
    orig_len: usize,
) -> Result<Vec<u8>, CodecError> {
    if n == 0 || m == 0 || shards.len() != n + m {
        return Err(CodecError::BadGeometry(format!(
            "rs expects {} slots, got {}",
            n + m,
            shards.len()
        )));
    }
    let survivors: Vec<usize> = (0..shards.len()).filter(|&i| shards[i].is_some()).collect();
    if survivors.len() < n {
        return Err(CodecError::TooManyErasures {
            available: survivors.len(),
            needed: n,
        });
    }
    let picked: Vec<Vec<u8>> = survivors
        .iter()
        .take(n)
        .map(|&i| shards[i].clone().expect("survivor present"))
        .collect();
    let len = check_sizes(&picked)?;

    // Fast path: all data shards survived.
    if survivors
        .iter()
        .take(n)
        .eq((0..n).collect::<Vec<_>>().iter())
    {
        return join_payload(&picked, orig_len);
    }

    let matrix: Vec<Vec<u8>> = survivors
        .iter()
        .take(n)
        .map(|&i| generator_row(i, n, m))
        .collect();
    let inverse = invert(matrix).ok_or_else(|| {
        CodecError::BadGeometry("singular decode matrix (corrupted shard set)".into())
    })?;
    let mut data: Vec<Vec<u8>> = Vec::with_capacity(n);
    for row in &inverse {
        let mut d = vec![0u8; len];
        for (coeff, shard) in row.iter().zip(&picked) {
            gf256::mul_acc(&mut d, shard, *coeff);
        }
        data.push(d);
    }
    join_payload(&data, orig_len)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn payload(len: usize) -> Vec<u8> {
        (0..len).map(|i| (i * 37 + 11) as u8).collect()
    }

    #[test]
    fn split_pads_and_join_truncates() {
        let p = payload(10);
        let shards = split_payload(&p, 3).unwrap();
        assert_eq!(shards.len(), 3);
        assert!(shards.iter().all(|s| s.len() == 4));
        assert_eq!(join_payload(&shards, 10).unwrap(), p);
    }

    #[test]
    fn xor_recovers_any_single_erasure() {
        let p = payload(100);
        for hole in 0..4 {
            let mut shards: Vec<Option<Vec<u8>>> =
                xor_encode(&p, 3).unwrap().into_iter().map(Some).collect();
            shards[hole] = None;
            assert_eq!(xor_decode(&shards, 3, 100).unwrap(), p, "hole {hole}");
        }
    }

    #[test]
    fn xor_two_erasures_is_typed_error() {
        let p = payload(64);
        let mut shards: Vec<Option<Vec<u8>>> =
            xor_encode(&p, 3).unwrap().into_iter().map(Some).collect();
        shards[0] = None;
        shards[2] = None;
        assert_eq!(
            xor_decode(&shards, 3, 64),
            Err(CodecError::TooManyErasures {
                available: 2,
                needed: 3
            })
        );
    }

    #[test]
    fn rs_recovers_any_m_erasures() {
        let (n, m) = (3, 2);
        let p = payload(257); // non-multiple of n
        let encoded = rs_encode(&p, n, m).unwrap();
        for a in 0..n + m {
            for b in a + 1..n + m {
                let mut shards: Vec<Option<Vec<u8>>> = encoded.iter().cloned().map(Some).collect();
                shards[a] = None;
                shards[b] = None;
                assert_eq!(rs_decode(&shards, n, m, 257).unwrap(), p, "holes {a},{b}");
            }
        }
    }

    #[test]
    fn rs_zero_length_payload_roundtrips() {
        let encoded = rs_encode(&[], 2, 2).unwrap();
        let mut shards: Vec<Option<Vec<u8>>> = encoded.into_iter().map(Some).collect();
        shards[0] = None;
        shards[1] = None;
        assert_eq!(rs_decode(&shards, 2, 2, 0).unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn rs_exceeding_tolerance_is_typed_error() {
        let p = payload(40);
        let mut shards: Vec<Option<Vec<u8>>> =
            rs_encode(&p, 2, 1).unwrap().into_iter().map(Some).collect();
        shards[0] = None;
        shards[1] = None;
        assert!(matches!(
            rs_decode(&shards, 2, 1, 40),
            Err(CodecError::TooManyErasures {
                available: 1,
                needed: 2
            })
        ));
    }

    #[test]
    fn mismatched_shard_sizes_are_typed_errors() {
        let mut shards: Vec<Option<Vec<u8>>> = rs_encode(&payload(40), 2, 2)
            .unwrap()
            .into_iter()
            .map(Some)
            .collect();
        shards[3].as_mut().unwrap().push(0);
        shards[0] = None; // decode must pick shards 1, 2 … and the bad 3
        shards[1] = None;
        assert!(matches!(
            rs_decode(&shards, 2, 2, 40),
            Err(CodecError::ShardSizeMismatch { .. })
        ));
    }

    #[test]
    fn geometry_errors_are_typed() {
        assert!(matches!(
            split_payload(b"x", 0),
            Err(CodecError::BadGeometry(_))
        ));
        assert!(matches!(
            rs_encode(b"x", 200, 100),
            Err(CodecError::BadGeometry(_))
        ));
        assert!(matches!(
            rs_encode(b"x", 2, 0),
            Err(CodecError::BadGeometry(_))
        ));
        assert!(matches!(
            xor_decode(&[None, None], 3, 0),
            Err(CodecError::BadGeometry(_))
        ));
    }
}
