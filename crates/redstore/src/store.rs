//! The redundancy store: collective commit and multi-failure restore.
//!
//! [`RedStore`] is per-rank memory that persists across Fenix re-entries
//! (like [`fenix`]'s IMR store, which it generalizes). A
//! [`RedundancyGroup`] binds it to the current resilient communicator:
//!
//! * [`RedundancyGroup::store`] — compute a topology-aware placement,
//!   encode this rank's payload (full copies, XOR, or Reed–Solomon),
//!   exchange shards with the group peers, then run a fault-tolerant
//!   agreement so the version commits on every survivor or on none
//!   (Fenix's two-phase `data_commit` discipline).
//! * [`RedundancyGroup::restore`] — after a Fenix repair, survivors feed
//!   the recovering ranks enough shards to reconstruct, then the whole
//!   communicator *re-encodes* at the committed version under a freshly
//!   computed placement, so coverage is restored rather than consumed and
//!   the distinct-node invariant holds again even though spares may have
//!   joined on different nodes.
//!
//! The commit also persists the placement used (`CommitLayout`), because a
//! restore must read shards by the geometry they were *written* under, not
//! the geometry the repaired communicator would compute today.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

use bytes::Bytes;
use parking_lot::Mutex;
use simmpi::{Comm, MpiError};
use telemetry::Event;

use crate::codec::{self, CodecError};
use crate::mode::RedundancyMode;
use crate::placement::{comm_node_map, Placement, PlacementError};

/// Redundancy-store errors. `DataLost` and the deterministic placement /
/// codec failures are typed unrecoverable outcomes; `Mpi` failures are the
/// recovery layer's to handle.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RedError {
    /// More group members failed than the mode tolerates: the member's
    /// payload is unrecoverable.
    DataLost { member: u32, rank: usize },
    /// The communicator shape cannot host the configured placement.
    Placement(PlacementError),
    /// Shard arithmetic failed (damage or impossible geometry).
    Codec(CodecError),
    /// Communication failed mid-operation (recover via Fenix).
    Mpi(MpiError),
}

impl From<MpiError> for RedError {
    fn from(e: MpiError) -> Self {
        RedError::Mpi(e)
    }
}

impl From<PlacementError> for RedError {
    fn from(e: PlacementError) -> Self {
        RedError::Placement(e)
    }
}

impl From<CodecError> for RedError {
    fn from(e: CodecError) -> Self {
        RedError::Codec(e)
    }
}

impl std::fmt::Display for RedError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RedError::DataLost { member, rank } => {
                write!(f, "redstore member {member} of rank {rank} unrecoverable")
            }
            RedError::Placement(e) => write!(f, "redstore placement failed: {e}"),
            RedError::Codec(e) => write!(f, "redstore codec failed: {e}"),
            RedError::Mpi(e) => write!(f, "redstore communication failed: {e}"),
        }
    }
}

impl std::error::Error for RedError {}

/// One shard (or full copy) held for a peer.
#[derive(Clone, Debug)]
struct HeldShard {
    version: u64,
    /// Shard index in the owner's encoding (0 = a full replicate copy).
    index: u8,
    /// The owner's original payload length (shards are padded).
    orig_len: u64,
    data: Bytes,
}

/// The placement a commit was written under. Restores must use this, not a
/// freshly computed placement: Fenix substitutes spares into the same comm
/// slots, but the spare may live on a different node, which would change
/// where a fresh computation puts everyone.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CommitLayout {
    pub version: u64,
    pub mode: RedundancyMode,
    pub groups: Vec<Vec<usize>>,
}

impl CommitLayout {
    fn serialize(&self) -> Bytes {
        let mut out = Vec::new();
        out.extend_from_slice(&self.version.to_le_bytes());
        let (tag, a, b) = match self.mode {
            RedundancyMode::Replicate { k } => (0u8, k as u64, 0u64),
            RedundancyMode::XorParity { width } => (1, width as u64, 0),
            RedundancyMode::ReedSolomon { width, parity } => (2, width as u64, parity as u64),
        };
        out.push(tag);
        out.extend_from_slice(&a.to_le_bytes());
        out.extend_from_slice(&b.to_le_bytes());
        out.extend_from_slice(&(self.groups.len() as u64).to_le_bytes());
        for g in &self.groups {
            out.extend_from_slice(&(g.len() as u64).to_le_bytes());
            for &r in g {
                out.extend_from_slice(&(r as u64).to_le_bytes());
            }
        }
        Bytes::from(out)
    }

    fn deserialize(blob: &[u8]) -> Option<CommitLayout> {
        fn take_u64(b: &[u8], at: &mut usize) -> Option<u64> {
            let s = b.get(*at..*at + 8)?;
            *at += 8;
            Some(u64::from_le_bytes(s.try_into().ok()?))
        }
        let mut at = 0;
        let version = take_u64(blob, &mut at)?;
        let tag = *blob.get(at)?;
        at += 1;
        let a = take_u64(blob, &mut at)? as usize;
        let b = take_u64(blob, &mut at)? as usize;
        let mode = match tag {
            0 => RedundancyMode::Replicate { k: a },
            1 => RedundancyMode::XorParity { width: a },
            2 => RedundancyMode::ReedSolomon {
                width: a,
                parity: b,
            },
            _ => return None,
        };
        let ngroups = take_u64(blob, &mut at)? as usize;
        let mut groups = Vec::with_capacity(ngroups);
        for _ in 0..ngroups {
            let len = take_u64(blob, &mut at)? as usize;
            let mut g = Vec::with_capacity(len);
            for _ in 0..len {
                g.push(take_u64(blob, &mut at)? as usize);
            }
            groups.push(g);
        }
        (at == blob.len()).then_some(CommitLayout {
            version,
            mode,
            groups,
        })
    }
}

/// Per-rank redundancy memory. Create it *outside* the Fenix run loop so
/// survivor copies persist across repairs.
#[derive(Default)]
pub struct RedStore {
    /// member id → this rank's own latest committed payload.
    own: Mutex<HashMap<u32, (u64, Bytes)>>,
    /// (member id, owner comm rank) → shard held for that peer.
    held: Mutex<HashMap<(u32, usize), HeldShard>>,
    /// member id → placement the latest commit was written under.
    layouts: Mutex<HashMap<u32, CommitLayout>>,
}

impl RedStore {
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// This rank's latest committed copy of a member.
    pub fn own(&self, member: u32) -> Option<(u64, Bytes)> {
        self.own.lock().get(&member).cloned()
    }

    /// Latest committed version of a member, if any.
    pub fn latest_version(&self, member: u32) -> Option<u64> {
        self.own.lock().get(&member).map(|(v, _)| *v)
    }

    /// Placement of the latest commit (tests, diagnostics).
    pub fn layout(&self, member: u32) -> Option<CommitLayout> {
        self.layouts.lock().get(&member).cloned()
    }

    /// Total bytes resident (own + held) — the memory-overhead figure the
    /// coverage/cost table reports.
    pub fn resident_bytes(&self) -> usize {
        let own: usize = self.own.lock().values().map(|(_, b)| b.len()).sum();
        let held: usize = self.held.lock().values().map(|h| h.data.len()).sum();
        own + held
    }

    /// Drop everything (tests; a recovered rank starts empty anyway).
    pub fn clear(&self) {
        self.own.lock().clear();
        self.held.lock().clear();
        self.layouts.lock().clear();
    }
}

const RED_TAG_BASE: u64 = 0x0200_0000;

/// `[version u64][orig_len u64][index u8][data…]`.
fn frame(version: u64, orig_len: u64, index: u8, data: &[u8]) -> Bytes {
    let mut out = Vec::with_capacity(17 + data.len());
    out.extend_from_slice(&version.to_le_bytes());
    out.extend_from_slice(&orig_len.to_le_bytes());
    out.push(index);
    out.extend_from_slice(data);
    Bytes::from(out)
}

fn unframe(payload: &Bytes) -> Result<(u64, u64, u8, Bytes), RedError> {
    if payload.len() < 17 {
        return Err(RedError::Mpi(MpiError::TypeMismatch {
            expected: 17,
            got: payload.len(),
        }));
    }
    let version = u64::from_le_bytes(payload[..8].try_into().expect("checked"));
    let orig_len = u64::from_le_bytes(payload[8..16].try_into().expect("checked"));
    Ok((version, orig_len, payload[16], payload.slice(17..)))
}

/// A redundancy group bound to the current resilient communicator.
pub struct RedundancyGroup<'a> {
    comm: &'a Comm,
    store: Arc<RedStore>,
    /// `None` = pick the strongest feasible mode for the comm shape.
    mode: Option<RedundancyMode>,
}

impl<'a> RedundancyGroup<'a> {
    pub fn new(store: Arc<RedStore>, comm: &'a Comm, mode: Option<RedundancyMode>) -> Self {
        RedundancyGroup { comm, store, mode }
    }

    fn tag(member: u32, leg: u64) -> u64 {
        RED_TAG_BASE | (leg << 32) | member as u64
    }

    /// Resolve the effective mode for the current comm shape — identical
    /// on every rank (pure function of the shared node map).
    fn resolve_mode(&self, nodes: &[usize]) -> Result<RedundancyMode, RedError> {
        match self.mode {
            Some(m) => {
                m.validate().map_err(|_| {
                    RedError::Placement(PlacementError::InsufficientRanks {
                        ranks: nodes.len(),
                        width: m.width(),
                    })
                })?;
                Ok(m)
            }
            None => RedundancyMode::auto(nodes).ok_or(RedError::Placement(
                PlacementError::InsufficientNodes {
                    ranks: nodes.len(),
                    width: 2,
                    max_per_node: nodes.len(),
                    groups: nodes.len() / 2,
                },
            )),
        }
    }

    /// Collectively commit `data` as `member`'s payload at `version`.
    /// Every rank must call with its own payload.
    pub fn store(&self, member: u32, version: u64, data: Bytes) -> Result<(), RedError> {
        let nodes = comm_node_map(self.comm);
        let mode = self.resolve_mode(&nodes)?;
        let placement = Placement::compute(&nodes, mode.width())?;
        self.store_with(member, version, data, mode, &placement)
    }

    /// The exchange + agreement under an explicit placement (also the
    /// re-encode step of [`RedundancyGroup::restore`]).
    fn store_with(
        &self,
        member: u32,
        version: u64,
        data: Bytes,
        mode: RedundancyMode,
        placement: &Placement,
    ) -> Result<(), RedError> {
        let me = self.comm.rank();
        let recorder = self.comm.router().recorder(self.comm.my_global());
        let (gi, pos) = placement.locate(me).expect("every rank is placed");
        let group = &placement.groups()[gi];

        // Phase 1: encode + exchange. Nothing is committed yet.
        let exchange = self.exchange(member, version, &data, mode, group, pos, &recorder);
        match &exchange {
            // This rank is going down or the job is aborting: unwind now —
            // the agreement below would never complete.
            Err(RedError::Mpi(MpiError::Killed)) => return Err(MpiError::Killed.into()),
            Err(RedError::Mpi(MpiError::Aborted)) => return Err(MpiError::Aborted.into()),
            // Everything else reaches the agreement: every survivor must
            // learn whether the commit is off.
            _ => {}
        }

        // Phase 2: agree on commit (same seq discipline as Fenix IMR: the
        // member id is mixed in so concurrent members cannot collide).
        let seq = ((member as u64) << 48) | (version & 0xffff_ffff_ffff);
        let outcome = self.comm.agree(seq, exchange.is_ok() as u64)?;
        if outcome.flags & 1 == 1 && outcome.failed.is_empty() {
            match exchange {
                Ok(held) => {
                    self.store.own.lock().insert(member, (version, data));
                    let mut held_map = self.store.held.lock();
                    // Previous placements may have left shards for owners
                    // no longer in this rank's group; a restore must never
                    // see them.
                    held_map.retain(|(m, _), _| *m != member);
                    for (owner, shard) in held {
                        held_map.insert((member, owner), shard);
                    }
                    drop(held_map);
                    self.store.layouts.lock().insert(
                        member,
                        CommitLayout {
                            version,
                            mode,
                            groups: placement.groups().to_vec(),
                        },
                    );
                    if let Some(m) = recorder.metrics() {
                        m.counter("redstore.store_commits").inc();
                    }
                    Ok(())
                }
                // Agreed flags imply every rank's exchange succeeded; if
                // ours did not the agreement is stale — surface the miss.
                Err(e) => Err(e),
            }
        } else {
            match exchange {
                Err(e) => Err(e),
                Ok(_) => Err(RedError::Mpi(MpiError::ProcFailed {
                    ranks: outcome.failed,
                })),
            }
        }
    }

    /// Encode this rank's payload and swap shards with the group: all
    /// sends are buffered first, then the matching receives, so there is
    /// no ordering deadlock. Returns the shards this rank now holds for
    /// its peers.
    #[allow(clippy::too_many_arguments)]
    fn exchange(
        &self,
        member: u32,
        version: u64,
        data: &Bytes,
        mode: RedundancyMode,
        group: &[usize],
        pos: usize,
        recorder: &telemetry::Recorder,
    ) -> Result<Vec<(usize, HeldShard)>, RedError> {
        let me = self.comm.rank();
        let s = group.len();
        debug_assert_eq!(group[pos], me);
        let orig_len = data.len() as u64;

        // Encode.
        // lint: sanction(wall-clock): encode-latency histogram; metrics
        // only, never feeds control flow. audited 2026-08.
        let t0 = Instant::now();
        // Each entry is `(dst, shard_len, pre-framed wire bytes)` — framing
        // happens here, once per distinct payload, not per destination in
        // the send loop below.
        let outgoing: Vec<(usize, usize, Bytes)> = match mode {
            RedundancyMode::Replicate { k } => {
                // Every replica carries identical bytes: frame once and
                // fan the (reference-counted) wire blob out to the k-1
                // destinations, instead of rebuilding version+len+index
                // headers and re-copying the payload per peer.
                let framed = frame(version, orig_len, 0u8, data);
                (1..k)
                    .map(|i| (group[(pos + i) % s], data.len(), framed.clone()))
                    .collect()
            }
            RedundancyMode::XorParity { .. } | RedundancyMode::ReedSolomon { .. } => {
                if s > 256 {
                    return Err(CodecError::BadGeometry(format!(
                        "group of {s} exceeds the shard-index space"
                    ))
                    .into());
                }
                let parity = mode.parity_of();
                let shards = match mode {
                    RedundancyMode::XorParity { .. } => codec::xor_encode(data, s - 1)?,
                    _ => codec::rs_encode(data, s - parity, parity)?,
                };
                // Shard 0 stays with the owner conceptually (it dies with
                // the owner either way — the tolerance math already counts
                // the owner's own failure as one erasure), so only shards
                // 1..s travel.
                shards
                    .into_iter()
                    .enumerate()
                    .skip(1)
                    .map(|(i, sh)| {
                        let len = sh.len();
                        (
                            group[(pos + i) % s],
                            len,
                            frame(version, orig_len, i as u8, &sh),
                        )
                    })
                    .collect()
            }
        };
        recorder.emit_with(|| Event::Marker {
            label: "redstore.encode".into(),
        });
        if let Some(m) = recorder.metrics() {
            // lint: sanction(wall-clock): encode-latency histogram; metrics
            // only, never feeds control flow. audited 2026-08.
            m.histogram("redstore.encode_ns")
                .record(t0.elapsed().as_nanos() as u64);
        }

        // Sends first (buffered by the simulator), then receives.
        let mut sent_bytes = 0u64;
        for (dst, shard_len, wire) in outgoing {
            sent_bytes += shard_len as u64;
            self.comm.send_bytes(dst, Self::tag(member, 0), wire)?;
        }
        if let Some(m) = recorder.metrics() {
            m.counter("redstore.exchange_bytes").add(sent_bytes);
        }

        let mut held = Vec::new();
        for (pq, &q) in group.iter().enumerate() {
            if q == me {
                continue;
            }
            let delta = (pos + s - pq) % s;
            let expects = match mode {
                RedundancyMode::Replicate { k } => delta >= 1 && delta < k,
                _ => true,
            };
            if !expects {
                continue;
            }
            let (payload, _) = self.comm.recv_bytes(Some(q), Self::tag(member, 0))?;
            let (v, olen, index, shard) = unframe(&payload)?;
            debug_assert_eq!(v, version, "store exchange version skew");
            held.push((
                q,
                HeldShard {
                    version: v,
                    index,
                    orig_len: olen,
                    data: shard,
                },
            ));
        }
        recorder.emit_with(|| Event::Marker {
            label: "redstore.exchange".into(),
        });
        Ok(held)
    }

    /// Collectively restore `member` after a Fenix repair.
    ///
    /// `recovering` is the agreed list of comm ranks that do not hold the
    /// committed version (possession-based agreement, identical on every
    /// rank). Survivors recover locally and feed the recovering ranks;
    /// afterwards the *whole group re-encodes* under a fresh placement so
    /// redundancy is fully restored. Fails with [`RedError::DataLost`]
    /// when more members of one group are recovering than the committed
    /// mode tolerates.
    pub fn restore(&self, member: u32, recovering: &[usize]) -> Result<(u64, Bytes), RedError> {
        let me = self.comm.rank();
        let recorder = self.comm.router().recorder(self.comm.my_global());

        if recovering.is_empty() {
            // Nothing to transfer; the local copy is authoritative.
            return self
                .store
                .own
                .lock()
                .get(&member)
                .cloned()
                .ok_or(RedError::DataLost { member, rank: me });
        }

        // The committed layout travels from the lowest surviving rank:
        // comm slots are stable across repairs, but a replacement spare
        // has no memory of the placement the data was written under.
        let root = (0..self.comm.size())
            .find(|r| !recovering.contains(r))
            .ok_or(RedError::DataLost { member, rank: me })?;
        let local_layout = if me == root {
            self.store
                .layouts
                .lock()
                .get(&member)
                .map(|l| l.serialize())
                .unwrap_or_default()
        } else {
            Bytes::new()
        };
        let layout_blob = self.comm.bcast_bytes(root, local_layout)?;
        let layout = CommitLayout::deserialize(&layout_blob)
            .ok_or(RedError::DataLost { member, rank: me })?;
        let version = layout.version;
        let mode = layout.mode;
        let committed = Placement::from_groups(layout.groups);

        // Deterministic feasibility check — same verdict on every rank —
        // before any rank blocks in a transfer that cannot complete.
        for &q in recovering {
            let Some((gi, qpos)) = committed.locate(q) else {
                return Err(RedError::DataLost { member, rank: q });
            };
            let group = &committed.groups()[gi];
            let s = group.len();
            let recoverable = match mode {
                RedundancyMode::Replicate { k } => (1..k)
                    .map(|i| group[(qpos + i) % s])
                    .any(|h| !recovering.contains(&h)),
                _ => {
                    let alive = group.iter().filter(|r| !recovering.contains(r)).count();
                    alive >= s - mode.parity_of()
                }
            };
            if !recoverable {
                return Err(RedError::DataLost { member, rank: q });
            }
        }

        // Survivors send every shard they hold for a recovering group
        // member (replicate: only the designated first live holder sends,
        // so the recovering rank knows exactly how many frames to await).
        if !recovering.contains(&me) {
            for &q in recovering {
                let Some((gi, qpos)) = committed.locate(q) else {
                    continue;
                };
                let group = &committed.groups()[gi];
                if !group.contains(&me) {
                    continue;
                }
                let s = group.len();
                let should_send = match mode {
                    RedundancyMode::Replicate { k } => {
                        (1..k)
                            .map(|i| group[(qpos + i) % s])
                            .find(|h| !recovering.contains(h))
                            == Some(me)
                    }
                    _ => true,
                };
                if !should_send {
                    continue;
                }
                let shard = self.store.held.lock().get(&(member, q)).cloned();
                let shard = shard.ok_or(RedError::DataLost { member, rank: q })?;
                self.comm.send_bytes(
                    q,
                    Self::tag(member, 1),
                    frame(shard.version, shard.orig_len, shard.index, &shard.data),
                )?;
            }
        }

        // Recovering ranks collect and reconstruct.
        if recovering.contains(&me) {
            // lint: sanction(wall-clock): reconstruct-latency histogram;
            // metrics only, never feeds control flow. audited 2026-08.
            let t0 = Instant::now();
            let (gi, pos) = committed
                .locate(me)
                .ok_or(RedError::DataLost { member, rank: me })?;
            let group = &committed.groups()[gi];
            let s = group.len();
            let senders: Vec<usize> = match mode {
                RedundancyMode::Replicate { k } => (1..k)
                    .map(|i| group[(pos + i) % s])
                    .find(|h| !recovering.contains(h))
                    .into_iter()
                    .collect(),
                _ => group
                    .iter()
                    .copied()
                    .filter(|r| *r != me && !recovering.contains(r))
                    .collect(),
            };
            let blob = match mode {
                RedundancyMode::Replicate { .. } => {
                    let holder = *senders
                        .first()
                        .ok_or(RedError::DataLost { member, rank: me })?;
                    let (payload, _) = self.comm.recv_bytes(Some(holder), Self::tag(member, 1))?;
                    let (v, _, _, data) = unframe(&payload)?;
                    if v != version {
                        return Err(RedError::DataLost { member, rank: me });
                    }
                    data
                }
                _ => {
                    let mut slots: Vec<Option<Vec<u8>>> = vec![None; s];
                    let mut orig_len = 0u64;
                    for &from in &senders {
                        let (payload, _) =
                            self.comm.recv_bytes(Some(from), Self::tag(member, 1))?;
                        let (v, olen, index, shard) = unframe(&payload)?;
                        if v != version || index as usize >= s {
                            return Err(RedError::DataLost { member, rank: me });
                        }
                        orig_len = olen;
                        slots[index as usize] = Some(shard.to_vec());
                    }
                    let parity = mode.parity_of();
                    let decoded = match mode {
                        RedundancyMode::XorParity { .. } => {
                            codec::xor_decode(&slots, s - 1, orig_len as usize)?
                        }
                        _ => codec::rs_decode(&slots, s - parity, parity, orig_len as usize)?,
                    };
                    Bytes::from(decoded)
                }
            };
            self.store
                .own
                .lock()
                .insert(member, (version, blob.clone()));
            recorder.emit_with(|| Event::Marker {
                label: "redstore.reconstruct".into(),
            });
            if let Some(m) = recorder.metrics() {
                // lint: sanction(wall-clock): reconstruct-latency histogram;
                // metrics only, never feeds control flow. audited 2026-08.
                m.histogram("redstore.reconstruct_ns")
                    .record(t0.elapsed().as_nanos() as u64);
            }
        }

        // Every rank now owns its payload: re-encode under a fresh
        // placement so coverage is restored, not consumed — the spare that
        // replaced a dead rank may sit on a different node, which both
        // invalidates old shard placements and changes what is feasible.
        let (_, own_blob) = self
            .store
            .own
            .lock()
            .get(&member)
            .cloned()
            .ok_or(RedError::DataLost { member, rank: me })?;
        let nodes = comm_node_map(self.comm);
        let fresh_mode = self.resolve_mode(&nodes)?;
        let fresh = Placement::compute(&nodes, fresh_mode.width())?;
        self.store_with(member, version, own_blob.clone(), fresh_mode, &fresh)?;
        recorder.emit_with(|| Event::Marker {
            label: "redstore.reencode".into(),
        });
        if let Some(m) = recorder.metrics() {
            m.counter("redstore.reencode").inc();
        }
        Ok((version, own_blob))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_serialization_round_trips() {
        let layout = CommitLayout {
            version: 11,
            mode: RedundancyMode::ReedSolomon {
                width: 4,
                parity: 2,
            },
            groups: vec![vec![0, 2], vec![1, 3, 4]],
        };
        let blob = layout.serialize();
        assert_eq!(CommitLayout::deserialize(&blob), Some(layout));
        assert_eq!(CommitLayout::deserialize(&blob[..blob.len() - 1]), None);
        assert_eq!(CommitLayout::deserialize(&[]), None);
    }

    #[test]
    fn frames_round_trip_and_reject_short_payloads() {
        let f = frame(9, 100, 3, b"abc");
        let (v, olen, idx, data) = unframe(&f).unwrap();
        assert_eq!((v, olen, idx, data.as_ref()), (9, 100, 3, &b"abc"[..]));
        assert!(matches!(
            unframe(&Bytes::from_static(b"short")),
            Err(RedError::Mpi(MpiError::TypeMismatch { .. }))
        ));
    }

    #[test]
    fn store_tracks_versions_and_bytes() {
        let s = RedStore::new();
        assert_eq!(s.latest_version(0), None);
        s.own.lock().insert(0, (3, Bytes::from_static(b"abcd")));
        s.held.lock().insert(
            (0, 1),
            HeldShard {
                version: 3,
                index: 1,
                orig_len: 4,
                data: Bytes::from_static(b"xy"),
            },
        );
        assert_eq!(s.latest_version(0), Some(3));
        assert_eq!(s.resident_bytes(), 6);
        s.clear();
        assert_eq!(s.resident_bytes(), 0);
    }
}
