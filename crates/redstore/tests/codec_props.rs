//! Property suite for the erasure codecs: encode → erase → decode must
//! round-trip bitwise for arbitrary payloads (zero-length and
//! non-shard-multiple sizes included), and erasures beyond the code's
//! tolerance must surface as a typed error — never a panic.

use proptest::prelude::*;
use redstore::codec::{rs_decode, rs_encode, xor_decode, xor_encode, CodecError};

/// Deterministic erasure pattern: kill `holes` distinct slots chosen by a
/// seed, spread over the slot space.
fn erase(shards: &mut [Option<Vec<u8>>], holes: usize, seed: usize) {
    let total = shards.len();
    let mut killed = 0;
    let mut at = seed % total;
    while killed < holes {
        if shards[at].is_some() {
            shards[at] = None;
            killed += 1;
        }
        at = (at + 1) % total;
    }
}

proptest! {
    #[test]
    fn xor_roundtrips_under_single_erasure(
        payload in proptest::collection::vec(any::<u8>(), 0..400),
        n in 1usize..8,
        hole in 0usize..8,
    ) {
        let encoded = xor_encode(&payload, n).expect("encode");
        prop_assert_eq!(encoded.len(), n + 1);
        let mut slots: Vec<Option<Vec<u8>>> = encoded.into_iter().map(Some).collect();
        slots[hole % (n + 1)] = None;
        let decoded = xor_decode(&slots, n, payload.len()).expect("decode");
        prop_assert_eq!(decoded, payload);
    }

    #[test]
    fn xor_beyond_tolerance_is_typed_never_panics(
        payload in proptest::collection::vec(any::<u8>(), 1..200),
        n in 2usize..8,
        seed in 0usize..64,
    ) {
        let mut slots: Vec<Option<Vec<u8>>> =
            xor_encode(&payload, n).expect("encode").into_iter().map(Some).collect();
        erase(&mut slots, 2, seed);
        let got = xor_decode(&slots, n, payload.len());
        prop_assert!(
            matches!(got, Err(CodecError::TooManyErasures { .. })),
            "expected typed error, got {:?}", got
        );
    }

    #[test]
    fn rs_roundtrips_under_up_to_m_erasures(
        payload in proptest::collection::vec(any::<u8>(), 0..400),
        n in 1usize..6,
        m in 1usize..4,
        holes in 0usize..4,
        seed in 0usize..64,
    ) {
        let holes = holes.min(m);
        let encoded = rs_encode(&payload, n, m).expect("encode");
        prop_assert_eq!(encoded.len(), n + m);
        let mut slots: Vec<Option<Vec<u8>>> = encoded.into_iter().map(Some).collect();
        erase(&mut slots, holes, seed);
        let decoded = rs_decode(&slots, n, m, payload.len()).expect("decode");
        prop_assert_eq!(decoded, payload);
    }

    #[test]
    fn rs_beyond_tolerance_is_typed_never_panics(
        payload in proptest::collection::vec(any::<u8>(), 1..200),
        n in 1usize..6,
        m in 1usize..4,
        extra in 1usize..3,
        seed in 0usize..64,
    ) {
        let mut slots: Vec<Option<Vec<u8>>> =
            rs_encode(&payload, n, m).expect("encode").into_iter().map(Some).collect();
        let holes = (m + extra).min(n + m);
        erase(&mut slots, holes, seed);
        let got = rs_decode(&slots, n, m, payload.len());
        if holes > m {
            prop_assert!(
                matches!(got, Err(CodecError::TooManyErasures { .. })),
                "expected typed error, got {:?}", got
            );
        } else {
            // holes capped at the slot count can still be within tolerance
            // for tiny codes; then the round-trip must hold instead.
            prop_assert_eq!(got.expect("within tolerance"), payload);
        }
    }

    #[test]
    fn rs_survives_exactly_m_erasures_at_every_offset(
        len in 0usize..300,
        seed in 0usize..32,
    ) {
        // The acceptance shape: n+2 RS loses any 2 shards and still
        // round-trips bitwise, whatever the payload size (including 0 and
        // non-multiples of the shard count).
        let payload: Vec<u8> = (0..len).map(|i| (i * 131 + seed) as u8).collect();
        let (n, m) = (2usize, 2usize);
        let encoded = rs_encode(&payload, n, m).expect("encode");
        for a in 0..n + m {
            for b in (a + 1)..n + m {
                let mut slots: Vec<Option<Vec<u8>>> =
                    encoded.iter().cloned().map(Some).collect();
                slots[a] = None;
                slots[b] = None;
                let decoded = rs_decode(&slots, n, m, payload.len()).expect("decode");
                prop_assert_eq!(&decoded, &payload, "holes {} {}", a, b);
            }
        }
    }
}
