//! End-to-end store/restore over simulated MPI: multi-failure recovery,
//! re-encode-after-repair coverage restoration, topology-aware placement
//! invariants, and typed unrecoverable outcomes.
//!
//! Recovery is simulated without Fenix: "failed" ranks clear their stores
//! (a replacement spare starts empty) and the survivors feed them through
//! [`RedundancyGroup::restore`], exactly the call sequence the resilience
//! runner makes after a repair.

use std::sync::Arc;

use bytes::Bytes;
use cluster::{Cluster, ClusterConfig, TimeScale};
use parking_lot::Mutex;
use redstore::{comm_node_map, RedError, RedStore, RedundancyGroup, RedundancyMode};
use simmpi::{FaultPlan, MpiResult, RankCtx, Universe, UniverseConfig};

fn cluster(nodes: usize, rpn: usize) -> Cluster {
    Cluster::new(ClusterConfig {
        nodes,
        ranks_per_node: rpn,
        time_scale: TimeScale::instant(),
        ..ClusterConfig::default()
    })
}

fn launch<F>(nodes: usize, rpn: usize, f: F) -> simmpi::LaunchReport
where
    F: Fn(&mut RankCtx) -> MpiResult<()> + Send + Sync,
{
    Universe::launch(
        &cluster(nodes, rpn),
        UniverseConfig::default(),
        Arc::new(FaultPlan::none()),
        f,
    )
}

fn payload(rank: usize, len: usize) -> Bytes {
    Bytes::from(
        (0..len)
            .map(|i| (i * 31 + rank * 7 + 1) as u8)
            .collect::<Vec<u8>>(),
    )
}

const MEMBER: u32 = 0;

/// Per-rank restore outcomes collected out of a launch.
type RestoreResults = Arc<Mutex<Vec<Option<Result<Bytes, RedError>>>>>;

/// Store on every rank, wipe `dead`, restore, and hand each rank's
/// restored payload to `check`. Runs entirely inside one launch.
fn store_kill_restore(
    nodes: usize,
    rpn: usize,
    mode: Option<RedundancyMode>,
    dead: &'static [usize],
    results: RestoreResults,
) -> simmpi::LaunchReport {
    launch(nodes, rpn, move |ctx| {
        let n = nodes * rpn;
        let store = RedStore::new();
        let comm = ctx.world().clone();
        let group = RedundancyGroup::new(Arc::clone(&store), &comm, mode);
        let me = comm.rank();
        group
            .store(MEMBER, 5, payload(me, 256))
            .expect("store commits");
        comm.barrier()?;
        if dead.contains(&me) {
            store.clear();
        }
        comm.barrier()?;
        let out = group.restore(MEMBER, dead).map(|(v, blob)| {
            assert_eq!(v, 5, "committed version survives recovery");
            blob
        });
        results.lock()[me] = Some(out);
        // A failed restore is collective: every rank sees the same typed
        // error, and nobody proceeds — mirror that by not erroring the
        // rank itself.
        let _ = n;
        Ok(())
    })
}

fn run_case(
    nodes: usize,
    rpn: usize,
    mode: Option<RedundancyMode>,
    dead: &'static [usize],
) -> Vec<Result<Bytes, RedError>> {
    let results = Arc::new(Mutex::new(vec![None; nodes * rpn]));
    let report = store_kill_restore(nodes, rpn, mode, dead, Arc::clone(&results));
    assert!(report.all_ok(), "ranks completed: {:?}", report.outcomes);
    let locked = results.lock();
    locked
        .iter()
        .map(|r| r.clone().expect("every rank reported"))
        .collect()
}

#[test]
fn rs_recovers_two_failures_in_one_group() {
    // 4 ranks on 4 nodes: auto mode is RS(2+2) over one width-4 group —
    // two concurrent failures inside the group must be recoverable.
    let out = run_case(4, 1, None, &[0, 1]);
    for (rank, r) in out.iter().enumerate() {
        assert_eq!(
            r.as_ref().expect("recovered"),
            &payload(rank, 256),
            "rank {rank} bitwise round-trip"
        );
    }
}

#[test]
fn exceeding_tolerance_is_a_typed_error_everywhere() {
    // Three of four ranks lost exceeds RS(2+2)'s m=2: every rank must see
    // the same typed DataLost, never a panic or a hang.
    let out = run_case(4, 1, None, &[0, 1, 2]);
    for (rank, r) in out.iter().enumerate() {
        assert!(
            matches!(r, Err(RedError::DataLost { .. })),
            "rank {rank}: {r:?}"
        );
    }
}

#[test]
fn replicate_groups_span_nodes_and_survive_a_node_loss() {
    // 2 nodes × 2 ranks: auto degrades to 2-replica groups. Ranks 0,1 are
    // node 0 — a whole-node loss. Distinct-node placement puts their
    // partners on node 1, so both recover.
    let out = run_case(2, 2, None, &[0, 1]);
    for (rank, r) in out.iter().enumerate() {
        assert_eq!(
            r.as_ref().expect("recovered"),
            &payload(rank, 256),
            "rank {rank}"
        );
    }
}

#[test]
fn explicit_k3_survives_two_failures() {
    let out = run_case(6, 1, Some(RedundancyMode::Replicate { k: 3 }), &[0, 3]);
    for (rank, r) in out.iter().enumerate() {
        assert_eq!(
            r.as_ref().expect("recovered"),
            &payload(rank, 256),
            "rank {rank}"
        );
    }
}

#[test]
fn xor_survives_one_failure_but_not_two_in_group() {
    let ok = run_case(3, 1, Some(RedundancyMode::XorParity { width: 3 }), &[1]);
    for (rank, r) in ok.iter().enumerate() {
        assert_eq!(
            r.as_ref().expect("recovered"),
            &payload(rank, 256),
            "rank {rank}"
        );
    }
    let lost = run_case(3, 1, Some(RedundancyMode::XorParity { width: 3 }), &[0, 1]);
    for r in &lost {
        assert!(matches!(r, Err(RedError::DataLost { .. })));
    }
}

#[test]
fn placement_invariant_is_committed_with_the_layout() {
    let seen = Arc::new(Mutex::new(Vec::new()));
    let seen2 = Arc::clone(&seen);
    let report = launch(3, 2, move |ctx| {
        let store = RedStore::new();
        let comm = ctx.world().clone();
        let group = RedundancyGroup::new(Arc::clone(&store), &comm, None);
        group
            .store(MEMBER, 1, payload(comm.rank(), 64))
            .expect("store");
        let layout = store.layout(MEMBER).expect("layout committed");
        let nodes = comm_node_map(&comm);
        for g in &layout.groups {
            let mut group_nodes: Vec<usize> = g.iter().map(|&r| nodes[r]).collect();
            group_nodes.sort_unstable();
            let len = group_nodes.len();
            group_nodes.dedup();
            assert_eq!(group_nodes.len(), len, "two group members share a node");
        }
        seen2.lock().push(layout.groups.len());
        Ok(())
    });
    assert!(report.all_ok());
    assert_eq!(seen.lock().len(), 6);
}

#[test]
fn restore_reencodes_so_coverage_is_restored_not_consumed() {
    // After recovering ranks {0,1}, the re-encode must have re-established
    // full redundancy: losing {2,3} *afterwards* is again recoverable.
    // Without the re-encode, survivors 2 and 3 would still hold shards
    // placed for the pre-repair group and the second restore would fail.
    let results = Arc::new(Mutex::new(vec![None; 4]));
    let r2 = Arc::clone(&results);
    let report = launch(4, 1, move |ctx| {
        let store = RedStore::new();
        let comm = ctx.world().clone();
        let group = RedundancyGroup::new(Arc::clone(&store), &comm, None);
        let me = comm.rank();
        group.store(MEMBER, 7, payload(me, 300)).expect("store");
        comm.barrier()?;
        if [0usize, 1].contains(&me) {
            store.clear();
        }
        comm.barrier()?;
        group.restore(MEMBER, &[0, 1]).expect("first recovery");
        comm.barrier()?;
        if [2usize, 3].contains(&me) {
            store.clear();
        }
        comm.barrier()?;
        let (v, blob) = group.restore(MEMBER, &[2, 3]).expect("second recovery");
        assert_eq!(v, 7);
        r2.lock()[me] = Some(blob);
        Ok(())
    });
    assert!(report.all_ok(), "{:?}", report.outcomes);
    for (rank, blob) in results.lock().iter().enumerate() {
        assert_eq!(
            blob.as_ref().expect("reported"),
            &payload(rank, 300),
            "rank {rank}"
        );
    }
}

#[test]
fn zero_length_payloads_commit_and_restore() {
    let results = Arc::new(Mutex::new(vec![None; 4]));
    let r2 = Arc::clone(&results);
    let report = launch(4, 1, move |ctx| {
        let store = RedStore::new();
        let comm = ctx.world().clone();
        let group = RedundancyGroup::new(Arc::clone(&store), &comm, None);
        let me = comm.rank();
        group.store(MEMBER, 0, Bytes::new()).expect("store empty");
        comm.barrier()?;
        if me == 2 {
            store.clear();
        }
        comm.barrier()?;
        let (_, blob) = group.restore(MEMBER, &[2]).expect("restore empty");
        r2.lock()[me] = Some(blob.len());
        Ok(())
    });
    assert!(report.all_ok());
    assert!(results.lock().iter().all(|l| *l == Some(0)));
}

#[test]
fn memory_overhead_matches_the_mode() {
    // The EXPERIMENTS.md coverage/cost table comes from these ratios:
    // k-replica is k×, XOR n+1 is (n+1)/n×, RS over a width-w group with
    // m parity is 1 + (w-1)/(w-m)× of the payload.
    let cases: &[(usize, usize, Option<RedundancyMode>, f64)] = &[
        (4, 1, Some(RedundancyMode::Replicate { k: 2 }), 2.0),
        (6, 1, Some(RedundancyMode::Replicate { k: 3 }), 3.0),
        // width-3 XOR: own + 2 held shards of len/2 = 2.0×
        (3, 1, Some(RedundancyMode::XorParity { width: 3 }), 2.0),
        // width-4 RS m=2: own + 3 held shards of len/2 = 2.5×
        (
            4,
            1,
            Some(RedundancyMode::ReedSolomon {
                width: 4,
                parity: 2,
            }),
            2.5,
        ),
    ];
    for &(nodes, rpn, mode, expect) in cases {
        let measured = Arc::new(Mutex::new(Vec::new()));
        let m2 = Arc::clone(&measured);
        let len = 4096usize;
        let report = launch(nodes, rpn, move |ctx| {
            let store = RedStore::new();
            let comm = ctx.world().clone();
            let group = RedundancyGroup::new(Arc::clone(&store), &comm, mode);
            group
                .store(MEMBER, 1, payload(comm.rank(), len))
                .expect("store");
            m2.lock().push(store.resident_bytes() as f64 / len as f64);
            Ok(())
        });
        assert!(report.all_ok());
        for ratio in measured.lock().iter() {
            assert!(
                (ratio - expect).abs() < 0.01,
                "{mode:?}: measured {ratio}, expected {expect}"
            );
        }
    }
}
