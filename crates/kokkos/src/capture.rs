//! Automatic detection of the views a code region uses.
//!
//! Kokkos Resilience "uses Kokkos's model of data storage and functor- and
//! lambda-based parallelism to automatically detect the data to be
//! checkpointed". The Rust equivalent: while a [`CaptureSession`] is active
//! on the current thread, every [`View`](crate::view::View) whose data is
//! locked through `read()`/`write()` is recorded, together with a
//! type-erased handle that lets the resilience layer snapshot and restore it
//! later without knowing its element type.
//!
//! Limitation (documented, matching how the apps are written): the *handle
//! acquisition* is recorded, so views must be locked on the region's thread;
//! data touched only inside pool workers through pre-acquired guards is
//! attributed to the lock site, which is the region.

use std::cell::RefCell;
use std::sync::Arc;

use bytes::Bytes;
use parking_lot::Mutex;
use simmpi::pod::{self, Pod};

use crate::view::{View, ViewMeta};

/// Type-erased checkpointable data handle.
pub trait Checkpointable: Send + Sync {
    fn meta(&self) -> ViewMeta;
    /// Serialize current contents (must not itself record a capture).
    fn snapshot(&self) -> Bytes;
    /// Overwrite contents from serialized bytes.
    fn restore(&self, data: &[u8]);
    /// Dirty-tracking stamp of the underlying allocation, if the handle
    /// supports one. `None` means "assume dirty every checkpoint" — the
    /// safe default for handles without write-path instrumentation.
    fn generation(&self) -> Option<u64> {
        None
    }

    /// Serialize straight into `out` (the resilience layer's zero-copy
    /// pack slot). Returns `false` when the current byte length no longer
    /// matches `out.len()` — the caller falls back to [`Self::snapshot`].
    fn snapshot_into(&self, out: &mut [u8]) -> bool {
        let snap = self.snapshot();
        if snap.len() != out.len() {
            return false;
        }
        out.copy_from_slice(&snap);
        true
    }
}

impl<T: Pod> Checkpointable for View<T> {
    fn meta(&self) -> ViewMeta {
        View::meta(self).clone()
    }

    fn snapshot(&self) -> Bytes {
        self.snapshot_bytes()
    }

    fn restore(&self, data: &[u8]) {
        self.restore_bytes(data);
    }

    fn generation(&self) -> Option<u64> {
        Some(View::generation(self))
    }

    fn snapshot_into(&self, out: &mut [u8]) -> bool {
        // One copy, from the view's storage into the frame slot, without
        // the intermediate `Bytes` of `snapshot_bytes` (and without
        // recording a capture, like every serialization path here).
        let guard = self.read_uncaptured();
        let src = pod::as_bytes(&guard);
        if src.len() != out.len() {
            return false;
        }
        out.copy_from_slice(src);
        true
    }
}

/// One recorded view access.
#[derive(Clone)]
pub struct CaptureRecord {
    pub meta: ViewMeta,
    pub wrote: bool,
    pub handle: Arc<dyn Checkpointable>,
}

impl std::fmt::Debug for CaptureRecord {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CaptureRecord")
            .field("label", &self.meta.label)
            .field("view_id", &self.meta.view_id)
            .field("alloc_id", &self.meta.alloc_id)
            .field("wrote", &self.wrote)
            .finish()
    }
}

/// A recording of all view accesses between [`CaptureSession::begin`] and
/// [`CaptureSession::end`] on one thread.
#[derive(Clone, Default)]
pub struct CaptureSession {
    records: Arc<Mutex<Vec<CaptureRecord>>>,
}

thread_local! {
    static ACTIVE: RefCell<Vec<CaptureSession>> = const { RefCell::new(Vec::new()) };
}

impl CaptureSession {
    pub fn new() -> Self {
        Self::default()
    }

    /// Activate this session on the current thread (sessions nest; the
    /// innermost active session receives the records, and records propagate
    /// to outer sessions as well so nested regions compose).
    pub fn begin(&self) {
        ACTIVE.with(|a| a.borrow_mut().push(self.clone()));
    }

    /// Deactivate the innermost session. Panics if no session is active.
    pub fn end(&self) {
        ACTIVE.with(|a| {
            let popped = a.borrow_mut().pop();
            assert!(popped.is_some(), "no active capture session to end");
        });
    }

    /// Run a closure with this session active, ending it even on panic.
    pub fn record<R>(&self, f: impl FnOnce() -> R) -> R {
        self.begin();
        struct Guard<'a>(&'a CaptureSession);
        impl Drop for Guard<'_> {
            fn drop(&mut self) {
                self.0.end();
            }
        }
        let _g = Guard(self);
        f()
    }

    /// All raw records, in access order (may contain repeats).
    pub fn records(&self) -> Vec<CaptureRecord> {
        self.records.lock().clone()
    }

    /// Records deduplicated by `view_id`, keeping first-access order and
    /// OR-ing write flags (repeated accesses to the same view object fold
    /// into one record).
    pub fn unique_views(&self) -> Vec<CaptureRecord> {
        let records = self.records.lock();
        let mut out: Vec<CaptureRecord> = Vec::new();
        for r in records.iter() {
            if let Some(existing) = out.iter_mut().find(|o| o.meta.view_id == r.meta.view_id) {
                existing.wrote |= r.wrote;
            } else {
                out.push(r.clone());
            }
        }
        out
    }

    pub fn is_empty(&self) -> bool {
        self.records.lock().is_empty()
    }

    pub fn clear(&self) {
        self.records.lock().clear();
    }

    fn push(&self, record: CaptureRecord) {
        self.records.lock().push(record);
    }
}

/// Whether any capture session is active on this thread.
pub fn capturing() -> bool {
    ACTIVE.with(|a| !a.borrow().is_empty())
}

/// Record a view access into every active session on this thread.
/// Called by `View::read`/`View::write`; cheap when no session is active.
pub fn record_access<T: Pod>(view: &View<T>, wrote: bool) {
    ACTIVE.with(|a| {
        let sessions = a.borrow();
        if sessions.is_empty() {
            return;
        }
        let record = CaptureRecord {
            meta: View::meta(view).clone(),
            wrote,
            handle: Arc::new(view.clone()),
        };
        for s in sessions.iter() {
            s.push(record.clone());
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_session_records_nothing() {
        let v: View<f64> = View::new_1d("a", 4);
        let _ = v.read();
        let _ = v.write();
        assert!(!capturing());
    }

    #[test]
    fn session_records_accesses() {
        let v: View<f64> = View::new_1d("a", 4);
        let w: View<u32> = View::new_1d("b", 2);
        let s = CaptureSession::new();
        s.record(|| {
            let _ = v.read();
            let _ = w.write();
        });
        let recs = s.records();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].meta.label, "a");
        assert!(!recs[0].wrote);
        assert_eq!(recs[1].meta.label, "b");
        assert!(recs[1].wrote);
    }

    #[test]
    fn unique_views_dedups_and_merges_write_flag() {
        let v: View<f64> = View::new_1d("a", 4);
        let s = CaptureSession::new();
        s.record(|| {
            let _ = v.read();
            let _ = v.write();
            let _ = v.read();
        });
        let uniq = s.unique_views();
        assert_eq!(uniq.len(), 1);
        assert!(uniq[0].wrote);
    }

    #[test]
    fn duplicate_handles_stay_distinct_records() {
        let v: View<f64> = View::new_1d("orig", 4);
        let d = v.duplicate_handle("dup");
        let s = CaptureSession::new();
        s.record(|| {
            let _ = v.read();
            let _ = d.read();
        });
        let uniq = s.unique_views();
        assert_eq!(uniq.len(), 2);
        assert_eq!(uniq[0].meta.alloc_id, uniq[1].meta.alloc_id);
        assert_ne!(uniq[0].meta.view_id, uniq[1].meta.view_id);
    }

    #[test]
    fn uncaptured_access_not_recorded() {
        let v: View<f64> = View::new_1d("a", 4);
        let s = CaptureSession::new();
        s.record(|| {
            let _ = v.read_uncaptured();
            let _ = v.snapshot_bytes();
        });
        assert!(s.is_empty());
    }

    #[test]
    fn nested_sessions_both_record() {
        let v: View<f64> = View::new_1d("a", 4);
        let outer = CaptureSession::new();
        let inner = CaptureSession::new();
        outer.record(|| {
            inner.record(|| {
                let _ = v.read();
            });
        });
        assert_eq!(outer.records().len(), 1);
        assert_eq!(inner.records().len(), 1);
    }

    #[test]
    fn session_ends_on_panic() {
        let s = CaptureSession::new();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            s.record(|| panic!("boom"));
        }));
        assert!(result.is_err());
        assert!(!capturing(), "session leaked past panic");
    }

    #[test]
    fn restore_through_trait_object() {
        let v: View<u64> = View::from_vec("a", vec![1, 2, 3]);
        let handle: Arc<dyn Checkpointable> = Arc::new(v.clone());
        let snap = handle.snapshot();
        v.fill(0);
        handle.restore(&snap);
        assert_eq!(*v.read(), vec![1, 2, 3]);
    }
}
