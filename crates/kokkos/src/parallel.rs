//! Parallel execution patterns (`parallel_for`, `parallel_reduce`).
//!
//! Two execution policies are offered. `Serial` is the default: experiment
//! universes already run one OS thread per MPI rank, so intra-rank
//! parallelism would oversubscribe the machine and add noise to the paper's
//! timing reproductions. `Threads` fans work out over scoped OS threads for
//! single-rank/standalone use of the library.

use std::sync::atomic::{AtomicU8, AtomicUsize, Ordering};

/// How a parallel pattern executes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExecPolicy {
    /// Plain loop on the calling thread.
    Serial,
    /// Static chunking over scoped OS threads (one per available core).
    Threads,
}

static DEFAULT_POLICY: AtomicU8 = AtomicU8::new(0);

/// Set the process-wide default policy.
pub fn set_default_policy(p: ExecPolicy) {
    DEFAULT_POLICY.store(p as u8, Ordering::Relaxed);
}

/// The current process-wide default policy.
pub fn default_policy() -> ExecPolicy {
    match DEFAULT_POLICY.load(Ordering::Relaxed) {
        1 => ExecPolicy::Threads,
        _ => ExecPolicy::Serial,
    }
}

/// Worker count for the `Threads` policy.
fn pool_width() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Run `work(chunk_index, start..end)` for `n` items split over the pool.
fn fan_out(n: usize, work: impl Fn(usize, std::ops::Range<usize>) + Sync) {
    let chunks = pool_width().min(n.max(1));
    let chunk = n.div_ceil(chunks).max(1);
    std::thread::scope(|scope| {
        for c in 0..chunks {
            let start = c * chunk;
            let end = ((c + 1) * chunk).min(n);
            if start >= end {
                break;
            }
            let work = &work;
            scope.spawn(move || work(c, start..end));
        }
    });
}

/// `for i in 0..n { f(i) }`, possibly in parallel.
pub fn parallel_for(n: usize, f: impl Fn(usize) + Sync + Send) {
    parallel_for_with(default_policy(), n, f)
}

/// `parallel_for` with an explicit policy.
pub fn parallel_for_with(policy: ExecPolicy, n: usize, f: impl Fn(usize) + Sync + Send) {
    match policy {
        ExecPolicy::Serial => {
            for i in 0..n {
                f(i);
            }
        }
        ExecPolicy::Threads => {
            fan_out(n, |_, range| {
                for i in range {
                    f(i);
                }
            });
        }
    }
}

/// Map-reduce over `0..n`: combines `map(i)` values with `combine`,
/// starting from `identity`.
pub fn parallel_reduce<A>(
    n: usize,
    identity: A,
    map: impl Fn(usize) -> A + Sync + Send,
    combine: impl Fn(A, A) -> A + Sync + Send,
) -> A
where
    A: Send + Sync + Clone,
{
    parallel_reduce_with(default_policy(), n, identity, map, combine)
}

/// `parallel_reduce` with an explicit policy.
pub fn parallel_reduce_with<A>(
    policy: ExecPolicy,
    n: usize,
    identity: A,
    map: impl Fn(usize) -> A + Sync + Send,
    combine: impl Fn(A, A) -> A + Sync + Send,
) -> A
where
    A: Send + Sync + Clone,
{
    match policy {
        ExecPolicy::Serial => {
            let mut acc = identity;
            for i in 0..n {
                acc = combine(acc, map(i));
            }
            acc
        }
        ExecPolicy::Threads => {
            let chunks = pool_width().min(n.max(1));
            let mut partials: Vec<Option<A>> = vec![None; chunks];
            {
                let slots: Vec<_> = partials.iter_mut().collect();
                let slot_of = AtomicUsize::new(0);
                let map = &map;
                let combine = &combine;
                let identity = &identity;
                let chunk = n.div_ceil(chunks).max(1);
                std::thread::scope(|scope| {
                    for slot in slots {
                        let c = slot_of.fetch_add(1, Ordering::Relaxed);
                        let start = c * chunk;
                        let end = ((c + 1) * chunk).min(n);
                        if start >= end {
                            continue; // empty chunk must not contribute `identity`
                        }
                        scope.spawn(move || {
                            let mut acc = identity.clone();
                            for i in start..end {
                                acc = combine(acc, map(i));
                            }
                            *slot = Some(acc);
                        });
                    }
                });
            }
            partials
                .into_iter()
                .flatten()
                .reduce(combine)
                .unwrap_or(identity)
        }
    }
}

/// 2-D iteration (Kokkos `MDRangePolicy<Rank<2>>`): `f(i, j)` over
/// `0..ni × 0..nj`, row-major.
pub fn parallel_for_2d(ni: usize, nj: usize, f: impl Fn(usize, usize) + Sync + Send) {
    parallel_for_2d_with(default_policy(), ni, nj, f)
}

/// `parallel_for_2d` with an explicit policy (parallelized over rows).
pub fn parallel_for_2d_with(
    policy: ExecPolicy,
    ni: usize,
    nj: usize,
    f: impl Fn(usize, usize) + Sync + Send,
) {
    parallel_for_with(policy, ni, |i| {
        for j in 0..nj {
            f(i, j);
        }
    })
}

/// Exclusive prefix scan (Kokkos `parallel_scan`): `out[i]` receives the
/// sum of `values[..i]`; returns the grand total. The parallel version is
/// the standard two-pass chunked scan.
pub fn parallel_scan_exclusive(values: &[u64], out: &mut [u64]) -> u64 {
    parallel_scan_exclusive_with(default_policy(), values, out)
}

/// `parallel_scan_exclusive` with an explicit policy.
pub fn parallel_scan_exclusive_with(policy: ExecPolicy, values: &[u64], out: &mut [u64]) -> u64 {
    assert_eq!(values.len(), out.len(), "scan buffer size mismatch");
    let n = values.len();
    if n == 0 {
        return 0;
    }
    match policy {
        ExecPolicy::Serial => {
            let mut acc = 0u64;
            for i in 0..n {
                out[i] = acc;
                acc = acc.wrapping_add(values[i]);
            }
            acc
        }
        ExecPolicy::Threads => {
            let chunks = pool_width().min(n);
            let chunk = n.div_ceil(chunks).max(1);
            // Pass 1: per-chunk sums.
            let mut sums = vec![0u64; values.chunks(chunk).len()];
            std::thread::scope(|scope| {
                for (s, c) in sums.iter_mut().zip(values.chunks(chunk)) {
                    scope.spawn(move || {
                        *s = c.iter().fold(0u64, |a, &x| a.wrapping_add(x));
                    });
                }
            });
            // Chunk offsets (few chunks: serial).
            let mut offsets = Vec::with_capacity(sums.len());
            let mut acc = 0u64;
            for &s in &sums {
                offsets.push(acc);
                acc = acc.wrapping_add(s);
            }
            // Pass 2: scan within each chunk from its offset.
            std::thread::scope(|scope| {
                for ((o, v), &base) in out
                    .chunks_mut(chunk)
                    .zip(values.chunks(chunk))
                    .zip(offsets.iter())
                {
                    scope.spawn(move || {
                        let mut a = base;
                        for (oi, &vi) in o.iter_mut().zip(v) {
                            *oi = a;
                            a = a.wrapping_add(vi);
                        }
                    });
                }
            });
            acc
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn serial_for_visits_all_indices() {
        let sum = AtomicU64::new(0);
        parallel_for_with(ExecPolicy::Serial, 100, |i| {
            sum.fetch_add(i as u64, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 4950);
    }

    #[test]
    fn threaded_for_visits_all_indices() {
        let sum = AtomicU64::new(0);
        parallel_for_with(ExecPolicy::Threads, 100, |i| {
            sum.fetch_add(i as u64, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 4950);
    }

    #[test]
    fn reduce_matches_between_policies() {
        let serial =
            parallel_reduce_with(ExecPolicy::Serial, 1000, 0u64, |i| i as u64, |a, b| a + b);
        let threaded =
            parallel_reduce_with(ExecPolicy::Threads, 1000, 0u64, |i| i as u64, |a, b| a + b);
        assert_eq!(serial, threaded);
        assert_eq!(serial, 499_500);
    }

    #[test]
    fn reduce_max() {
        let m = parallel_reduce_with(
            ExecPolicy::Serial,
            10,
            f64::NEG_INFINITY,
            |i| (i as f64 - 5.0).abs(),
            f64::max,
        );
        assert_eq!(m, 5.0);
    }

    #[test]
    fn zero_length_is_identity() {
        let v = parallel_reduce_with(ExecPolicy::Threads, 0, 42u64, |_| 0, |a, b| a + b);
        assert_eq!(v, 42);
    }

    #[test]
    fn for_2d_covers_grid() {
        let hits = AtomicU64::new(0);
        parallel_for_2d_with(ExecPolicy::Threads, 7, 5, |i, j| {
            hits.fetch_add((i * 5 + j) as u64 + 1, Ordering::Relaxed);
        });
        // Sum of 1..=35.
        assert_eq!(hits.load(Ordering::Relaxed), 630);
    }

    #[test]
    fn scan_matches_serial_reference() {
        let values: Vec<u64> = (0..1000).map(|i| (i * 7 + 3) % 23).collect();
        let mut serial = vec![0u64; values.len()];
        let mut par = vec![0u64; values.len()];
        let t1 = parallel_scan_exclusive_with(ExecPolicy::Serial, &values, &mut serial);
        let t2 = parallel_scan_exclusive_with(ExecPolicy::Threads, &values, &mut par);
        assert_eq!(t1, t2);
        assert_eq!(serial, par);
        assert_eq!(serial[0], 0);
        assert_eq!(serial[1], values[0]);
    }

    #[test]
    fn scan_empty_is_zero() {
        let mut out = [];
        assert_eq!(parallel_scan_exclusive(&[], &mut out), 0);
    }

    #[test]
    fn scan_single_chunk_path() {
        let values = [1u64, 2, 3];
        let mut out = [0u64; 3];
        let total = parallel_scan_exclusive_with(ExecPolicy::Threads, &values, &mut out);
        assert_eq!(out, [0, 1, 3]);
        assert_eq!(total, 6);
    }

    #[test]
    fn default_policy_roundtrip() {
        assert_eq!(default_policy(), ExecPolicy::Serial);
        set_default_policy(ExecPolicy::Threads);
        assert_eq!(default_policy(), ExecPolicy::Threads);
        set_default_policy(ExecPolicy::Serial);
    }
}
