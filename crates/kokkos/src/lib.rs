//! Kokkos-style data abstractions and parallel patterns.
//!
//! The paper's control-flow layer (Kokkos Resilience) leans on two Kokkos
//! properties: data lives in *labelled, reference-counted views*, and the
//! library can *observe which views a code region uses*. This crate provides
//! both for Rust:
//!
//! * [`view::View`] — an `Arc`-shared, labelled, shape-aware array of
//!   plain-old-data elements. Distinct `View` objects may share one
//!   allocation ([`view::View::duplicate_handle`]), mirroring Kokkos views
//!   copied into multiple lambdas by the compiler — the "skipped" views of
//!   the paper's Figure 7.
//! * [`capture`] — a capture-session mechanism: while a session is active on
//!   the current thread, every view whose data is locked for reading or
//!   writing is recorded. Kokkos Resilience opens a session around the first
//!   execution of a checkpoint region to discover, automatically, the data
//!   the region touches.
//! * [`parallel`] — `parallel_for`/`parallel_reduce` with serial and threaded
//!   execution policies (serial is the default: experiment ranks are
//!   already one thread each).

pub mod capture;
pub mod parallel;
pub mod view;

pub use capture::{CaptureRecord, CaptureSession};
pub use parallel::{
    parallel_for, parallel_for_2d, parallel_reduce, parallel_scan_exclusive, ExecPolicy,
};
pub use view::{deep_copy, View, ViewMeta};
