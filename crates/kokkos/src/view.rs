//! Labelled, reference-counted, shape-aware data views.
//!
//! A [`View`] is the unit of application data the resilience layers reason
//! about. Like a Kokkos view it has a human-readable label, up to three
//! dimensions, and shared ownership of its allocation: cloning a `View`
//! yields another handle to the *same* view object, while
//! [`View::duplicate_handle`] creates a *distinct view object over the same
//! allocation* — the situation Kokkos Resilience must detect to avoid
//! checkpointing one buffer twice (the "skipped" views in the paper's
//! Figure 7).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use bytes::Bytes;
use parking_lot::RwLock;
use simmpi::pod::{self, Pod};

use crate::capture;

static NEXT_ID: AtomicU64 = AtomicU64::new(1);

fn fresh_id() -> u64 {
    NEXT_ID.fetch_add(1, Ordering::Relaxed)
}

/// Globally-unique generation stamps for dirty-region tracking.
///
/// Every mutable access re-stamps the allocation with a fresh value from
/// this counter, so stamp *equality* across two observations means "same
/// allocation, no writes in between" — there is no per-allocation
/// wraparound or reuse to reason about. Stamps from this counter keep the
/// top bit clear; `veloc`'s own region stamps set it, so the two
/// namespaces can never collide even though the crates share no code.
static NEXT_GEN: AtomicU64 = AtomicU64::new(1);

// Allocation-order only; stamps are compared for equality, never used to
// publish data (snapshots synchronize through the storage RwLock).
fn fresh_gen() -> u64 {
    NEXT_GEN.fetch_add(1, Ordering::Relaxed)
}

/// Identity and shape of a view, carried into capture records and
/// checkpoint metadata.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ViewMeta {
    /// Unique per view *object*.
    pub view_id: u64,
    /// Shared by every view object over the same allocation.
    pub alloc_id: u64,
    pub label: String,
    /// Extents; unused trailing dimensions are 1.
    pub extents: [usize; 3],
    /// Number of meaningful dimensions (1..=3).
    pub rank: usize,
    /// Size of the allocation in bytes.
    pub bytes: usize,
}

impl ViewMeta {
    pub fn len(&self) -> usize {
        self.extents.iter().product()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

struct Storage<T> {
    data: RwLock<Vec<T>>,
    /// Last write stamp. Re-stamped *before* the write lock is acquired,
    /// so a concurrent checkpoint that reads the stamp first and the data
    /// second can only err toward "dirty" (it re-sends an unchanged
    /// region), never toward "clean" (skipping a changed one).
    generation: AtomicU64,
}

struct Inner<T: Pod> {
    meta: ViewMeta,
    storage: Arc<Storage<T>>,
}

/// A labelled, shared, shape-aware array of POD elements.
///
/// `clone()` produces another handle to the same view object (same
/// `view_id`); use [`View::duplicate_handle`] for a new view object over the
/// same data.
pub struct View<T: Pod> {
    inner: Arc<Inner<T>>,
}

impl<T: Pod> Clone for View<T> {
    fn clone(&self) -> Self {
        View {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T: Pod + Default> View<T> {
    /// A zero-initialized 1-D view.
    pub fn new_1d(label: impl Into<String>, n: usize) -> Self {
        Self::with_extents(label, [n, 1, 1], 1)
    }

    /// A zero-initialized 2-D view (row-major: index `i * ny + j`).
    pub fn new_2d(label: impl Into<String>, nx: usize, ny: usize) -> Self {
        Self::with_extents(label, [nx, ny, 1], 2)
    }

    /// A zero-initialized 3-D view (index `(i * ny + j) * nz + k`).
    pub fn new_3d(label: impl Into<String>, nx: usize, ny: usize, nz: usize) -> Self {
        Self::with_extents(label, [nx, ny, nz], 3)
    }

    fn with_extents(label: impl Into<String>, extents: [usize; 3], rank: usize) -> Self {
        let len: usize = extents.iter().product();
        Self::from_vec_extents(label, vec![T::default(); len], extents, rank)
    }
}

impl<T: Pod> View<T> {
    /// Wrap an existing vector as a 1-D view.
    pub fn from_vec(label: impl Into<String>, data: Vec<T>) -> Self {
        let n = data.len();
        Self::from_vec_extents(label, data, [n, 1, 1], 1)
    }

    fn from_vec_extents(
        label: impl Into<String>,
        data: Vec<T>,
        extents: [usize; 3],
        rank: usize,
    ) -> Self {
        assert_eq!(
            data.len(),
            extents.iter().product::<usize>(),
            "data length must match extents"
        );
        let alloc_id = fresh_id();
        let bytes = std::mem::size_of::<T>() * data.len();
        View {
            inner: Arc::new(Inner {
                meta: ViewMeta {
                    view_id: fresh_id(),
                    alloc_id,
                    label: label.into(),
                    extents,
                    rank,
                    bytes,
                },
                storage: Arc::new(Storage {
                    data: RwLock::new(data),
                    generation: AtomicU64::new(fresh_gen()),
                }),
            }),
        }
    }

    /// A new view *object* (fresh `view_id`, same `alloc_id`) over this
    /// view's allocation — the stand-in for a Kokkos view copied into
    /// another lambda or struct.
    pub fn duplicate_handle(&self, label: impl Into<String>) -> Self {
        let mut meta = self.inner.meta.clone();
        meta.view_id = fresh_id();
        meta.label = label.into();
        View {
            inner: Arc::new(Inner {
                meta,
                storage: Arc::clone(&self.inner.storage),
            }),
        }
    }

    pub fn meta(&self) -> &ViewMeta {
        &self.inner.meta
    }

    pub fn label(&self) -> &str {
        &self.inner.meta.label
    }

    pub fn view_id(&self) -> u64 {
        self.inner.meta.view_id
    }

    pub fn alloc_id(&self) -> u64 {
        self.inner.meta.alloc_id
    }

    pub fn len(&self) -> usize {
        self.inner.meta.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn extent(&self, dim: usize) -> usize {
        self.inner.meta.extents[dim]
    }

    /// Size of the underlying allocation in bytes.
    pub fn byte_len(&self) -> usize {
        self.inner.meta.bytes
    }

    /// Flat index for a 2-D view.
    #[inline]
    pub fn idx2(&self, i: usize, j: usize) -> usize {
        debug_assert!(i < self.extent(0) && j < self.extent(1));
        i * self.extent(1) + j
    }

    /// Flat index for a 3-D view.
    #[inline]
    pub fn idx3(&self, i: usize, j: usize, k: usize) -> usize {
        debug_assert!(i < self.extent(0) && j < self.extent(1) && k < self.extent(2));
        (i * self.extent(1) + j) * self.extent(2) + k
    }

    /// Lock the data for reading. If a capture session is active on this
    /// thread, the access is recorded (read mode).
    pub fn read(&self) -> parking_lot::RwLockReadGuard<'_, Vec<T>> {
        capture::record_access(self, false);
        self.inner.storage.data.read()
    }

    /// Lock the data for writing. If a capture session is active on this
    /// thread, the access is recorded (write mode).
    pub fn write(&self) -> parking_lot::RwLockWriteGuard<'_, Vec<T>> {
        capture::record_access(self, true);
        self.inner
            .storage
            .generation
            .store(fresh_gen(), Ordering::Relaxed);
        self.inner.storage.data.write()
    }

    /// Read access that bypasses capture recording (used by checkpoint
    /// internals so snapshotting does not record itself).
    pub fn read_uncaptured(&self) -> parking_lot::RwLockReadGuard<'_, Vec<T>> {
        self.inner.storage.data.read()
    }

    /// Write access that bypasses capture recording (still re-stamps the
    /// generation — `restore_bytes` and `fill` mutate the allocation, so a
    /// checkpoint after a rollback must treat the region as dirty).
    pub fn write_uncaptured(&self) -> parking_lot::RwLockWriteGuard<'_, Vec<T>> {
        self.inner
            .storage
            .generation
            .store(fresh_gen(), Ordering::Relaxed);
        self.inner.storage.data.write()
    }

    /// Current dirty-tracking stamp of the allocation (shared by every
    /// view object over it). Equal stamps across two checkpoints mean no
    /// write path touched the data in between; see [`fresh_gen`]'s
    /// uniqueness note for why equality is sufficient.
    pub fn generation(&self) -> u64 {
        self.inner.storage.generation.load(Ordering::Relaxed)
    }

    /// Serialize the current contents (no capture recording).
    pub fn snapshot_bytes(&self) -> Bytes {
        pod::to_bytes(&self.read_uncaptured())
    }

    /// Overwrite contents from serialized bytes (no capture recording).
    /// Panics if the payload size does not match the allocation.
    pub fn restore_bytes(&self, data: &[u8]) {
        let mut guard = self.write_uncaptured();
        pod::copy_from_bytes(&mut guard, data);
    }

    /// Fill with a value.
    pub fn fill(&self, value: T) {
        for x in self.write_uncaptured().iter_mut() {
            *x = value;
        }
    }
}

impl<T: Pod> std::fmt::Debug for View<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("View")
            .field("label", &self.label())
            .field("extents", &self.inner.meta.extents)
            .field("view_id", &self.view_id())
            .field("alloc_id", &self.alloc_id())
            .finish()
    }
}

/// Copy `src`'s contents into `dst` (Kokkos `deep_copy`). Panics if lengths
/// differ.
pub fn deep_copy<T: Pod>(dst: &View<T>, src: &View<T>) {
    if dst.alloc_id() == src.alloc_id() {
        return; // same allocation: nothing to do
    }
    let s = src.read();
    let mut d = dst.write();
    assert_eq!(d.len(), s.len(), "deep_copy length mismatch");
    d.copy_from_slice(&s);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_views_are_zeroed() {
        let v: View<f64> = View::new_2d("t", 3, 4);
        assert_eq!(v.len(), 12);
        assert!(v.read().iter().all(|&x| x == 0.0));
        assert_eq!(v.extent(0), 3);
        assert_eq!(v.extent(1), 4);
        assert_eq!(v.byte_len(), 12 * 8);
    }

    #[test]
    fn clone_is_same_view_object() {
        let v: View<u32> = View::new_1d("a", 4);
        let c = v.clone();
        assert_eq!(v.view_id(), c.view_id());
        assert_eq!(v.alloc_id(), c.alloc_id());
        c.write()[0] = 9;
        assert_eq!(v.read()[0], 9);
    }

    #[test]
    fn duplicate_handle_shares_data_not_identity() {
        let v: View<u32> = View::new_1d("orig", 4);
        let d = v.duplicate_handle("copy");
        assert_ne!(v.view_id(), d.view_id());
        assert_eq!(v.alloc_id(), d.alloc_id());
        d.write()[2] = 5;
        assert_eq!(v.read()[2], 5);
    }

    #[test]
    fn idx2_row_major() {
        let v: View<f64> = View::new_2d("g", 2, 3);
        assert_eq!(v.idx2(0, 0), 0);
        assert_eq!(v.idx2(0, 2), 2);
        assert_eq!(v.idx2(1, 0), 3);
        assert_eq!(v.idx2(1, 2), 5);
    }

    #[test]
    fn idx3_layout() {
        let v: View<f64> = View::new_3d("c", 2, 3, 4);
        assert_eq!(v.idx3(0, 0, 0), 0);
        assert_eq!(v.idx3(0, 0, 3), 3);
        assert_eq!(v.idx3(0, 1, 0), 4);
        assert_eq!(v.idx3(1, 0, 0), 12);
        assert_eq!(v.idx3(1, 2, 3), 23);
    }

    #[test]
    fn snapshot_restore_roundtrip() {
        let v: View<f64> = View::new_1d("x", 5);
        {
            let mut w = v.write();
            for (i, x) in w.iter_mut().enumerate() {
                *x = i as f64 * 1.5;
            }
        }
        let snap = v.snapshot_bytes();
        v.fill(0.0);
        assert!(v.read().iter().all(|&x| x == 0.0));
        v.restore_bytes(&snap);
        for (i, &x) in v.read().iter().enumerate() {
            assert_eq!(x, i as f64 * 1.5);
        }
    }

    #[test]
    fn deep_copy_copies() {
        let a: View<u64> = View::from_vec("a", vec![1, 2, 3]);
        let b: View<u64> = View::new_1d("b", 3);
        deep_copy(&b, &a);
        assert_eq!(*b.read(), vec![1, 2, 3]);
    }

    #[test]
    fn deep_copy_same_alloc_is_noop() {
        let a: View<u64> = View::from_vec("a", vec![1, 2, 3]);
        let d = a.duplicate_handle("dup");
        deep_copy(&d, &a); // must not deadlock or panic
        assert_eq!(*a.read(), vec![1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn deep_copy_length_mismatch_panics() {
        let a: View<u64> = View::new_1d("a", 3);
        let b: View<u64> = View::new_1d("b", 4);
        deep_copy(&b, &a);
    }

    #[test]
    fn generation_moves_only_on_writes() {
        let v: View<u64> = View::new_1d("g", 4);
        let g0 = v.generation();
        let _ = v.read();
        let _ = v.read_uncaptured();
        let _ = v.snapshot_bytes();
        assert_eq!(v.generation(), g0, "reads must not dirty the view");
        v.write()[0] = 1;
        let g1 = v.generation();
        assert_ne!(g1, g0);
        v.fill(0);
        let g2 = v.generation();
        assert_ne!(g2, g1, "uncaptured writes must also re-stamp");
        v.restore_bytes(&v.snapshot_bytes());
        assert_ne!(v.generation(), g2, "restore must dirty the view");
    }

    #[test]
    fn generation_is_per_allocation() {
        let a: View<u64> = View::new_1d("a", 4);
        let dup = a.duplicate_handle("dup");
        let other: View<u64> = View::new_1d("other", 4);
        assert_eq!(a.generation(), dup.generation());
        assert_ne!(a.generation(), other.generation());
        dup.write()[0] = 7;
        assert_eq!(
            a.generation(),
            dup.generation(),
            "duplicate handles share the allocation stamp"
        );
    }

    #[test]
    fn from_vec_preserves_contents() {
        let v = View::from_vec("v", vec![9u8, 8, 7]);
        assert_eq!(*v.read(), vec![9, 8, 7]);
        assert_eq!(v.meta().rank, 1);
    }
}
