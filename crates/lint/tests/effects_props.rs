//! Property tests for the effect-inference layer (ISSUE satellite): the
//! SCC condensation and the bottom-up fixpoint are the foundation every
//! effect rule stands on, so they are checked against generated call
//! graphs — including cycles, self-loops, and duplicate edges — and
//! against splice-generated garbage that must never panic.
//!
//! Properties:
//! * the condensation is a partition of the graph's nodes, and every
//!   cross-SCC edge points from a later component to an earlier one
//!   (callees-first order — i.e. the condensation is acyclic);
//! * the computed summaries are a fixpoint (`summary ⊇ local` and
//!   `summary ⊇ summary(callee)` for every edge) and agree exactly with
//!   a naive worklist oracle, so the single SCC-ordered pass reaches the
//!   *least* fixpoint;
//! * summaries do not depend on file order;
//! * the whole engine survives pseudo-Rust splice noise.

use std::collections::{HashMap, HashSet};

use lint::callgraph::{CallGraph, FnId, GraphOpts, Workspace};
use lint::effects::{condense, EffectAnalysis, EffectSet};
use lint::parser::ParsedFile;
use proptest::prelude::*;

/// Effectful statements the generator plants in function bodies. The
/// oracle reads `EffectAnalysis::local` rather than re-deriving the
/// classification — propagation, not classification, is under test here.
const EFFECT_STMTS: &[&str] = &[
    "",
    "std::thread::sleep(std::time::Duration::from_millis(1));",
    "let t0 = std::time::Instant::now();",
    "std::thread::spawn(work);",
    "std::thread::park();",
    "panic!(\"boom\");",
];

/// Pseudo-Rust fragments for the splice fuzzer, biased toward the
/// constructs the effect engine inspects: intrinsics, zero-arg method
/// sites, sanction pragmas (well- and ill-formed), and delimiter noise.
const FRAGMENTS: &[&str] = &[
    "fn",
    "pub",
    "impl",
    "mod",
    "name",
    "Type",
    "self",
    "let",
    "match",
    "loop",
    "std::thread::sleep(d)",
    "Instant::now()",
    "x.recv()",
    "h.join()",
    "v.join(\", \")",
    "cv.wait_for(g, t)",
    "panic!(\"b\")",
    "f0()",
    "let m = std::collections::HashMap::new();",
    "m.iter()",
    "// lint: sanction(blocks): ok\n",
    "// lint: sanction(bogus): broken\n",
    "// lint: sanction(wall-clock):\n",
    "{",
    "}",
    "(",
    ")",
    ";",
    ".",
    "::",
    "=>",
    "#[cfg(test)]",
];

/// One generated function: `(effect statement index, callee indices)`.
type GenFn = (usize, Vec<usize>);

/// Render the generated program as one or two source files (the split
/// exercises cross-file resolution) and parse it into a workspace.
fn build_ws(prog: &[GenFn], split: bool, reverse: bool) -> Workspace {
    let n = prog.len();
    let render = |range: std::ops::Range<usize>| {
        let mut src = String::new();
        for i in range {
            let (effect, calls) = &prog[i];
            src.push_str(&format!("pub fn f{i}() {{\n"));
            src.push_str("    ");
            src.push_str(EFFECT_STMTS[*effect]);
            src.push('\n');
            for c in calls {
                // Out-of-range callees become unresolved calls on purpose.
                src.push_str(&format!("    f{c}();\n"));
            }
            src.push_str("}\n");
        }
        src
    };
    let mid = if split { n / 2 } else { n };
    let mut files = vec![ParsedFile::parse(
        "crates/fenix/src/a.rs",
        "fenix",
        &render(0..mid),
        false,
    )];
    if mid < n {
        files.push(ParsedFile::parse(
            "crates/fenix/src/b.rs",
            "fenix",
            &render(mid..n),
            false,
        ));
    }
    if reverse {
        files.reverse();
    }
    Workspace { root: None, files }
}

fn eq(a: EffectSet, b: EffectSet) -> bool {
    a.contains(b) && b.contains(a)
}

/// Naive worklist fixpoint over the same graph and local sets: iterate
/// `summary[u] ∪= summary[v]` for every edge until nothing changes.
fn oracle(graph: &CallGraph, local: &HashMap<FnId, EffectSet>) -> HashMap<FnId, EffectSet> {
    let mut sum = local.clone();
    for (u, vs) in &graph.edges {
        sum.entry(*u).or_insert(EffectSet::EMPTY);
        for v in vs {
            sum.entry(*v).or_insert(EffectSet::EMPTY);
        }
    }
    loop {
        let mut changed = false;
        let keys: Vec<FnId> = sum.keys().copied().collect();
        for u in keys {
            let mut s = sum[&u];
            for v in graph.edges.get(&u).into_iter().flatten() {
                s = s.union(sum[v]);
            }
            if !eq(s, sum[&u]) {
                sum.insert(u, s);
                changed = true;
            }
        }
        if !changed {
            return sum;
        }
    }
}

/// Partition + acyclicity of the condensation for an arbitrary graph.
fn assert_condensation_sound(graph: &CallGraph) {
    let cond = condense(graph);
    let mut seen: HashSet<FnId> = HashSet::new();
    for (ci, scc) in cond.sccs.iter().enumerate() {
        assert!(!scc.is_empty(), "empty SCC at {ci}");
        for id in scc {
            assert!(seen.insert(*id), "node {id:?} appears in two SCCs");
            assert_eq!(cond.comp_of[id], ci, "comp_of disagrees with sccs");
        }
    }
    let mut nodes: HashSet<FnId> = graph.edges.keys().copied().collect();
    for vs in graph.edges.values() {
        nodes.extend(vs.iter().copied());
    }
    assert_eq!(seen, nodes, "condensation must cover exactly the nodes");
    for (u, vs) in &graph.edges {
        for v in vs {
            let (cu, cv) = (cond.comp_of[u], cond.comp_of[v]);
            assert!(
                cu == cv || cv < cu,
                "cross-SCC edge {u:?}->{v:?} must point callees-first ({cu} -> {cv})"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn condensation_partitions_and_is_acyclic(
        prog in proptest::collection::vec(
            (0usize..EFFECT_STMTS.len(), proptest::collection::vec(0usize..12, 0..4)),
            1..12,
        ),
        split in any::<bool>(),
    ) {
        let ws = build_ws(&prog, split, false);
        let fx = EffectAnalysis::run(&ws, GraphOpts::default());
        assert_condensation_sound(&fx.graph);
    }

    #[test]
    fn fixpoint_is_sound_and_least(
        prog in proptest::collection::vec(
            (0usize..EFFECT_STMTS.len(), proptest::collection::vec(0usize..12, 0..4)),
            1..12,
        ),
        split in any::<bool>(),
    ) {
        let ws = build_ws(&prog, split, false);
        let fx = EffectAnalysis::run(&ws, GraphOpts::default());
        // Soundness: summary absorbs local and every callee summary.
        for (id, _) in ws.fns() {
            let s = fx.summaries[&id];
            prop_assert!(s.contains(fx.local[&id]), "summary must absorb local");
            for v in fx.graph.edges.get(&id).into_iter().flatten() {
                prop_assert!(
                    s.contains(fx.summaries[v]),
                    "summary must absorb callee {:?}", v
                );
            }
        }
        // Leastness: exact agreement with the naive worklist oracle.
        let want = oracle(&fx.graph, &fx.local);
        for (id, w) in &want {
            prop_assert!(
                eq(*w, fx.summaries[id]),
                "summary {:?} disagrees with oracle ({:?} vs {:?})",
                id, fx.summaries[id].names(), w.names()
            );
        }
    }

    #[test]
    fn summaries_do_not_depend_on_file_order(
        prog in proptest::collection::vec(
            (0usize..EFFECT_STMTS.len(), proptest::collection::vec(0usize..12, 0..4)),
            1..12,
        ),
    ) {
        let a = build_ws(&prog, true, false);
        let b = build_ws(&prog, true, true);
        let fa = EffectAnalysis::run(&a, GraphOpts::default());
        let fb = EffectAnalysis::run(&b, GraphOpts::default());
        let key = |ws: &Workspace, fx: &EffectAnalysis| -> HashMap<(String, String), Vec<&'static str>> {
            ws.fns()
                .map(|(id, f)| {
                    ((ws.file(id).rel.clone(), f.qual()), fx.summaries[&id].names())
                })
                .collect()
        };
        prop_assert_eq!(key(&a, &fa), key(&b, &fb));
    }

    #[test]
    fn engine_never_panics_on_splice_noise(
        picks in proptest::collection::vec((0usize..FRAGMENTS.len(), any::<bool>()), 0..40)
    ) {
        let mut src = String::new();
        for (i, spaced) in picks {
            src.push_str(FRAGMENTS[i]);
            if spaced {
                src.push(' ');
            }
        }
        let ws = Workspace {
            root: None,
            files: vec![ParsedFile::parse("crates/fenix/src/z.rs", "fenix", &src, false)],
        };
        let fx = EffectAnalysis::run(&ws, GraphOpts::default());
        assert_condensation_sound(&fx.graph);
        let _ = fx.inventory(&ws, GraphOpts::default());
    }
}
