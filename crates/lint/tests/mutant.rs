//! Negative control for the analyzer, mirroring `modelcheck/tests/mutant.rs`:
//! the seeded `lint-mutants` violation in `crates/fenix/src/mutant.rs` must
//! be caught by `panic-reach` exactly when mutants are opted in — and must
//! stay invisible to the default scan, which is required to be clean.
//!
//! The violation is deliberately *transitive*: the entry point is clean and
//! only its helper panics, so a per-file text rule could never catch it.

use std::path::Path;

use lint::{analyze, load_workspace, GraphOpts};

fn repo_root() -> &'static Path {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("lint crate lives two levels below the workspace root")
}

#[test]
fn seeded_mutant_is_caught_only_with_opt_in() {
    let ws = load_workspace(repo_root()).expect("workspace sources readable");

    let without = analyze(
        &ws,
        GraphOpts {
            deep: false,
            include_mutants: false,
        },
    );
    assert!(
        !without.iter().any(|d| d.file.contains("mutant.rs")),
        "default scan must not see the gated mutant: {without:?}"
    );

    let with = analyze(
        &ws,
        GraphOpts {
            deep: false,
            include_mutants: true,
        },
    );
    let hit = with
        .iter()
        .find(|d| d.rule == "panic-reach" && d.file == "crates/fenix/src/mutant.rs")
        .expect("panic-reach must flag the seeded mutant transitively");
    assert!(
        hit.func.contains("rebuild_group"),
        "the finding must land on the helper holding the panic site, got {}",
        hit.func
    );
    assert!(hit.msg.contains("unwrap"));
}
