//! Negative control for the analyzer, mirroring `modelcheck/tests/mutant.rs`:
//! the seeded `lint-mutants` violation in `crates/fenix/src/mutant.rs` must
//! be caught by `panic-reach` exactly when mutants are opted in — and must
//! stay invisible to the default scan, which is required to be clean.
//!
//! The violation is deliberately *transitive*: the entry point is clean and
//! only its helper panics, so a per-file text rule could never catch it.

use std::path::Path;

use lint::{analyze, load_workspace, GraphOpts};

fn repo_root() -> &'static Path {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("lint crate lives two levels below the workspace root")
}

#[test]
fn seeded_mutant_is_caught_only_with_opt_in() {
    let ws = load_workspace(repo_root()).expect("workspace sources readable");

    let without = analyze(
        &ws,
        GraphOpts {
            deep: false,
            include_mutants: false,
        },
    );
    assert!(
        !without.iter().any(|d| d.file.contains("mutant.rs")),
        "default scan must not see the gated mutant: {without:?}"
    );

    let with = analyze(
        &ws,
        GraphOpts {
            deep: false,
            include_mutants: true,
        },
    );
    let hit = with
        .iter()
        .find(|d| d.rule == "panic-reach" && d.file == "crates/fenix/src/mutant.rs")
        .expect("panic-reach must flag the seeded mutant transitively");
    assert!(
        hit.func.contains("rebuild_group"),
        "the finding must land on the helper holding the panic site, got {}",
        hit.func
    );
    assert!(hit.msg.contains("unwrap"));

    // One seeded violation per protocol analysis, each caught only with
    // the opt-in (the `without` assertion above covers both mutant files).
    let typestate = with
        .iter()
        .find(|d| d.rule == "protocol-typestate" && d.file == "crates/fenix/src/mutant.rs")
        .expect("protocol-typestate must flag the undetected revoke");
    assert!(
        typestate.func.contains("revoke_without_detect"),
        "got {}",
        typestate.func
    );
    assert!(typestate.msg.contains("ulfm-recovery"), "{}", typestate.msg);

    let collective = with
        .iter()
        .find(|d| d.rule == "collective-match" && d.file == "crates/fenix/src/mutant.rs")
        .expect("collective-match must flag the root-only barrier");
    assert!(
        collective.func.contains("lopsided_barrier"),
        "got {}",
        collective.func
    );
    assert!(collective.msg.contains("barrier"), "{}", collective.msg);

    let order = with
        .iter()
        .find(|d| d.rule == "lock-order" && d.file == "crates/simmpi/src/mutant.rs")
        .expect("lock-order must flag the ABBA cycle");
    assert!(
        order.msg.contains("mu_alpha") && order.msg.contains("mu_beta"),
        "{}",
        order.msg
    );

    let blocking = with
        .iter()
        .find(|d| d.rule == "blocking-while-locked" && d.file == "crates/simmpi/src/mutant.rs")
        .expect("blocking-while-locked must flag the receive under mu_alpha");
    assert!(
        blocking.func.contains("recv_under_lock"),
        "got {}",
        blocking.func
    );
    assert!(blocking.msg.contains("recv_bytes"), "{}", blocking.msg);

    // The effect engine must trace the wall-clock sleep two helper hops
    // below the `Governor::transfer` rank entry point, witness chain and
    // all — and the `without` assertion above proves the gated mutant
    // stays invisible to the default scan.
    let effects = with
        .iter()
        .find(|d| d.rule == "rank-path-effects" && d.file == "crates/cluster/src/mutant.rs")
        .expect("rank-path-effects must flag the seeded wall-clock sleep");
    assert!(
        effects.func.contains("warmup_backoff"),
        "the finding must land on the helper holding the sleep, got {}",
        effects.func
    );
    assert!(
        effects.msg.contains("Governor::transfer")
            && effects.msg.contains("warmup_settle")
            && effects.msg.contains("warmup_backoff"),
        "the witness chain must walk entry -> helper -> site: {}",
        effects.msg
    );
}
