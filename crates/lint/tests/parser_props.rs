//! Property tests for the item/body parser (ISSUE satellite): the parser
//! is fed every workspace file on every scan, so it must never panic on
//! malformed input — truncated items, unbalanced delimiters, stray
//! attribute soup — and every span it reports (function bodies, call
//! sites, `let` initializers, panic sites) must stay inside the
//! significant-token stream, because downstream rules index `file.sig`
//! with them unchecked.

use lint::parser::ParsedFile;
use proptest::prelude::*;

/// Token-level fragments the generator splices into pseudo-Rust. The
/// pool is biased toward the constructs the parser actually tracks
/// (fns, impls, attributes, lets, calls, match) plus raw delimiter noise
/// so truncation and imbalance are common.
const FRAGMENTS: &[&str] = &[
    "fn",
    "pub",
    "impl",
    "mod",
    "trait",
    "struct",
    "name",
    "Type",
    "self",
    "let",
    "match",
    "if",
    "else",
    "for",
    "loop",
    "return",
    "#[cfg(test)]",
    "#[test]",
    "#[cfg(feature = \"lint-mutants\")]",
    "-> Result<(), E>",
    "x.unwrap()",
    "arr[i]",
    "panic!(\"boom\")",
    "a::b::c()",
    "obj.call(1, 2)",
    "let x = f()?;",
    "let _ = g();",
    "'a",
    "'x'",
    "\"str\"",
    "r#\"raw\"#",
    "// comment\n",
    "/* block */",
    "{",
    "}",
    "(",
    ")",
    "[",
    "]",
    "<",
    ">",
    ";",
    ",",
    ":",
    "::",
    "=",
    "=>",
    "?",
    ".",
    "&",
    "!",
];

/// Parse `src` and check every reported span indexes `sig` in bounds.
/// Panics (the property failure) if the parser itself panics or any span
/// escapes the token stream.
fn assert_spans_in_bounds(src: &str) {
    let file = ParsedFile::parse("crates/fenix/src/p.rs", "fenix", src, false);
    let n = file.sig.len();
    for f in &file.fns {
        assert!(f.line >= 1, "fn line must be 1-based in {src:?}");
        if let Some((s, e)) = f.body {
            assert!(s <= e && e < n, "body span {s}..={e} out of {n} in {src:?}");
        }
        for c in &f.calls {
            assert!(c.si < n, "call si {} out of {n} in {src:?}", c.si);
            assert!(!c.segs.is_empty(), "call with no segments in {src:?}");
            // The recorded index must actually name the first segment.
            assert_eq!(file.text(c.si), c.segs[0], "call si mislabeled in {src:?}");
        }
        for l in &f.lets {
            assert!(
                l.init.0 <= l.init.1 && l.init.1 <= n,
                "let init {:?} out of {n} in {src:?}",
                l.init
            );
            assert!(
                l.stmt_end <= n,
                "stmt_end {} out of {n} in {src:?}",
                l.stmt_end
            );
        }
        for p in &f.panics {
            assert!(p.si < n, "panic si {} out of {n} in {src:?}", p.si);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Random fragment splices — mostly ill-formed programs — never panic
    /// the parser, and every span stays in bounds.
    #[test]
    fn spliced_fragments_parse_with_spans_in_bounds(
        picks in proptest::collection::vec((0usize..FRAGMENTS.len(), any::<bool>()), 0..48)
    ) {
        let mut src = String::new();
        for (i, spaced) in picks {
            src.push_str(FRAGMENTS[i]);
            if spaced {
                src.push(' ');
            }
        }
        assert_spans_in_bounds(&src);
    }

    /// Arbitrary ASCII noise is likewise safe.
    #[test]
    fn ascii_noise_is_safe(bytes in proptest::collection::vec(0x20u8..0x7f, 0..96)) {
        let src = String::from_utf8(bytes).unwrap();
        assert_spans_in_bounds(&src);
    }

    /// Well-formed programs truncated at an arbitrary byte — the common
    /// shape of a half-saved editor buffer — parse without panicking.
    #[test]
    fn truncated_programs_are_safe(cut in 0usize..400) {
        let src = "#[cfg(test)]\nmod t {\n    fn helper(x: &[u8]) -> Result<u8, E> {\n        \
                   let v = x.first().copied().ok_or(E::Empty)?;\n        Ok(v)\n    }\n}\n\
                   impl Store {\n    pub fn put(&self, k: u64) {\n        \
                   let mut g = self.inner.lock();\n        g.insert(k, k);\n        \
                   match k {\n            0 => panic!(\"zero\"),\n            _ => {}\n        }\n    }\n}\n";
        let cut = cut.min(src.len());
        if src.is_char_boundary(cut) {
            assert_spans_in_bounds(&src[..cut]);
        }
    }
}
