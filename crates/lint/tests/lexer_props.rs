//! Property tests for the lossless lexer (ISSUE satellite): for arbitrary
//! compositions of the trickiest constructs — raw strings with hash
//! guards, nested block comments, lifetimes vs. char literals, shebang
//! lines — every byte of the source lands in exactly one token, so the
//! token stream concatenates back to the source without loss. That
//! property is what lets every downstream rule report exact `file:line`
//! spans and lets `Lexed::text` slice the original text safely.

use lint::lexer::lex;
use proptest::prelude::*;

/// Self-contained lexemes the generator splices together. Concatenation
/// may merge neighbours into different tokens (e.g. a trailing `'` meeting
/// an ident) — the round-trip property must hold regardless.
const SNIPPETS: &[&str] = &[
    "ident",
    "r#match",
    "'a",
    "'static",
    "'a'",
    "'\\n'",
    "'\\''",
    "\"str \\\" esc\"",
    "r\"raw\"",
    "r#\"quote \" inside\"#",
    "r##\"hash# \"# guard\"##",
    "b\"bytes\"",
    "br#\"raw bytes\"#",
    "// line comment\n",
    "/* block */",
    "/* nested /* deeper /* third */ */ still */",
    "123",
    "1_000u64",
    "0xff",
    "1.5e3",
    "7.clone()",
    "::",
    "->",
    "=>",
    "..=",
    "{",
    "}",
    "(",
    ")",
    "[",
    "]",
    ";",
    ",",
    "#",
    "!",
    "&&",
    "\n",
    "    ",
];

/// Assert the token list tiles `src` exactly: contiguous, in order,
/// covering every byte, with nondecreasing line numbers.
fn assert_lossless(src: &str) {
    let toks = lex(src);
    let mut pos = 0usize;
    let mut line = 1u32;
    let mut rebuilt = String::new();
    for t in &toks {
        assert_eq!(t.start, pos, "gap or overlap at byte {pos} in {src:?}");
        assert!(t.end > t.start, "empty token at byte {pos} in {src:?}");
        assert!(t.line >= line, "line went backwards in {src:?}");
        line = t.line;
        rebuilt.push_str(&src[t.start..t.end]);
        pos = t.end;
    }
    assert_eq!(pos, src.len(), "trailing bytes uncovered in {src:?}");
    assert_eq!(rebuilt, src);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Random splices from the snippet pool, with and without separating
    /// space, round-trip without loss.
    #[test]
    fn spliced_snippets_roundtrip(picks in proptest::collection::vec((0usize..SNIPPETS.len(), any::<bool>()), 0..24)) {
        let mut src = String::new();
        for (i, spaced) in picks {
            src.push_str(SNIPPETS[i]);
            if spaced {
                src.push(' ');
            }
        }
        assert_lossless(&src);
    }

    /// Arbitrary ASCII noise — including unterminated quotes and stray
    /// hashes — must never panic the lexer or lose bytes.
    #[test]
    fn ascii_noise_roundtrips(bytes in proptest::collection::vec(0x20u8..0x7f, 0..64)) {
        let src = String::from_utf8(bytes).unwrap();
        assert_lossless(&src);
    }
}

#[test]
fn named_tricky_cases_roundtrip() {
    for src in [
        "#!/usr/bin/env run\nfn main() {}",
        "#![allow(dead_code)]\nfn f<'a>(x: &'a str) -> char { 'a' }",
        "let s = r#\"a \"quoted\" part\"#; /* t /* u */ v */ let c = '\\\\';",
        "// unterminated /* in a line comment\nlet x = 1;",
        "r\"", // unterminated raw string: consumed to EOF, not panicked on
        "'",
        "\"",
    ] {
        assert_lossless(src);
    }
}
