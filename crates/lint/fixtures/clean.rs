//! Clean fixture for `cargo run -p lint -- --self-check`: near-misses of
//! every rule that must NOT be flagged. A false positive here fails the
//! self-check. This file is never compiled or scanned by the normal walk.

/// # Safety
/// `p` must point to a valid, initialized byte.
pub unsafe fn deref(p: *const u8) -> u8 {
    // SAFETY: contract forwarded to the caller per the doc above.
    unsafe { *p }
}

// Relaxed on a plain statistics counter is fine.
pub fn counter(hits: &std::sync::atomic::AtomicU64) {
    hits.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
}

// Word boundary: `stop_requested` is not the sync-critical name `stop`.
pub fn stop_requested(flag: &std::sync::atomic::AtomicBool) -> bool {
    flag.load(std::sync::atomic::Ordering::Relaxed)
}

// Handling the handoff error instead of panicking.
pub fn degrade(tx: &std::sync::mpsc::Sender<u32>) {
    if tx.send(1).is_err() {
        // peer gone: fall back synchronously
    }
}

// A path join is not a thread join.
pub fn artifact(dir: &std::path::Path) -> String {
    dir.join("ck").to_string_lossy().into_owned()
}

// Spawning through the loom shim, joining without panicking.
pub fn spawn_checked() {
    let h = loom::thread::spawn(|| ());
    let _ = h.join();
}

// Structured scoped threads are allowed even in model-checked crates.
pub fn scoped() {
    std::thread::scope(|s| {
        s.spawn(|| ());
    });
}
