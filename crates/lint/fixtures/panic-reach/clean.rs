//! CLEAN: the repair path is panic-free — missing state becomes a typed
//! error that flows back through the resilience layers, where the run
//! loop decides whether to retry the repair or abort collectively.

pub fn apply_repair(state: Option<u32>) -> Result<u32, RepairError> {
    rebuild(state)
}

fn rebuild(state: Option<u32>) -> Result<u32, RepairError> {
    state.ok_or(RepairError::MissingState)
}
