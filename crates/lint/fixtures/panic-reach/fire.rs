//! FIRE: `apply_repair` is a recovery entry point; the helper it calls
//! unwraps an `Option`. A panic on the repair path kills the rank that
//! was supposed to be recovering — the fault becomes unsurvivable.

pub fn apply_repair(state: Option<u32>) -> u32 {
    rebuild(state)
}

fn rebuild(state: Option<u32>) -> u32 {
    // Transitively reachable from the entry point.
    state.unwrap()
}
