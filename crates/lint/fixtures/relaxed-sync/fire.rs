//! FIRE: `Ordering::Relaxed` on the sequence word of a seqlock. The
//! `seq` atomic *is* the synchronization protocol — Relaxed here lets a
//! reader observe torn data with a stable sequence number.

use std::sync::atomic::{AtomicU64, Ordering};

pub struct SeqLock {
    seq: AtomicU64,
}

impl SeqLock {
    pub fn publish(&self) {
        self.seq.fetch_add(1, Ordering::Relaxed);
    }
}
