//! CLEAN: the synchronization-carrying atomic uses Release; Relaxed is
//! reserved for a statistics counter that orders nothing.

use std::sync::atomic::{AtomicU64, Ordering};

pub struct SeqLock {
    seq: AtomicU64,
    hits: AtomicU64,
}

impl SeqLock {
    pub fn publish(&self) {
        self.seq.fetch_add(1, Ordering::Release);
    }

    pub fn count_hit(&self) {
        // A plain counter: no acquire/release pairing depends on it.
        self.hits.fetch_add(1, Ordering::Relaxed);
    }
}
