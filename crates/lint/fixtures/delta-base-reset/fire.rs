//! FIRE: the protection table is torn down on body re-entry, but the
//! delta-chain state survives — the next checkpoint may be emitted as a
//! delta against a base version this recovered rank no longer holds.

pub fn reenter_body(client: &Client, views: &[View]) {
    client.clear_protected();
    for (i, v) in views.iter().enumerate() {
        client.protect(i as u32, v.region());
    }
    run_loop(client);
}

fn run_loop(client: &Client) {
    let mut step = 0u64;
    while step < 4 {
        compute(client, step);
        let committed = client.checkpoint("loop", step);
        consume(committed);
        step += 1;
    }
}

fn compute(_client: &Client, _step: u64) {}

fn consume(_r: Result<(), ()>) {}
