//! CLEAN: tearing down the protection table on body re-entry also voids
//! the delta-chain state (directly here; the real integration layer gets
//! it transitively through `Context::reset` → backend `clear`), so the
//! first checkpoint after recovery is a full frame.

pub fn reenter_body(client: &Client, views: &[View]) {
    client.clear_protected();
    client.invalidate_deltas();
    for (i, v) in views.iter().enumerate() {
        client.protect(i as u32, v.region());
    }
    run_loop(client);
}

fn run_loop(client: &Client) {
    let mut step = 0u64;
    while step < 4 {
        compute(client, step);
        let committed = client.checkpoint("loop", step);
        consume(committed);
        step += 1;
    }
}

fn compute(_client: &Client, _step: u64) {}

fn consume(_r: Result<(), ()>) {}
