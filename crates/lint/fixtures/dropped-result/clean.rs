//! CLEAN: every `Result` produced on the commit path is either propagated
//! with `?` or explicitly inspected — a failed checkpoint is someone's
//! decision, never a silent default.

pub struct Client;

impl Client {
    pub fn checkpoint(&self, _name: &str, _version: u64) -> Result<(), CkError> {
        Ok(())
    }
}

pub fn commit(client: &Client, version: u64) -> Result<(), CkError> {
    // Propagated: the caller decides what a failed commit means.
    client.protect(version, 1);
    client.checkpoint("loop", version)?;
    Ok(())
}

pub fn commit_logged(client: &Client, version: u64) {
    // Inspected: a failure is at least recorded.
    client.protect(version, 1);
    if client.checkpoint("loop", version).is_err() {
        log_failure(version);
    }
}

fn log_failure(_version: u64) {}
