//! FIRE: the checkpoint's `Result` is bound to `_` and dropped. An `Err`
//! here means the commit never landed, but the loop sails on believing it
//! has a restart point — silent data loss at the next failure.

pub struct Client;

impl Client {
    pub fn checkpoint(&self, _name: &str, _version: u64) -> Result<(), CkError> {
        Ok(())
    }
}

pub fn commit(client: &Client, version: u64) {
    // Swallowed failure: nothing observes an Err.
    let _ = client.checkpoint("loop", version);
}
