//! Fire: a blocking worker join appears on the rank path with no
//! sanction pragma and no entry in the committed effects inventory —
//! `effect-drift` must fail the scan until the site is fixed or
//! sanctioned. (`rank-path-effects` stays quiet: plain blocking is
//! allowed on the rank path, but it must be *inventoried*.)

pub struct Router {
    worker: Option<std::thread::JoinHandle<u64>>,
}

impl Router {
    pub fn recv(&mut self) -> u64 {
        self.drain_worker()
    }

    fn drain_worker(&mut self) -> u64 {
        match self.worker.take() {
            Some(handle) => handle.join().unwrap_or(0),
            None => 0,
        }
    }
}
