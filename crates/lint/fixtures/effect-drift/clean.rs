//! Clean: the same worker join, sanctioned with a justification — the
//! site still appears in the effects inventory (flagged sanctioned) but
//! no longer drifts.

pub struct Router {
    worker: Option<std::thread::JoinHandle<u64>>,
}

impl Router {
    pub fn recv(&mut self) -> u64 {
        self.drain_worker()
    }

    fn drain_worker(&mut self) -> u64 {
        match self.worker.take() {
            // lint: sanction(blocks): teardown join of the flush worker;
            // the DES scheduler parks the rank task instead. audited 2026-08.
            Some(handle) => handle.join().unwrap_or(0),
            None => 0,
        }
    }
}
