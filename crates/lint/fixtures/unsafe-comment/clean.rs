//! CLEAN: the same transmute, but the invariant that makes it sound is
//! written down where the reviewer (and this lint) can see it.

pub fn read_peer_state(buf: &[u8]) -> u64 {
    let mut out = [0u8; 8];
    out.copy_from_slice(&buf[..8]);
    // SAFETY: `out` is an 8-byte POD copy; every bit pattern is a valid
    // u64, and the transmute neither extends lifetimes nor aliases.
    unsafe { core::mem::transmute(out) }
}
