//! FIRE: an `unsafe` block with no justification comment anywhere in the
//! ten preceding lines — the written rationale is the price of admission.

pub fn read_peer_state(buf: &[u8]) -> u64 {
    let mut out = [0u8; 8];
    out.copy_from_slice(&buf[..8]);
    unsafe { core::mem::transmute(out) }
}
