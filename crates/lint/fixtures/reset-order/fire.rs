//! FIRE: the agreed checkpoint version is read *before*
//! `reset(new_comm)` clears the metadata cache — the rank resumes from a
//! version the repaired communicator may no longer agree on.

pub fn recover(kr: &mut Context, comm: &Comm) -> Result<(), ()> {
    // Stale read: this consults the pre-failure cache.
    let stale = kr.latest_version("loop")?;
    kr.reset(comm.clone());
    resume(stale)
}

fn resume(_version: Option<u64>) -> Result<(), ()> {
    Ok(())
}
