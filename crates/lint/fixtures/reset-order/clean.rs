//! CLEAN: `reset(new_comm)` clears the checkpoint-metadata cache first;
//! only then is the latest agreed version re-derived over the repaired
//! communicator (the paper's reset contract, Fig. 4).

pub fn recover(kr: &mut Context, comm: &Comm) -> Result<(), ()> {
    kr.reset(comm.clone());
    // Fresh read: re-agreed over the repaired communicator.
    let latest = kr.latest_version("loop")?;
    resume(latest)
}

fn resume(_version: Option<u64>) -> Result<(), ()> {
    Ok(())
}
