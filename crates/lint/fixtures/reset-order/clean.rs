//! CLEAN: `reset(new_comm)` clears the checkpoint-metadata cache first;
//! only then is the latest agreed version re-derived over the repaired
//! communicator (the paper's reset contract, Fig. 4). The reset itself
//! also voids the remembered incremental-checkpoint base, so the first
//! commit after recovery is a full frame.

pub fn recover(kr: &mut Context, comm: &Comm) -> Result<(), ()> {
    kr.reset(comm.clone());
    // Fresh read: re-agreed over the repaired communicator.
    let latest = kr.latest_version("loop")?;
    resume(latest)
}

fn resume(_version: Option<u64>) -> Result<(), ()> {
    Ok(())
}

pub struct Context;

impl Context {
    /// The reset contract: dropping cached metadata includes dropping any
    /// delta-chain base the rank remembered from before the failure.
    pub fn reset(&mut self, _comm: Comm) {
        self.invalidate_deltas();
    }

    fn invalidate_deltas(&mut self) {}
}
