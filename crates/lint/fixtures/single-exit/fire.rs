//! FIRE: a helper transitively reachable from the `fenix::run` loop
//! terminates the process. Recovery must return through the single exit
//! point (the run loop), never bypass rank-state agreement with an exit.

pub fn resilient_main() -> Result<(), ()> {
    fenix::run(world(), cfg(), |_fx, _comm, _role| body())?;
    Ok(())
}

fn body() -> Result<(), ()> {
    step()
}

fn step() -> Result<(), ()> {
    if failed() {
        // Secondary exit: the other ranks never learn this rank is gone.
        std::process::exit(3);
    }
    Ok(())
}

fn failed() -> bool {
    false
}

fn world() -> World {
    World
}

fn cfg() -> Config {
    Config
}
