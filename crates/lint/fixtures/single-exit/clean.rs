//! CLEAN: every failure inside the loop body flows back as an `Err` and
//! leaves through the `fenix::run` return. The process-level exit lives in
//! `main`, *after* the loop has returned — the root of the resilient
//! region is exempt by design.

pub fn resilient_main() -> Result<(), ()> {
    let summary = fenix::run(world(), cfg(), |_fx, _comm, _role| body())?;
    report(summary);
    Ok(())
}

pub fn main() {
    if resilient_main().is_err() {
        // Exiting after the resilient region has completed is fine.
        std::process::exit(1);
    }
}

fn body() -> Result<(), ()> {
    step()
}

fn step() -> Result<(), ()> {
    if failed() {
        return Err(());
    }
    Ok(())
}

fn failed() -> bool {
    false
}

fn report(_summary: Summary) {}

fn world() -> World {
    World
}

fn cfg() -> Config {
    Config
}
