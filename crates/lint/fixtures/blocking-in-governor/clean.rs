//! Clean: the same governor drains its credit channel nonblockingly —
//! reservation stays pure math over whatever credits have arrived.

pub struct Governor {
    credits: std::sync::mpsc::Receiver<u64>,
    rate: f64,
}

impl Governor {
    pub fn reserve(&self, bytes: usize) -> u64 {
        let credit = self.drain_credit();
        (bytes as f64 / self.rate) as u64 + credit
    }

    fn drain_credit(&self) -> u64 {
        let mut total = 0;
        while let Ok(v) = self.credits.try_recv() {
            total += v;
        }
        total
    }
}
