//! Fire: a bandwidth governor whose reservation math drains a credit
//! channel with a *blocking* receive behind a helper. Reservation runs
//! under the governor lock on every transfer — it must compute, never
//! park the thread.

pub struct Governor {
    credits: std::sync::mpsc::Receiver<u64>,
    rate: f64,
}

impl Governor {
    pub fn reserve(&self, bytes: usize) -> u64 {
        let credit = self.drain_credit();
        (bytes as f64 / self.rate) as u64 + credit
    }

    fn drain_credit(&self) -> u64 {
        match self.credits.recv() {
            Ok(v) => v,
            Err(_) => 0,
        }
    }
}
