//! Fires `lock-order`: two functions acquire the same two mutexes in
//! opposite orders — the classic AB/BA deadlock. One report per edge in
//! the cycle. Analyzed under the simmpi crate scope.

pub struct Router {
    routes: Mutex<u64>,
    peers: Mutex<u64>,
}

impl Router {
    /// Acquires routes, then peers.
    pub fn forward(&self) {
        let r = self.routes.lock();
        let p = self.peers.lock();
        *r += *p;
    }

    /// Acquires peers, then routes: reversed — two threads running
    /// `forward` and `reverse` concurrently can each hold one lock and
    /// wait forever for the other.
    pub fn reverse(&self) {
        let p = self.peers.lock();
        let r = self.routes.lock();
        *p += *r;
    }
}
