//! Clean twin for `lock-order`: both functions acquire the two mutexes
//! in the same global order (routes before peers), so the acquisition
//! graph has an edge but no cycle. Must produce no findings from any
//! rule.

pub struct Router {
    routes: Mutex<u64>,
    peers: Mutex<u64>,
}

impl Router {
    pub fn forward(&self) {
        let r = self.routes.lock();
        let p = self.peers.lock();
        *r += *p;
    }

    pub fn audit(&self) {
        let r = self.routes.lock();
        let p = self.peers.lock();
        *p += *r;
    }
}
