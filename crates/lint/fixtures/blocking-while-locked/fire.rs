//! Fires `blocking-while-locked`: a blocking receive executed while the
//! mailbox lock is held. The sender that would satisfy the receive needs
//! the same lock to enqueue, so the rank stalls itself. Analyzed under
//! the simmpi crate scope.

pub struct Mailbox {
    queue: Mutex<Vec<u8>>,
}

impl Mailbox {
    /// Holds the queue lock across `recv`: the peer delivering the reply
    /// must take `queue` to enqueue it — self-deadlock.
    pub fn deliver(&self, peer: &Endpoint) {
        let q = self.queue.lock();
        let msg = peer.recv();
        q.push(msg);
    }
}
