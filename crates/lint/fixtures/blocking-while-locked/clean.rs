//! Clean twin for `blocking-while-locked`: the guard is released —
//! explicitly via `drop`, or by an inner scope — before any blocking
//! call. Must produce no findings from any rule.

pub struct Mailbox {
    queue: Mutex<Vec<u8>>,
}

impl Mailbox {
    /// Explicit `drop(guard)` ends the held extent before the receive.
    pub fn deliver(&self, peer: &Endpoint) {
        let q = self.queue.lock();
        let backlog = q.len();
        drop(q);
        let msg = peer.recv();
        self.store(backlog, msg);
    }

    /// An inner scope bounds the guard; the receive happens outside it.
    pub fn drain(&self, peer: &Endpoint) {
        {
            let q = self.queue.lock();
            q.clear();
        }
        let msg = peer.recv();
        self.store(0, msg);
    }

    fn store(&self, _backlog: usize, _msg: u8) {}
}
