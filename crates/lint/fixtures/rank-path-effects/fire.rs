//! Fire: a mailbox receive loop whose poll backoff reads the wall clock
//! two calls deep — exactly the hidden dependency the DES refactor must
//! eliminate before virtual time can replace real time.

pub struct Router {
    last_wait_ns: u64,
}

impl Router {
    pub fn recv(&mut self) -> u64 {
        let waited = self.poll_backoff();
        self.last_wait_ns = waited;
        waited
    }

    fn poll_backoff(&self) -> u64 {
        let t0 = std::time::Instant::now();
        spin_once();
        t0.elapsed().as_nanos() as u64
    }
}

fn spin_once() {}
