//! Clean: the same mailbox loop timed against a governor-owned virtual
//! clock. The single remaining wall-clock read sits at the clock seam and
//! carries a sanction pragma — the rule stays quiet and the site shows up
//! in the effects inventory as sanctioned.

pub struct Router {
    virtual_ns: u64,
}

impl Router {
    pub fn recv(&mut self) -> u64 {
        let waited = self.poll_backoff();
        self.virtual_ns += waited;
        waited
    }

    fn poll_backoff(&self) -> u64 {
        // lint: sanction(wall-clock): governor-owned clock seam; the DES
        // scheduler swaps this read for virtual time. audited 2026-08.
        let t0 = std::time::Instant::now();
        t0.elapsed().as_nanos() as u64
    }
}
