//! CLEAN: the paper's Fig. 4 sequence — protect the regions, then commit
//! them with `checkpoint` in the loop and restore with `restart` on
//! re-entry. Registration and commitment co-occur (file level + call
//! graph), so every protected region is actually covered.

pub fn register_views(client: &Client, views: &[View]) {
    for (i, v) in views.iter().enumerate() {
        client.protect(i as u32, v.region());
    }
}

pub fn run_loop(client: &Client, views: &[View], iters: u64) -> Result<(), ()> {
    register_views(client, views);
    if let Some(v) = latest(client) {
        client.restart("loop", v)?;
    }
    for i in 0..iters {
        compute(client, i);
        client.checkpoint("loop", i)?;
    }
    Ok(())
}

fn latest(_client: &Client) -> Option<u64> {
    None
}

fn compute(_client: &Client, _i: u64) {}
