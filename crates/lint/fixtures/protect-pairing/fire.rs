//! FIRE: regions are registered with `protect` but nothing in this file
//! (or anything it calls) ever commits them with `checkpoint`/`restart` —
//! the data layer never persists a byte and the first failure loses
//! everything "protected" here.

pub fn register_views(client: &Client, views: &[View]) {
    for (i, v) in views.iter().enumerate() {
        client.protect(i as u32, v.region());
    }
}

pub fn run_loop(client: &Client, iters: u64) {
    for i in 0..iters {
        compute(client, i);
    }
}

fn compute(_client: &Client, _i: u64) {}
