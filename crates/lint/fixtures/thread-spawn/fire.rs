//! FIRE: a raw `std::thread::spawn` in a model-checked crate. The model
//! checker cannot intercept this thread, so every interleaving involving
//! it goes unexplored.

pub fn start_router() -> std::thread::JoinHandle<()> {
    std::thread::spawn(route_messages)
}

fn route_messages() {}
