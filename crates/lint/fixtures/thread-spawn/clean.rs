//! CLEAN: threads in model-checked crates go through the loom-aware shim,
//! so the model checker can schedule (and fail) them deliberately.

pub fn start_router() -> loom::thread::JoinHandle<()> {
    loom::thread::spawn(route_messages)
}

fn route_messages() {}
