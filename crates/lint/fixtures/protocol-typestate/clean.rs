//! Clean twin for `protocol-typestate`: the full ULFM recovery protocol
//! in order — detect, revoke, agree, then collectives on the repaired
//! communicator. Must produce no findings from any rule.

pub struct Recovery;

impl Recovery {
    /// The legal sequence: detection gates the revoke, agreement repairs
    /// the communicator, and only then do collectives resume.
    pub fn recover(&self, comm: &Comm, err: &Failure) -> Result<(), Failure> {
        if err.is_recoverable() {
            comm.revoke();
            comm.agree(1, 0)?;
            comm.barrier()?;
        }
        Ok(())
    }

    /// Detection alone (no revoke) keeps every transition legal.
    pub fn probe(&self, comm: &Comm) -> usize {
        comm.failed_ranks().len()
    }
}
