//! Fires `protocol-typestate` (ulfm-recovery automaton), twice:
//! a revoke with no preceding failure detection, and a collective issued
//! on a communicator that was revoked and never repaired by agreement.
//! Analyzed under the fenix crate scope.

pub struct Recovery;

impl Recovery {
    /// Revokes the communicator from the live state: nothing observed a
    /// failure, so healthy peers get poisoned for no reason.
    pub fn hasty_revoke(&self, comm: &Comm) {
        comm.revoke();
    }

    /// Detects and revokes correctly, then issues a collective on the
    /// still-revoked communicator instead of agreeing first.
    pub fn collective_after_revoke(&self, comm: &Comm, err: &Failure) {
        if err.is_recoverable() {
            comm.revoke();
            comm.barrier();
        }
    }
}
