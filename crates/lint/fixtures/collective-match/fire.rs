//! Fires `collective-match`, twice: a collective reached by only one
//! side of a rank-dependent `if`, and a role `match` whose arms issue
//! different collective sequences. Ranks taking different paths deadlock
//! in the unmatched collective. Analyzed under the fenix crate scope.

/// Root-only barrier: every other rank sails past while rank 0 blocks.
pub fn root_only_barrier(comm: &Comm, rank: usize) {
    if rank == 0 {
        comm.barrier();
    }
}

/// Leader gathers after the agreement; members never enter the gather.
pub fn lopsided_commit(comm: &Comm, role: Role, digest: &[u8]) {
    match role {
        Role::Leader => {
            comm.agree(1, 0);
            comm.allgather(digest);
        }
        Role::Member => {
            comm.agree(1, 0);
        }
    }
}
