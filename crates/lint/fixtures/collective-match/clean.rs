//! Clean twin for `collective-match`: every rank-dependent branch issues
//! the same collective sequence on all fall-through arms, and
//! rank-uniform conditions (iteration intervals) are not flagged even
//! with a lone collective inside. Must produce no findings from any rule.

/// Both arms reach the same barrier; only local prep differs by rank.
pub fn prep_then_sync(comm: &Comm, rank: usize) {
    if rank == 0 {
        prepare_root();
        comm.barrier();
    } else {
        comm.barrier();
    }
}

/// Rank-uniform condition: every rank computes the same `iter`, so all
/// of them take the same arm together.
pub fn interval_sync(comm: &Comm, iter: usize) {
    if iter % 10 == 0 {
        comm.barrier();
    }
}

fn prepare_root() {}
