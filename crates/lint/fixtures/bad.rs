//! Deliberately violating fixture for `cargo run -p lint -- --self-check`.
//! Every lint rule must fire at least once on this file; the self-check
//! fails (and so does CI) if a rule rots and stops detecting its pattern.
//! This file is never compiled or scanned by the normal lint walk.

// R1: unsafe with no justifying comment anywhere nearby.
pub fn deref(p: *const u8) -> u8 {
    unsafe { *p }
}

// R2: Relaxed ordering on a sync-critical atomic name.
pub fn publish(seq: &std::sync::atomic::AtomicU64) {
    seq.store(2, std::sync::atomic::Ordering::Relaxed);
}

// R3: panicking on a cross-thread handoff result.
pub fn enqueue(tx: &std::sync::mpsc::Sender<u32>) {
    tx.send(1).unwrap();
}

// R4: raw std::thread spawn, invisible to the modelcheck explorer.
pub fn start() {
    let h = std::thread::spawn(|| ());
    let _ = h.join();
}
