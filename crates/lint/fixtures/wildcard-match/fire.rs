//! FIRE: a match over `MpiError` with a `_` wildcard. When the failure
//! taxonomy grows (the paper's evolution added communicator revocation on
//! top of process failure), new classes silently fall into `Retry`
//! instead of forcing a decision at this site.

pub fn classify(e: &MpiError) -> Action {
    match e {
        MpiError::ProcFailed { rank } => Action::Repair { rank: *rank },
        // Everything else — including failure classes that do not exist
        // yet — silently becomes a retry.
        _ => Action::Retry,
    }
}
