//! CLEAN: every `MpiError` variant is named, so adding a variant breaks
//! the build here and forces a recovery decision. `matches!` keeps its
//! implicit wildcard — that *is* the macro's contract — and a `Result`
//! match that forwards errors wholesale names no variant and is exempt.

pub fn classify(e: &MpiError) -> Action {
    match e {
        MpiError::ProcFailed { rank } => Action::Repair { rank: *rank },
        MpiError::Revoked => Action::Reinit,
        MpiError::Killed | MpiError::Aborted => Action::Abort,
        MpiError::RankOutOfRange { .. } | MpiError::TypeMismatch => Action::Abort,
    }
}

pub fn is_transient(e: &MpiError) -> bool {
    matches!(e, MpiError::ProcFailed { .. } | MpiError::Revoked)
}

pub fn forward(r: Result<u64, MpiError>) -> Result<u64, MpiError> {
    match r {
        Ok(v) => Ok(v + 1),
        Err(e) => Err(e),
    }
}
