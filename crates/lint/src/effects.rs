//! Interprocedural effect inference over the workspace call graph.
//!
//! Every function gets an [`EffectSet`] summary — which of the five
//! effects it may exercise, directly or through any callee:
//!
//! - `wall-clock`: reads real time (`Instant::now`, `SystemTime::now`,
//!   `.elapsed()`, a `thread::sleep` — a wall-clock sleep *waits on* wall
//!   time, which is exactly what the DES refactor's virtual time replaces);
//! - `blocks`: parks the calling OS thread (condvar waits, blocking
//!   channel `recv`, `JoinHandle::join`, sleeps);
//! - `spawns`: creates an OS thread (std or loom, free or scoped);
//! - `non-det`: nondeterminism sources — RNG draws and iteration over
//!   unordered hash containers feeding the function's logic;
//! - `panics`: contains a potential panic site (tracked in the lattice
//!   for completeness; site-level reporting stays with `panic-reach`).
//!
//! Summaries are computed bottom-up over the condensation of the call
//! graph (iterative Tarjan SCCs, emitted callees-first), so a single pass
//! reaches the least fixpoint: effects are a join-semilattice and
//! propagation is union-only, hence monotone — properties the
//! `effects_props` suite checks against a naive worklist oracle.
//!
//! Sites that are *legitimately* effectful carry a sanction pragma on the
//! line or up to three lines above:
//!
//! ```text
//! // lint: sanction(wall-clock, blocks): modeled transfer time; the DES
//! // scheduler replaces this with virtual time.
//! ```
//!
//! A sanction clears the named bits for rule purposes but the site still
//! appears in the effects inventory, flagged `sanctioned` with its
//! justification — the inventory *is* the DES-migration checklist.
//!
//! Three rules ride on the summaries: `rank-path-effects` (no wall-clock,
//! nondeterminism, or spawning reachable from a rank entry point),
//! `blocking-in-governor` (no blocking inside bandwidth-governor
//! reservation math or telemetry export callbacks), and `effect-drift`
//! (any unsanctioned effect site reachable from a rank entry that is not
//! in the committed `effects-inventory.json` fails the scan). Every
//! diagnostic carries a witness call chain — the shortest path from the
//! entry point to the effectful site.

use std::collections::{HashMap, HashSet, VecDeque};

use crate::callgraph::{CallGraph, FnId, GraphOpts, Workspace};
use crate::diag::{json_str, Diagnostic};
use crate::lexer::TokKind;
use crate::parser::{CallKind, FnItem, ParsedFile};
use crate::rules::{GOVERNOR_FNS, RANK_ENTRY_FNS};

/// A set of effects, as a bitset join-semilattice (union is join).
#[derive(Clone, Copy, Default, PartialEq, Eq, Hash, Debug)]
pub struct EffectSet(pub u8);

impl EffectSet {
    pub const EMPTY: EffectSet = EffectSet(0);
    pub const WALL_CLOCK: EffectSet = EffectSet(1 << 0);
    pub const BLOCKS: EffectSet = EffectSet(1 << 1);
    pub const SPAWNS: EffectSet = EffectSet(1 << 2);
    pub const NON_DET: EffectSet = EffectSet(1 << 3);
    pub const PANICS: EffectSet = EffectSet(1 << 4);
    /// The effects the DES migration must eliminate or sanction; `panics`
    /// is excluded — `panic-reach` owns site-level panic reporting.
    pub const MIGRATION: EffectSet =
        EffectSet(Self::WALL_CLOCK.0 | Self::BLOCKS.0 | Self::SPAWNS.0 | Self::NON_DET.0);

    pub fn union(self, other: EffectSet) -> EffectSet {
        EffectSet(self.0 | other.0)
    }

    pub fn intersect(self, other: EffectSet) -> EffectSet {
        EffectSet(self.0 & other.0)
    }

    pub fn minus(self, other: EffectSet) -> EffectSet {
        EffectSet(self.0 & !other.0)
    }

    pub fn contains(self, other: EffectSet) -> bool {
        self.0 & other.0 == other.0
    }

    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Stable names of the set bits, in display order.
    pub fn names(self) -> Vec<&'static str> {
        let mut out = Vec::new();
        for (bit, name) in [
            (Self::WALL_CLOCK, "wall-clock"),
            (Self::BLOCKS, "blocks"),
            (Self::SPAWNS, "spawns"),
            (Self::NON_DET, "non-det"),
            (Self::PANICS, "panics"),
        ] {
            if self.contains(bit) {
                out.push(name);
            }
        }
        out
    }

    /// Parse one effect name as written in a sanction pragma.
    pub fn from_name(name: &str) -> Option<EffectSet> {
        match name {
            "wall-clock" => Some(Self::WALL_CLOCK),
            "blocks" => Some(Self::BLOCKS),
            "spawns" => Some(Self::SPAWNS),
            "non-det" => Some(Self::NON_DET),
            "panics" => Some(Self::PANICS),
            _ => None,
        }
    }
}

/// One directly effectful call site inside a function body.
#[derive(Clone, Debug)]
pub struct EffectSite {
    /// Raw effects of the intrinsic at this site.
    pub effects: EffectSet,
    /// Bits cleared by a sanction pragma covering this site.
    pub sanctioned: EffectSet,
    /// The sanction justification (`""` when unsanctioned).
    pub justification: String,
    /// What the site is, e.g. `std::thread::sleep` or `.wait_for()`.
    pub what: String,
    pub line: u32,
}

impl EffectSite {
    /// Effects the site still carries after sanctions.
    pub fn unsanctioned(&self) -> EffectSet {
        self.effects.minus(self.sanctioned)
    }
}

/// Path-call intrinsics, matched as a suffix of the call's segments.
const PATH_INTRINSICS: &[(&[&str], EffectSet)] = &[
    (&["Instant", "now"], EffectSet::WALL_CLOCK),
    (&["SystemTime", "now"], EffectSet::WALL_CLOCK),
    (
        &["thread", "sleep"],
        EffectSet(EffectSet::WALL_CLOCK.0 | EffectSet::BLOCKS.0),
    ),
    (&["thread", "spawn"], EffectSet::SPAWNS),
    (&["thread", "scope"], EffectSet::SPAWNS),
    (&["thread", "park"], EffectSet::BLOCKS),
    (
        &["thread", "park_timeout"],
        EffectSet(EffectSet::WALL_CLOCK.0 | EffectSet::BLOCKS.0),
    ),
];

/// Method names that read the wall clock.
const METHOD_WALL_CLOCK: &[&str] = &["elapsed", "duration_since"];

/// Method names that block the calling thread regardless of arity
/// (condvar family, timed channel receive).
const METHOD_BLOCKS: &[&str] = &[
    "wait",
    "wait_for",
    "wait_timeout",
    "wait_while",
    "recv_timeout",
];

/// Method names that block only as zero-argument calls — `recv("x")` is a
/// lookup and `parts.join(", ")` is string concatenation, but `rx.recv()`
/// and `handle.join()` park the thread.
const METHOD_BLOCKS_ZERO_ARG: &[&str] = &["recv", "join", "park"];

/// Method names that spawn a thread (`Builder::spawn`, `Scope::spawn`).
const METHOD_SPAWNS: &[&str] = &["spawn"];

/// RNG draw method names (the workspace RNG plus the usual rand idioms).
const METHOD_NON_DET: &[&str] = &[
    "next_u32",
    "next_u64",
    "fill_bytes",
    "gen_range",
    "gen_bool",
    "gen_ratio",
    "choose",
    "shuffle",
];

/// Iteration methods that surface unordered-container order.
const ITER_METHODS: &[&str] = &["iter", "keys", "values", "drain", "into_iter"];

/// The condensation of a call graph: SCCs in *reverse topological* order
/// (every callee SCC is emitted before any of its callers), which is the
/// processing order for the bottom-up fixpoint.
pub struct Condensation {
    pub sccs: Vec<Vec<FnId>>,
    pub comp_of: HashMap<FnId, usize>,
}

/// Iterative Tarjan over the call graph (recursion would overflow on
/// splice-generated pathological chains).
pub fn condense(graph: &CallGraph) -> Condensation {
    let mut nodes: Vec<FnId> = graph.edges.keys().copied().collect();
    for callees in graph.edges.values() {
        nodes.extend(callees.iter().copied());
    }
    nodes.sort_unstable();
    nodes.dedup();

    let mut index: HashMap<FnId, usize> = HashMap::new();
    let mut low: HashMap<FnId, usize> = HashMap::new();
    let mut on_stack: HashSet<FnId> = HashSet::new();
    let mut stack: Vec<FnId> = Vec::new();
    let mut sccs: Vec<Vec<FnId>> = Vec::new();
    let mut next = 0usize;
    let empty: Vec<FnId> = Vec::new();

    for &start in &nodes {
        if index.contains_key(&start) {
            continue;
        }
        index.insert(start, next);
        low.insert(start, next);
        next += 1;
        stack.push(start);
        on_stack.insert(start);
        let mut frames: Vec<(FnId, usize)> = vec![(start, 0)];
        while let Some(&(v, cursor)) = frames.last() {
            let succs = graph.edges.get(&v).unwrap_or(&empty);
            if cursor < succs.len() {
                frames.last_mut().expect("frame present").1 += 1;
                let w = succs[cursor];
                if let std::collections::hash_map::Entry::Vacant(slot) = index.entry(w) {
                    slot.insert(next);
                    low.insert(w, next);
                    next += 1;
                    stack.push(w);
                    on_stack.insert(w);
                    frames.push((w, 0));
                } else if on_stack.contains(&w) {
                    let lw = index[&w];
                    let lv = low.get_mut(&v).expect("visited");
                    *lv = (*lv).min(lw);
                }
            } else {
                frames.pop();
                if let Some(&(p, _)) = frames.last() {
                    let lv = low[&v];
                    let lp = low.get_mut(&p).expect("visited");
                    *lp = (*lp).min(lv);
                }
                if low[&v] == index[&v] {
                    let mut comp = Vec::new();
                    while let Some(w) = stack.pop() {
                        on_stack.remove(&w);
                        comp.push(w);
                        if w == v {
                            break;
                        }
                    }
                    comp.sort_unstable();
                    sccs.push(comp);
                }
            }
        }
    }

    let mut comp_of = HashMap::new();
    for (i, comp) in sccs.iter().enumerate() {
        for &f in comp {
            comp_of.insert(f, i);
        }
    }
    Condensation { sccs, comp_of }
}

/// A sanction pragma parsed from a comment.
struct Sanction {
    line: u32,
    effects: EffectSet,
    justification: String,
}

/// How many lines above a site a sanction pragma still covers it. Wide
/// enough for a multi-line justification comment between the pragma line
/// and the site it covers.
const SANCTION_WINDOW: u32 = 5;

fn parse_sanctions(file: &ParsedFile, malformed: &mut Vec<(String, u32, String)>) -> Vec<Sanction> {
    let mut out = Vec::new();
    for t in &file.lexed.toks {
        if !matches!(t.kind, TokKind::LineComment | TokKind::BlockComment) {
            continue;
        }
        let text = &file.lexed.src[t.start..t.end];
        let Some(pos) = text.find("lint: sanction(") else {
            continue;
        };
        let rest = &text[pos + "lint: sanction(".len()..];
        let Some(close) = rest.find(')') else {
            malformed.push((file.rel.clone(), t.line, "unclosed effect list".into()));
            continue;
        };
        let mut effects = EffectSet::EMPTY;
        let mut bad_name = None;
        for name in rest[..close].split(',') {
            let name = name.trim();
            match EffectSet::from_name(name) {
                Some(e) => effects = effects.union(e),
                None => bad_name = Some(name.to_owned()),
            }
        }
        if let Some(name) = bad_name {
            malformed.push((
                file.rel.clone(),
                t.line,
                format!(
                    "unknown effect `{name}` (expected wall-clock/blocks/spawns/non-det/panics)"
                ),
            ));
            continue;
        }
        let justification = rest[close + 1..]
            .trim_start_matches(':')
            .trim()
            .trim_end_matches("*/")
            .trim()
            .to_owned();
        if justification.is_empty() {
            malformed.push((
                file.rel.clone(),
                t.line,
                "sanction without a justification after the effect list".into(),
            ));
            continue;
        }
        out.push(Sanction {
            line: t.line,
            effects,
            justification,
        });
    }
    out
}

/// Sanctions covering `line`: within the window above it, but never from
/// before `floor` (the function's declaration line) — a pragma cannot
/// bleed across a function boundary however close the functions sit.
fn sanction_for(sanctions: &[Sanction], line: u32, floor: u32) -> (EffectSet, String) {
    let mut set = EffectSet::EMPTY;
    let mut just = String::new();
    for s in sanctions {
        if s.line >= floor && s.line <= line && line - s.line <= SANCTION_WINDOW {
            set = set.union(s.effects);
            if just.is_empty() {
                just = s.justification.clone();
            }
        }
    }
    (set, just)
}

/// Does the method call at `si` have an empty argument list?
fn zero_arg(file: &ParsedFile, si: usize) -> bool {
    si + 2 < file.sig.len() && file.text(si + 1) == "(" && file.text(si + 2) == ")"
}

/// Collect the direct effect sites of one function.
fn fn_sites(file: &ParsedFile, f: &FnItem, sanctions: &[Sanction]) -> Vec<EffectSite> {
    let mut out = Vec::new();
    let mut push = |effects: EffectSet, what: String, line: u32| {
        let (sanctioned, justification) = sanction_for(sanctions, line, f.line);
        out.push(EffectSite {
            effects,
            sanctioned: effects.intersect(sanctioned),
            justification,
            what,
            line,
        });
    };

    // Idents `let`-bound to hash-container constructors: iteration over
    // them is the non-det heuristic's target. Restricting to let-bound
    // receivers keeps field iteration (often sorted afterwards) out.
    let mut hash_bound: HashSet<String> = HashSet::new();
    for l in &f.lets {
        if let crate::parser::LetPat::Ident(name) = &l.pat {
            let mentions_hash = (l.init.0..l.init.1.min(file.sig.len()))
                .any(|k| matches!(file.text(k), "HashMap" | "HashSet"));
            if mentions_hash {
                hash_bound.insert(name.clone());
            }
        }
    }

    for c in &f.calls {
        match c.kind {
            CallKind::Path => {
                for (suffix, effects) in PATH_INTRINSICS {
                    if c.segs.len() >= suffix.len()
                        && c.segs[c.segs.len() - suffix.len()..]
                            .iter()
                            .zip(suffix.iter())
                            .all(|(a, b)| a == b)
                    {
                        push(*effects, c.segs.join("::"), c.line);
                        break;
                    }
                }
            }
            CallKind::Method => {
                let name = c.name();
                let mut effects = EffectSet::EMPTY;
                if METHOD_WALL_CLOCK.contains(&name) {
                    effects = effects.union(EffectSet::WALL_CLOCK);
                }
                if METHOD_BLOCKS.contains(&name)
                    || (METHOD_BLOCKS_ZERO_ARG.contains(&name) && zero_arg(file, c.si))
                {
                    effects = effects.union(EffectSet::BLOCKS);
                }
                if METHOD_SPAWNS.contains(&name) {
                    effects = effects.union(EffectSet::SPAWNS);
                }
                if METHOD_NON_DET.contains(&name) {
                    effects = effects.union(EffectSet::NON_DET);
                }
                if ITER_METHODS.contains(&name)
                    && c.si >= 2
                    && file.text(c.si - 1) == "."
                    && file.tok(c.si - 2).kind == TokKind::Ident
                    && hash_bound.contains(file.text(c.si - 2))
                {
                    push(
                        EffectSet::NON_DET,
                        format!("iteration over unordered `{}`", file.text(c.si - 2)),
                        c.line,
                    );
                    continue;
                }
                if !effects.is_empty() {
                    push(effects, format!(".{name}()"), c.line);
                }
            }
            CallKind::Free | CallKind::Macro => {}
        }
    }
    out
}

/// One entry of the effects inventory: an effect site reachable from a
/// rank entry point, with its witness chain.
#[derive(Clone, Debug)]
pub struct InventoryEntry {
    /// Line-independent key: `effects @ file # function : what`.
    pub key: String,
    pub file: String,
    pub line: u32,
    pub func: String,
    pub what: String,
    pub effects: EffectSet,
    pub sanctioned: EffectSet,
    pub justification: String,
    /// Qualified names along the shortest entry → site path.
    pub witness: Vec<String>,
}

impl InventoryEntry {
    pub fn is_sanctioned(&self) -> bool {
        self.effects
            .intersect(EffectSet::MIGRATION)
            .minus(self.sanctioned)
            .is_empty()
    }
}

/// The full interprocedural effect analysis of one workspace.
pub struct EffectAnalysis {
    /// Per-function *unsanctioned* effect summaries (local ∪ callees).
    pub summaries: HashMap<FnId, EffectSet>,
    /// Per-function direct (local) unsanctioned effects, panics included.
    pub local: HashMap<FnId, EffectSet>,
    /// Per-function direct effect sites (sanctioned ones included).
    pub sites: HashMap<FnId, Vec<EffectSite>>,
    /// The deep call graph the fixpoint ran over.
    pub graph: CallGraph,
    pub cond: Condensation,
    /// Malformed sanction pragmas: (file, line, reason).
    pub malformed: Vec<(String, u32, String)>,
}

impl EffectAnalysis {
    /// Run the analysis. The call graph is always built in *deep* mode:
    /// the rank path genuinely crosses crates through method calls
    /// (`router.send → network.transfer → governor.reserve`), and the
    /// inventory must not depend on the scan's resolution mode or
    /// `effect-drift` would fire in one CI stage and not the other.
    pub fn run(ws: &Workspace, opts: GraphOpts) -> EffectAnalysis {
        let graph = CallGraph::build(
            ws,
            GraphOpts {
                deep: true,
                include_mutants: opts.include_mutants,
            },
        );
        let mut malformed = Vec::new();
        let mut sites: HashMap<FnId, Vec<EffectSite>> = HashMap::new();
        let mut local: HashMap<FnId, EffectSet> = HashMap::new();
        for (fi, file) in ws.files.iter().enumerate() {
            if file.file_is_test {
                continue;
            }
            let sanctions = parse_sanctions(file, &mut malformed);
            for (gi, f) in file.fns.iter().enumerate() {
                if f.is_test || (f.mutant_gated && !opts.include_mutants) {
                    continue;
                }
                let fs = fn_sites(file, f, &sanctions);
                let mut eff = fs
                    .iter()
                    .fold(EffectSet::EMPTY, |acc, s| acc.union(s.unsanctioned()));
                if !f.panics.is_empty() {
                    eff = eff.union(EffectSet::PANICS);
                }
                local.insert((fi, gi), eff);
                if !fs.is_empty() {
                    sites.insert((fi, gi), fs);
                }
            }
        }

        let cond = condense(&graph);
        // Bottom-up over the condensation: SCCs arrive callees-first, so
        // one pass per SCC reaches the least fixpoint (union is monotone
        // and all members of an SCC share one summary).
        let mut summaries: HashMap<FnId, EffectSet> = HashMap::new();
        for comp in &cond.sccs {
            let mut eff = EffectSet::EMPTY;
            for &f in comp {
                eff = eff.union(local.get(&f).copied().unwrap_or_default());
                for callee in graph.edges.get(&f).into_iter().flatten() {
                    if let Some(&s) = summaries.get(callee) {
                        eff = eff.union(s);
                    }
                }
            }
            for &f in comp {
                summaries.insert(f, eff);
            }
        }

        EffectAnalysis {
            summaries,
            local,
            sites,
            graph,
            cond,
            malformed,
        }
    }

    /// BFS parent forest from `entries`, for shortest witness chains.
    fn parents(&self, entries: &[FnId]) -> HashMap<FnId, Option<FnId>> {
        let mut parent: HashMap<FnId, Option<FnId>> = HashMap::new();
        let mut queue: VecDeque<FnId> = VecDeque::new();
        for &e in entries {
            if let std::collections::hash_map::Entry::Vacant(slot) = parent.entry(e) {
                slot.insert(None);
                queue.push_back(e);
            }
        }
        while let Some(v) = queue.pop_front() {
            for &w in self.graph.edges.get(&v).into_iter().flatten() {
                if let std::collections::hash_map::Entry::Vacant(slot) = parent.entry(w) {
                    slot.insert(Some(v));
                    queue.push_back(w);
                }
            }
        }
        parent
    }

    /// Reconstruct the entry → target chain of qualified names.
    fn chain(ws: &Workspace, parent: &HashMap<FnId, Option<FnId>>, target: FnId) -> Vec<String> {
        let mut path = vec![target];
        let mut at = target;
        while let Some(Some(p)) = parent.get(&at) {
            path.push(*p);
            at = *p;
        }
        path.reverse();
        path.iter().map(|&f| ws.fn_item(f).qual()).collect()
    }

    /// Every migration-effect site reachable from the rank entry points,
    /// with witness chains — the DES-migration checklist.
    pub fn inventory(&self, ws: &Workspace, opts: GraphOpts) -> Vec<InventoryEntry> {
        let entries = collect_entries(ws, RANK_ENTRY_FNS, opts);
        let parent = self.parents(&entries);
        let mut out = Vec::new();
        for (&id, sites) in &self.sites {
            if !parent.contains_key(&id) {
                continue;
            }
            let file = ws.file(id);
            let func = ws.fn_item(id).qual();
            let witness = Self::chain(ws, &parent, id);
            for s in sites {
                let migration = s.effects.intersect(EffectSet::MIGRATION);
                if migration.is_empty() {
                    continue;
                }
                let key = format!(
                    "{} @ {} # {} : {}",
                    migration.names().join("+"),
                    file.rel,
                    func,
                    s.what
                );
                out.push(InventoryEntry {
                    key,
                    file: file.rel.clone(),
                    line: s.line,
                    func: func.clone(),
                    what: s.what.clone(),
                    effects: migration,
                    sanctioned: s.sanctioned,
                    justification: s.justification.clone(),
                    witness: witness.clone(),
                });
            }
        }
        out.sort_by(|a, b| (&a.key, a.line).cmp(&(&b.key, b.line)));
        out.dedup_by(|a, b| a.key == b.key && a.line == b.line);
        out
    }
}

/// Resolve an entry-point table (`(crate, patterns)`; a pattern with `::`
/// matches the qualified name exactly, a bare name matches only free
/// functions) against the workspace.
pub fn collect_entries(ws: &Workspace, table: &[(&str, &[&str])], opts: GraphOpts) -> Vec<FnId> {
    let mut out = Vec::new();
    for (id, f) in ws.fns() {
        if f.is_test || (f.mutant_gated && !opts.include_mutants) {
            continue;
        }
        let file = ws.file(id);
        if file.file_is_test {
            continue;
        }
        let Some((_, pats)) = table
            .iter()
            .find(|(krate, _)| *krate == file.crate_name.as_str())
        else {
            continue;
        };
        let qual = f.qual();
        if pats.iter().any(|p| {
            if p.contains("::") {
                qual == *p
            } else {
                f.impl_type.is_none() && f.name == *p
            }
        }) {
            out.push(id);
        }
    }
    out.sort_unstable();
    out
}

/// Shared body of the two reachability rules.
fn check_reachable(
    ws: &Workspace,
    fx: &EffectAnalysis,
    opts: GraphOpts,
    rule: &'static str,
    table: &[(&str, &[&str])],
    forbidden: EffectSet,
    context: &str,
) -> Vec<Diagnostic> {
    let entries = collect_entries(ws, table, opts);
    let parent = fx.parents(&entries);
    let mut out = Vec::new();
    for (&id, sites) in &fx.sites {
        if !parent.contains_key(&id) {
            continue;
        }
        let file = ws.file(id);
        let func = ws.fn_item(id).qual();
        for s in sites {
            let bad = s.unsanctioned().intersect(forbidden);
            if bad.is_empty() {
                continue;
            }
            let witness = EffectAnalysis::chain(ws, &parent, id);
            out.push(Diagnostic {
                rule,
                file: file.rel.clone(),
                line: s.line,
                func: func.clone(),
                msg: format!(
                    "{} effect ({}) reachable from {}; witness: {}; \
                     fix the site or sanction it with `// lint: sanction({}): <why>`",
                    bad.names().join("+"),
                    s.what,
                    context,
                    witness.join(" -> "),
                    bad.names().join(", "),
                ),
            });
        }
    }
    out
}

/// `rank-path-effects`: nothing a simulated rank executes may read the
/// wall clock, draw nondeterminism, or spawn OS threads — those are the
/// three things the deterministic event scheduler must own. Plain
/// blocking (mailbox condvar waits) is allowed: it becomes a yield point.
pub fn check_rank_path(ws: &Workspace, fx: &EffectAnalysis, opts: GraphOpts) -> Vec<Diagnostic> {
    check_reachable(
        ws,
        fx,
        opts,
        "rank-path-effects",
        RANK_ENTRY_FNS,
        EffectSet::WALL_CLOCK
            .union(EffectSet::NON_DET)
            .union(EffectSet::SPAWNS),
        "a rank entry point",
    )
}

/// `blocking-in-governor`: bandwidth-governor reservation math and
/// telemetry export callbacks run under locks and on hot paths — they
/// must compute, never park the thread.
pub fn check_governor(ws: &Workspace, fx: &EffectAnalysis, opts: GraphOpts) -> Vec<Diagnostic> {
    check_reachable(
        ws,
        fx,
        opts,
        "blocking-in-governor",
        GOVERNOR_FNS,
        EffectSet::BLOCKS,
        "a governor/exporter callback",
    )
}

/// `effect-drift`: every *unsanctioned* migration-effect site reachable
/// from a rank entry must already be in the committed
/// `effects-inventory.json`; a new one fails CI until it is either fixed
/// or sanctioned. Malformed sanction pragmas are reported here too.
pub fn check_drift(ws: &Workspace, fx: &EffectAnalysis, opts: GraphOpts) -> Vec<Diagnostic> {
    let committed: HashSet<String> = ws
        .root
        .as_ref()
        .and_then(|root| std::fs::read_to_string(root.join("effects-inventory.json")).ok())
        .map(|text| snapshot_keys(&text))
        .unwrap_or_default();
    let mut out = Vec::new();
    for e in fx.inventory(ws, opts) {
        if e.is_sanctioned() || committed.contains(&e.key) {
            continue;
        }
        out.push(Diagnostic {
            rule: "effect-drift",
            file: e.file.clone(),
            line: e.line,
            func: e.func.clone(),
            msg: format!(
                "new unsanctioned effect site ({}: {}) not in committed effects-inventory.json; \
                 witness: {}; sanction it or regenerate the snapshot with `--effects`",
                e.effects.names().join("+"),
                e.what,
                e.witness.join(" -> "),
            ),
        });
    }
    for (file, line, reason) in &fx.malformed {
        out.push(Diagnostic {
            rule: "effect-drift",
            file: file.clone(),
            line: *line,
            func: String::new(),
            msg: format!("malformed sanction pragma: {reason}"),
        });
    }
    out
}

/// Extract entry keys from a rendered inventory snapshot (our own
/// writer's format: one `"key": "…"` field per entry).
pub fn snapshot_keys(text: &str) -> HashSet<String> {
    let mut out = HashSet::new();
    let mut rest = text;
    while let Some(pos) = rest.find("\"key\": \"") {
        rest = &rest[pos + "\"key\": \"".len()..];
        if let Some(end) = rest.find('"') {
            out.insert(rest[..end].to_owned());
            rest = &rest[end..];
        } else {
            break;
        }
    }
    out
}

/// Render the inventory as JSON (the `--effects` artifact and the
/// committed snapshot share this format).
pub fn render_inventory(entries: &[InventoryEntry]) -> String {
    use std::fmt::Write as _;
    let unsanctioned = entries.iter().filter(|e| !e.is_sanctioned()).count();
    let mut out = String::from("{\n  \"entries\": [\n");
    for (i, e) in entries.iter().enumerate() {
        let effects = e
            .effects
            .names()
            .iter()
            .map(|n| json_str(n))
            .collect::<Vec<_>>()
            .join(", ");
        let witness = e
            .witness
            .iter()
            .map(|w| json_str(w))
            .collect::<Vec<_>>()
            .join(", ");
        let _ = write!(
            out,
            "    {{\"key\": {}, \"file\": {}, \"line\": {}, \"function\": {}, \
             \"effects\": [{}], \"sanctioned\": {}, \"justification\": {}, \
             \"witness\": [{}]}}",
            json_str(&e.key),
            json_str(&e.file),
            e.line,
            json_str(&e.func),
            effects,
            e.is_sanctioned(),
            json_str(&e.justification),
            witness,
        );
        out.push_str(if i + 1 < entries.len() { ",\n" } else { "\n" });
    }
    let _ = write!(
        out,
        "  ],\n  \"total\": {},\n  \"unsanctioned\": {}\n}}\n",
        entries.len(),
        unsanctioned
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::ParsedFile;

    fn ws(files: &[(&str, &str, &str)]) -> Workspace {
        Workspace {
            root: None,
            files: files
                .iter()
                .map(|(rel, krate, src)| ParsedFile::parse(rel, krate, src, false))
                .collect(),
        }
    }

    fn id_of(ws: &Workspace, name: &str) -> FnId {
        ws.fns()
            .find(|(_, f)| f.name == name)
            .map(|(id, _)| id)
            .unwrap_or_else(|| panic!("no fn named {name}"))
    }

    #[test]
    fn effects_propagate_through_calls() {
        let w = ws(&[(
            "crates/simmpi/src/lib.rs",
            "simmpi",
            "pub fn outer() { middle(); }\n\
             fn middle() { leaf(); }\n\
             fn leaf() { let _t = std::time::Instant::now(); }\n",
        )]);
        let fx = EffectAnalysis::run(&w, GraphOpts::default());
        for name in ["outer", "middle", "leaf"] {
            let s = fx.summaries[&id_of(&w, name)];
            assert!(s.contains(EffectSet::WALL_CLOCK), "{name}: {s:?}");
        }
    }

    #[test]
    fn sleep_is_wall_clock_and_blocking() {
        let w = ws(&[(
            "crates/cluster/src/lib.rs",
            "cluster",
            "pub fn nap() { std::thread::sleep(std::time::Duration::from_millis(1)); }\n",
        )]);
        let fx = EffectAnalysis::run(&w, GraphOpts::default());
        let s = fx.summaries[&id_of(&w, "nap")];
        assert!(s.contains(EffectSet::WALL_CLOCK.union(EffectSet::BLOCKS)));
    }

    #[test]
    fn zero_arg_heuristic_separates_joins() {
        let w = ws(&[(
            "crates/x/src/lib.rs",
            "x",
            "pub fn strings(v: &[String]) -> String { v.join(\", \") }\n\
             pub fn threads(h: std::thread::JoinHandle<()>) { h.join().ok(); }\n",
        )]);
        let fx = EffectAnalysis::run(&w, GraphOpts::default());
        assert!(fx.summaries[&id_of(&w, "strings")].is_empty());
        assert!(fx.summaries[&id_of(&w, "threads")].contains(EffectSet::BLOCKS));
    }

    #[test]
    fn sanction_clears_named_bits_and_requires_justification() {
        let w = ws(&[(
            "crates/cluster/src/lib.rs",
            "cluster",
            "pub fn modeled() {\n\
             // lint: sanction(wall-clock, blocks): modeled time, DES replaces it\n\
             std::thread::sleep(std::time::Duration::from_millis(1));\n\
             }\n\
             pub fn naked() {\n\
             // lint: sanction(wall-clock):\n\
             let _t = std::time::Instant::now();\n\
             }\n",
        )]);
        let fx = EffectAnalysis::run(&w, GraphOpts::default());
        assert!(fx.summaries[&id_of(&w, "modeled")].is_empty());
        // The empty justification is rejected: the pragma is malformed and
        // the site keeps its effect.
        assert!(fx.summaries[&id_of(&w, "naked")].contains(EffectSet::WALL_CLOCK));
        assert_eq!(fx.malformed.len(), 1);
    }

    #[test]
    fn recursive_scc_reaches_fixpoint() {
        let w = ws(&[(
            "crates/x/src/lib.rs",
            "x",
            "pub fn ping(n: u32) { if n > 0 { pong(n - 1); } }\n\
             fn pong(n: u32) { std::thread::sleep(std::time::Duration::ZERO); ping(n); }\n",
        )]);
        let fx = EffectAnalysis::run(&w, GraphOpts::default());
        let ping = id_of(&w, "ping");
        let pong = id_of(&w, "pong");
        assert_eq!(fx.summaries[&ping], fx.summaries[&pong]);
        assert!(fx.summaries[&ping].contains(EffectSet::BLOCKS));
        assert_eq!(fx.cond.comp_of[&ping], fx.cond.comp_of[&pong]);
    }

    #[test]
    fn inventory_carries_witness_chain() {
        let w = ws(&[(
            "crates/simmpi/src/router.rs",
            "simmpi",
            "pub struct Router;\n\
             impl Router {\n\
             pub fn recv(&self) { self.backoff(); }\n\
             fn backoff(&self) { let _t = std::time::Instant::now(); }\n\
             }\n",
        )]);
        let fx = EffectAnalysis::run(&w, GraphOpts::default());
        let inv = fx.inventory(&w, GraphOpts::default());
        assert_eq!(inv.len(), 1);
        assert_eq!(inv[0].witness, vec!["Router::recv", "Router::backoff"]);
        assert!(inv[0].key.contains("wall-clock @"));
        assert!(!inv[0].is_sanctioned());
        let rendered = render_inventory(&inv);
        let keys = snapshot_keys(&rendered);
        assert!(keys.contains(&inv[0].key), "snapshot round-trips keys");
    }

    #[test]
    fn hash_iteration_is_non_det() {
        let w = ws(&[(
            "crates/x/src/lib.rs",
            "x",
            "pub fn order(v: &[u64]) -> u64 {\n\
             let seen = std::collections::HashSet::from([1u64]);\n\
             let mut acc = 0;\n\
             for k in seen.iter() { acc += k; }\n\
             acc + v.len() as u64\n\
             }\n\
             pub fn sorted_field(v: &[u64]) -> Vec<u64> { let mut s = v.to_vec(); s.sort(); s }\n",
        )]);
        let fx = EffectAnalysis::run(&w, GraphOpts::default());
        assert!(fx.summaries[&id_of(&w, "order")].contains(EffectSet::NON_DET));
        assert!(fx.summaries[&id_of(&w, "sorted_field")].is_empty());
    }
}
