//! A lossless Rust lexer.
//!
//! Produces a token stream that concatenates back to the input byte-for-byte
//! (comments and whitespace are tokens too), which is what the round-trip
//! property test in `tests/lexer_props.rs` checks. Handles the constructs a
//! line-oriented scanner cannot: raw strings with arbitrary hash counts,
//! nested block comments, lifetimes vs. char literals (`'a` vs `'a'`),
//! byte/raw-byte strings, raw identifiers (`r#match`), and shebang lines.
//!
//! The lexer never fails: unexpected bytes become one-byte [`TokKind::Punct`]
//! tokens and unterminated literals run to end-of-file, so the analyzer can
//! always make progress on in-development source.

/// Token classification. `Punct` is one punctuation character; multi-char
/// operators are left to consumers (the parser matches sequences).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (including raw identifiers, `r#match`).
    Ident,
    /// A lifetime or loop label: `'a`, `'static` (no closing quote).
    Lifetime,
    /// Character literal, `'x'` (escapes included).
    Char,
    /// String literal `"…"`, byte string `b"…"`.
    Str,
    /// Raw (byte) string literal `r#"…"#` / `br##"…"##`.
    RawStr,
    /// Numeric literal (including suffixed and float forms).
    Num,
    /// `// …` including doc line comments; excludes the newline.
    LineComment,
    /// `/* … */` including doc block comments; nesting handled.
    BlockComment,
    /// Horizontal/vertical whitespace run.
    Whitespace,
    /// The `#!/…` interpreter line (only at byte 0).
    Shebang,
    /// Single punctuation character.
    Punct,
}

/// One token: classification plus byte extent and 1-based start line.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Tok {
    pub kind: TokKind,
    pub start: usize,
    pub end: usize,
    pub line: u32,
}

/// A lexed source file: the text plus its loss-free token list.
#[derive(Clone, Debug)]
pub struct Lexed {
    pub src: String,
    pub toks: Vec<Tok>,
}

impl Lexed {
    pub fn new(src: &str) -> Lexed {
        Lexed {
            src: src.to_owned(),
            toks: lex(src),
        }
    }

    /// Text of token `i`.
    pub fn text(&self, i: usize) -> &str {
        let t = &self.toks[i];
        &self.src[t.start..t.end]
    }

    /// Indexes of the significant tokens (everything except whitespace,
    /// comments, and the shebang) — the stream the parser consumes.
    pub fn significant(&self) -> Vec<usize> {
        (0..self.toks.len())
            .filter(|&i| {
                !matches!(
                    self.toks[i].kind,
                    TokKind::Whitespace
                        | TokKind::LineComment
                        | TokKind::BlockComment
                        | TokKind::Shebang
                )
            })
            .collect()
    }
}

struct Cursor<'a> {
    b: &'a [u8],
    i: usize,
    line: u32,
}

impl<'a> Cursor<'a> {
    fn peek(&self, ahead: usize) -> Option<u8> {
        self.b.get(self.i + ahead).copied()
    }

    /// Advance one byte, counting newlines.
    fn bump(&mut self) {
        if self.peek(0) == Some(b'\n') {
            self.line += 1;
        }
        self.i += 1;
    }

    fn bump_n(&mut self, n: usize) {
        for _ in 0..n {
            self.bump();
        }
    }
}

fn is_ident_start(c: u8) -> bool {
    c == b'_' || c.is_ascii_alphabetic() || c >= 0x80
}

fn is_ident_continue(c: u8) -> bool {
    c == b'_' || c.is_ascii_alphanumeric() || c >= 0x80
}

/// Lex `src` into a loss-free token stream.
pub fn lex(src: &str) -> Vec<Tok> {
    let mut cur = Cursor {
        b: src.as_bytes(),
        i: 0,
        line: 1,
    };
    let mut out = Vec::new();

    // Shebang: only at the very start, and `#!` must not begin an inner
    // attribute (`#![…]` is an attribute, not a shebang).
    if cur.peek(0) == Some(b'#') && cur.peek(1) == Some(b'!') && cur.peek(2) != Some(b'[') {
        let start = 0;
        while cur.peek(0).is_some_and(|c| c != b'\n') {
            cur.bump();
        }
        out.push(Tok {
            kind: TokKind::Shebang,
            start,
            end: cur.i,
            line: 1,
        });
    }

    while let Some(c) = cur.peek(0) {
        let start = cur.i;
        let line = cur.line;
        let kind = match c {
            b' ' | b'\t' | b'\r' | b'\n' => {
                while cur
                    .peek(0)
                    .is_some_and(|c| matches!(c, b' ' | b'\t' | b'\r' | b'\n'))
                {
                    cur.bump();
                }
                TokKind::Whitespace
            }
            b'/' if cur.peek(1) == Some(b'/') => {
                while cur.peek(0).is_some_and(|c| c != b'\n') {
                    cur.bump();
                }
                TokKind::LineComment
            }
            b'/' if cur.peek(1) == Some(b'*') => {
                cur.bump_n(2);
                let mut depth = 1usize;
                while depth > 0 {
                    match (cur.peek(0), cur.peek(1)) {
                        (Some(b'/'), Some(b'*')) => {
                            depth += 1;
                            cur.bump_n(2);
                        }
                        (Some(b'*'), Some(b'/')) => {
                            depth -= 1;
                            cur.bump_n(2);
                        }
                        (Some(_), _) => cur.bump(),
                        (None, _) => break,
                    }
                }
                TokKind::BlockComment
            }
            b'r' | b'b' if raw_str_lookahead(&cur).is_some() => {
                let (prefix, hashes) = raw_str_lookahead(&cur).expect("checked above");
                cur.bump_n(prefix + hashes + 1); // prefix + hashes + opening quote
                lex_raw_str_body(&mut cur, hashes);
                TokKind::RawStr
            }
            b'b' if cur.peek(1) == Some(b'"') => {
                cur.bump(); // b
                lex_str_body(&mut cur);
                TokKind::Str
            }
            b'b' if cur.peek(1) == Some(b'\'') => {
                cur.bump(); // b
                lex_char_body(&mut cur);
                TokKind::Char
            }
            b'r' if cur.peek(1) == Some(b'#') && cur.peek(2).is_some_and(is_ident_start) => {
                // Raw identifier r#name.
                cur.bump_n(2);
                while cur.peek(0).is_some_and(is_ident_continue) {
                    cur.bump();
                }
                TokKind::Ident
            }
            b'"' => {
                lex_str_body(&mut cur);
                TokKind::Str
            }
            b'\'' => lex_quote(&mut cur),
            c if c.is_ascii_digit() => {
                lex_number(&mut cur);
                TokKind::Num
            }
            c if is_ident_start(c) => {
                while cur.peek(0).is_some_and(is_ident_continue) {
                    cur.bump();
                }
                TokKind::Ident
            }
            _ => {
                cur.bump();
                TokKind::Punct
            }
        };
        out.push(Tok {
            kind,
            start,
            end: cur.i,
            line,
        });
    }
    out
}

/// If the cursor sits on `r"`, `r#…#"`, `br"`, or `br#…#"`, return
/// `(prefix_len, hash_count)`.
fn raw_str_lookahead(cur: &Cursor<'_>) -> Option<(usize, usize)> {
    let prefix = match (cur.peek(0), cur.peek(1)) {
        (Some(b'r'), _) => 1,
        (Some(b'b'), Some(b'r')) => 2,
        _ => return None,
    };
    let mut hashes = 0;
    while cur.peek(prefix + hashes) == Some(b'#') {
        hashes += 1;
    }
    (cur.peek(prefix + hashes) == Some(b'"')).then_some((prefix, hashes))
}

/// Consume a raw-string body after the opening quote, until `"` followed by
/// `hashes` hash characters (or end of input).
fn lex_raw_str_body(cur: &mut Cursor<'_>, hashes: usize) {
    while let Some(c) = cur.peek(0) {
        if c == b'"' {
            let closed = (0..hashes).all(|k| cur.peek(1 + k) == Some(b'#'));
            if closed {
                cur.bump_n(1 + hashes);
                return;
            }
        }
        cur.bump();
    }
}

/// Consume a `"…"` body (cursor on the opening quote), honoring escapes.
fn lex_str_body(cur: &mut Cursor<'_>) {
    cur.bump(); // opening quote
    while let Some(c) = cur.peek(0) {
        match c {
            b'\\' => cur.bump_n(2),
            b'"' => {
                cur.bump();
                return;
            }
            _ => cur.bump(),
        }
    }
}

/// Consume a `'…'` body (cursor on the opening quote), honoring escapes.
fn lex_char_body(cur: &mut Cursor<'_>) {
    cur.bump(); // opening quote
    while let Some(c) = cur.peek(0) {
        match c {
            b'\\' => cur.bump_n(2),
            b'\'' => {
                cur.bump();
                return;
            }
            _ => cur.bump(),
        }
    }
}

/// Disambiguate `'` between a char literal and a lifetime/label.
///
/// `'a'` and `'\n'` are chars; `'a`, `'static`, `'_` are lifetimes. The
/// decisive test: after the quote comes an identifier; if the char after
/// that identifier is another quote it was a (single-char-identifier) char
/// literal like `'a'`, otherwise a lifetime.
fn lex_quote(cur: &mut Cursor<'_>) -> TokKind {
    if cur.peek(1) == Some(b'\\') {
        lex_char_body(cur);
        return TokKind::Char;
    }
    if cur.peek(1).is_some_and(is_ident_start) {
        let mut k = 2;
        while cur.peek(k).is_some_and(is_ident_continue) {
            k += 1;
        }
        if cur.peek(k) == Some(b'\'') && k == 2 {
            // 'x' — single-character char literal.
            cur.bump_n(k + 1);
            return TokKind::Char;
        }
        // Lifetime: quote + identifier, no closing quote consumed.
        cur.bump_n(k);
        return TokKind::Lifetime;
    }
    // `'…'` with a non-identifier payload, e.g. '(' or '0'.
    lex_char_body(cur);
    TokKind::Char
}

/// Consume a numeric literal (ints, floats, radix prefixes, suffixes).
/// Deliberately permissive: `1.method()` must not swallow the dot, so a
/// `.` is only consumed when followed by a digit.
fn lex_number(cur: &mut Cursor<'_>) {
    cur.bump();
    while let Some(c) = cur.peek(0) {
        if c.is_ascii_alphanumeric()
            || c == b'_'
            || (c == b'.' && cur.peek(1).is_some_and(|d| d.is_ascii_digit()))
        {
            cur.bump();
        } else if (c == b'+' || c == b'-')
            && matches!(cur.b.get(cur.i.wrapping_sub(1)), Some(b'e') | Some(b'E'))
            && cur.peek(1).is_some_and(|d| d.is_ascii_digit())
        {
            // Float exponent sign: 1e-9.
            cur.bump();
        } else {
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(src: &str) -> Vec<Tok> {
        let toks = lex(src);
        let rebuilt: String = toks.iter().map(|t| &src[t.start..t.end]).collect();
        assert_eq!(rebuilt, src, "lossless round-trip");
        toks
    }

    fn kinds(src: &str) -> Vec<TokKind> {
        roundtrip(src)
            .into_iter()
            .map(|t| t.kind)
            .filter(|k| *k != TokKind::Whitespace)
            .collect()
    }

    #[test]
    fn raw_strings_with_hashes() {
        let toks = kinds(r####"let s = r#"quote " inside"#;"####);
        assert!(toks.contains(&TokKind::RawStr));
        let toks = kinds("let s = br##\"bytes \"# still\"##;");
        assert!(toks.contains(&TokKind::RawStr));
        // A raw string containing what looks like a comment opener.
        let toks = kinds("r\"/* not a comment\"");
        assert_eq!(toks, vec![TokKind::RawStr]);
    }

    #[test]
    fn nested_block_comments() {
        let toks = kinds("/* a /* b */ c */ x");
        assert_eq!(toks, vec![TokKind::BlockComment, TokKind::Ident]);
    }

    #[test]
    fn lifetime_vs_char() {
        assert_eq!(kinds("'a'"), vec![TokKind::Char]);
        assert_eq!(kinds("'\\n'"), vec![TokKind::Char]);
        let v = kinds("&'a str");
        assert_eq!(v, vec![TokKind::Punct, TokKind::Lifetime, TokKind::Ident]);
        assert_eq!(kinds("'static"), vec![TokKind::Lifetime]);
        // Label in a loop.
        let v = kinds("'outer: loop {}");
        assert_eq!(v[0], TokKind::Lifetime);
    }

    #[test]
    fn shebang_only_at_start() {
        let toks = roundtrip("#!/usr/bin/env run\nfn main() {}\n");
        assert_eq!(toks[0].kind, TokKind::Shebang);
        // #![attr] is not a shebang.
        let toks = roundtrip("#![allow(dead_code)]\n");
        assert_eq!(toks[0].kind, TokKind::Punct);
    }

    #[test]
    fn raw_identifiers() {
        assert_eq!(kinds("r#match"), vec![TokKind::Ident]);
        // `r#"` is a raw string, not a raw ident.
        assert_eq!(kinds("r#\"s\"#"), vec![TokKind::RawStr]);
    }

    #[test]
    fn strings_swallow_code_chars() {
        let toks = kinds("let s = \"unsafe { } // not code\";");
        assert_eq!(
            toks,
            vec![
                TokKind::Ident,
                TokKind::Ident,
                TokKind::Punct,
                TokKind::Str,
                TokKind::Punct
            ]
        );
    }

    #[test]
    fn numbers_do_not_eat_method_dots() {
        let toks = kinds("1.max(2)");
        assert_eq!(toks[0], TokKind::Num);
        assert_eq!(toks[1], TokKind::Punct); // the dot
        assert!(kinds("1.5e-9f64") == vec![TokKind::Num]);
        assert!(kinds("0xFF_u8") == vec![TokKind::Num]);
    }

    #[test]
    fn line_numbers_track_newlines() {
        let toks = lex("a\nb\n  c");
        let idents: Vec<(String, u32)> = toks
            .iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| ("a\nb\n  c"[t.start..t.end].to_owned(), t.line))
            .collect();
        assert_eq!(
            idents,
            vec![
                ("a".to_owned(), 1),
                ("b".to_owned(), 2),
                ("c".to_owned(), 3)
            ]
        );
    }

    #[test]
    fn unterminated_constructs_run_to_eof() {
        roundtrip("\"never closed");
        roundtrip("/* never closed");
        roundtrip("r##\"never closed");
    }
}
