//! A lightweight item/expression parser over the lossless token stream.
//!
//! This is not a full Rust grammar — it recovers exactly the structure the
//! protocol lints need:
//!
//! - **items**: functions (free and associated), with their module path,
//!   enclosing `impl`/`trait` type, attributes (`#[cfg(test)]`, `#[test]`,
//!   `#[cfg(feature = "lint-mutants")]`), signature (`self` parameter,
//!   return type text), and body extent;
//! - **body facts** per function: every call expression (free, path,
//!   method, macro), every `let` binding (pattern shape, init extent,
//!   whether the init is `?`-propagated), every `match` expression with its
//!   arm patterns, and every potential panic site (`panic!`-family macros,
//!   `.unwrap()` / `.expect(…)`, non-range `[…]` indexing).
//!
//! The parser is resilient: anything it does not recognize is skipped
//! token-by-token, so unusual constructs degrade to "no facts" rather than
//! errors.

use crate::lexer::{Lexed, Tok, TokKind};

/// How a call expression names its callee.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CallKind {
    /// `foo(…)` — a single-segment call.
    Free,
    /// `a::b::foo(…)` — a multi-segment path call.
    Path,
    /// `.foo(…)` — a method call.
    Method,
    /// `foo!(…)` / `foo![…]` / `foo!{…}` — a macro invocation.
    Macro,
}

/// One call expression inside a function body.
#[derive(Clone, Debug)]
pub struct Call {
    pub kind: CallKind,
    /// Path segments; for `Free`/`Method`/`Macro` this is one segment.
    pub segs: Vec<String>,
    pub line: u32,
    /// Significant-token index of the callee's first segment.
    pub si: usize,
}

impl Call {
    pub fn name(&self) -> &str {
        self.segs.last().map(String::as_str).unwrap_or("")
    }
}

/// The shape of a `let` pattern, as far as the dataflow pass cares.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LetPat {
    /// `let _ = …`
    Wild,
    /// `let name = …` / `let mut name: T = …`
    Ident(String),
    /// Destructuring or anything else.
    Other,
}

/// One `let` statement inside a function body.
#[derive(Clone, Debug)]
pub struct LetStmt {
    pub pat: LetPat,
    pub line: u32,
    /// Significant-token range `[start, end)` of the initializer.
    pub init: (usize, usize),
    /// Whether the initializer contains a `?` operator (propagated).
    pub question: bool,
    /// Significant-token index just past the terminating `;`.
    pub stmt_end: usize,
}

/// One arm of a `match` expression.
#[derive(Clone, Debug)]
pub struct Arm {
    pub line: u32,
    /// The pattern's tokens (guard excluded), joined with spaces.
    pub pat: String,
    /// `_`, or a bare lowercase binding used as a catch-all.
    pub is_catch_all: bool,
}

/// One `match` expression inside a function body.
#[derive(Clone, Debug)]
pub struct MatchExpr {
    pub line: u32,
    pub arms: Vec<Arm>,
}

/// Why a site can panic.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PanicKind {
    /// `panic!` / `todo!` / `unimplemented!`.
    Macro(String),
    Unwrap,
    Expect,
    /// Non-range `[…]` indexing in expression position.
    Index,
}

/// One potential panic site inside a function body.
#[derive(Clone, Debug)]
pub struct PanicSite {
    pub kind: PanicKind,
    pub line: u32,
    pub si: usize,
}

/// A parsed function item.
#[derive(Clone, Debug)]
pub struct FnItem {
    pub name: String,
    /// Inline module path from the file root (not the file's own path).
    pub module: Vec<String>,
    /// Enclosing `impl`/`trait` type name, if any.
    pub impl_type: Option<String>,
    pub line: u32,
    /// In a `#[cfg(test)]` region, `#[test]`-annotated, or in a test file.
    pub is_test: bool,
    /// Behind `#[cfg(feature = "lint-mutants")]` (directly or inherited).
    pub mutant_gated: bool,
    /// Whether the first parameter is a `self` receiver.
    pub has_self: bool,
    /// Return-type text (`""` when the function returns unit).
    pub ret: String,
    /// Significant-token range `[start, end]` of the body braces, if any.
    pub body: Option<(usize, usize)>,
    pub calls: Vec<Call>,
    pub lets: Vec<LetStmt>,
    pub matches: Vec<MatchExpr>,
    pub panics: Vec<PanicSite>,
}

impl FnItem {
    /// `Type::name` when the function is associated, else `name`.
    pub fn qual(&self) -> String {
        match &self.impl_type {
            Some(t) => format!("{t}::{}", self.name),
            None => self.name.clone(),
        }
    }

    /// Calls whose significant-token index lies inside `range`.
    pub fn calls_in(&self, range: (usize, usize)) -> impl Iterator<Item = &Call> {
        self.calls
            .iter()
            .filter(move |c| c.si >= range.0 && c.si < range.1)
    }
}

/// A fully parsed source file.
#[derive(Debug)]
pub struct ParsedFile {
    /// Workspace-relative path with forward slashes.
    pub rel: String,
    /// Owning crate (derived from the path by the workspace loader).
    pub crate_name: String,
    /// Whole file is test code (integration tests, benches).
    pub file_is_test: bool,
    pub lexed: Lexed,
    /// Indexes of significant tokens into `lexed.toks`.
    pub sig: Vec<usize>,
    pub fns: Vec<FnItem>,
}

impl ParsedFile {
    pub fn parse(rel: &str, crate_name: &str, src: &str, file_is_test: bool) -> ParsedFile {
        let lexed = Lexed::new(src);
        let sig = lexed.significant();
        let fns = {
            let mut p = Parser {
                lexed: &lexed,
                sig: &sig,
                file_is_test,
                fns: Vec::new(),
            };
            p.items(0, sig.len(), &ItemCtx::default());
            p.fns
        };
        ParsedFile {
            rel: rel.to_owned(),
            crate_name: crate_name.to_owned(),
            file_is_test,
            lexed,
            sig,
            fns,
        }
    }

    /// Text of significant token `si`.
    pub fn text(&self, si: usize) -> &str {
        self.lexed.text(self.sig[si])
    }

    pub fn tok(&self, si: usize) -> &Tok {
        &self.lexed.toks[self.sig[si]]
    }

    pub fn line(&self, si: usize) -> u32 {
        self.tok(si).line
    }

    /// The function whose body contains significant token `si`.
    pub fn fn_at(&self, si: usize) -> Option<&FnItem> {
        self.fns
            .iter()
            .filter(|f| f.body.is_some_and(|(s, e)| si >= s && si <= e))
            .min_by_key(|f| {
                let (s, e) = f.body.expect("filtered on body presence");
                e - s
            })
    }

    /// Significant-token indexes where the path `segs` (e.g.
    /// `["Ordering", "Relaxed"]`) is referenced, in order.
    pub fn find_path_refs(&self, segs: &[&str]) -> Vec<usize> {
        let mut out = Vec::new();
        'outer: for si in 0..self.sig.len() {
            let mut at = si;
            for (k, seg) in segs.iter().enumerate() {
                if self.tok(at).kind != TokKind::Ident || self.text(at) != *seg {
                    continue 'outer;
                }
                if k + 1 < segs.len() {
                    if !self.is_colcol(at + 1) {
                        continue 'outer;
                    }
                    at += 3;
                    if at >= self.sig.len() {
                        continue 'outer;
                    }
                }
            }
            // Reject when the match is itself preceded by `…::`, i.e. a
            // longer path whose tail happens to coincide.
            if si >= 2 && self.is_colcol(si.saturating_sub(2)) {
                continue;
            }
            out.push(si);
        }
        out
    }

    /// `sig[si]` and `sig[si+1]` are the two colons of a `::`.
    pub fn is_colcol(&self, si: usize) -> bool {
        si + 1 < self.sig.len() && self.text(si) == ":" && self.text(si + 1) == ":"
    }
}

/// Inherited item context while walking nested modules/impls.
#[derive(Clone, Default)]
struct ItemCtx {
    module: Vec<String>,
    impl_type: Option<String>,
    in_test: bool,
    mutant_gated: bool,
}

struct Parser<'a> {
    lexed: &'a Lexed,
    sig: &'a [usize],
    file_is_test: bool,
    fns: Vec<FnItem>,
}

const EXPR_KEYWORDS: &[&str] = &[
    "if", "else", "while", "match", "for", "loop", "return", "break", "continue", "in", "as",
    "move", "let", "fn", "unsafe", "ref", "mut", "dyn", "where", "impl", "use", "pub", "mod",
    "struct", "enum", "trait", "const", "static", "type", "await", "async", "true", "false",
];

impl<'a> Parser<'a> {
    fn text(&self, si: usize) -> &str {
        self.lexed.text(self.sig[si])
    }

    fn kind(&self, si: usize) -> TokKind {
        self.lexed.toks[self.sig[si]].kind
    }

    fn line(&self, si: usize) -> u32 {
        self.lexed.toks[self.sig[si]].line
    }

    fn is(&self, si: usize, s: &str) -> bool {
        si < self.sig.len() && self.text(si) == s
    }

    fn is_colcol(&self, si: usize) -> bool {
        si + 1 < self.sig.len() && self.is(si, ":") && self.is(si + 1, ":")
    }

    /// Skip a balanced `(…)`, `[…]`, or `{…}` group starting at `si`
    /// (which must be an opener). Returns the index just past the closer.
    fn skip_group(&self, si: usize) -> usize {
        let mut depth = 0i64;
        let mut i = si;
        while i < self.sig.len() {
            match self.text(i) {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => {
                    depth -= 1;
                    if depth == 0 {
                        return i + 1;
                    }
                }
                _ => {}
            }
            i += 1;
        }
        i
    }

    /// Skip a balanced `<…>` generic group starting at `si` (on the `<`).
    /// Bracket groups inside are skipped wholesale.
    fn skip_angles(&self, si: usize) -> usize {
        let mut depth = 0i64;
        let mut i = si;
        while i < self.sig.len() {
            match self.text(i) {
                "<" => {
                    depth += 1;
                    i += 1;
                }
                ">" => {
                    depth -= 1;
                    i += 1;
                    if depth <= 0 {
                        return i;
                    }
                }
                "(" | "[" | "{" => i = self.skip_group(i),
                "-" if self.is(i + 1, ">") => i += 2, // `->` in fn types
                _ => i += 1,
            }
        }
        i
    }

    /// Parse the items in `[start, end)` under `ctx`.
    fn items(&mut self, start: usize, end: usize, ctx: &ItemCtx) {
        let mut i = start;
        while i < end {
            // Attributes: accumulate until a non-attribute token.
            let mut attr_test = false;
            let mut attr_mutant = false;
            while self.is(i, "#") {
                let open = if self.is(i + 1, "!") { i + 2 } else { i + 1 };
                if !self.is(open, "[") {
                    break;
                }
                let close = self.skip_group(open);
                let attr: String =
                    (open..close).map(|k| self.text(k)).collect::<Vec<_>>()[..].join(" ");
                if attr.contains("cfg") && contains_word(&attr, "test") {
                    attr_test = true;
                }
                if contains_word(&attr, "test") && !attr.contains("cfg") {
                    // #[test], #[tokio::test]-style.
                    attr_test = true;
                }
                if attr.contains("lint-mutants") {
                    attr_mutant = true;
                }
                i = close;
            }

            if i >= end {
                break;
            }
            let t = self.text(i).to_owned();
            match t.as_str() {
                "pub" => {
                    i += 1;
                    if self.is(i, "(") {
                        i = self.skip_group(i);
                    }
                    // Re-loop without consuming the accumulated attrs: push
                    // them forward by handling the item inline.
                    i = self.item_after_modifiers(i, end, ctx, attr_test, attr_mutant);
                }
                "fn" | "const" | "static" | "async" | "unsafe" | "extern" | "default" => {
                    i = self.item_after_modifiers(i, end, ctx, attr_test, attr_mutant);
                }
                "mod" => {
                    i = self.parse_mod(i, ctx, attr_test, attr_mutant);
                }
                "impl" | "trait" => {
                    i = self.parse_impl_or_trait(i, ctx, attr_test, attr_mutant);
                }
                "struct" | "enum" | "union" | "type" | "use" => {
                    i = self.skip_to_semi_or_block(i + 1);
                }
                "macro_rules" => {
                    // macro_rules! name { … }
                    let mut j = i + 1;
                    while j < end && !self.is(j, "{") && !self.is(j, "(") {
                        j += 1;
                    }
                    i = if j < end { self.skip_group(j) } else { end };
                }
                "{" | "(" | "[" => i = self.skip_group(i),
                _ => i += 1,
            }
        }
    }

    /// Handle an item that may start with `pub`/`const`/`async`/`unsafe`/
    /// `extern "C"` modifiers before the defining keyword.
    fn item_after_modifiers(
        &mut self,
        mut i: usize,
        end: usize,
        ctx: &ItemCtx,
        attr_test: bool,
        attr_mutant: bool,
    ) -> usize {
        // Consume modifier keywords until the defining keyword.
        loop {
            if i >= end {
                return i;
            }
            match self.text(i) {
                "const" | "async" | "unsafe" | "default" => i += 1,
                "extern" => {
                    i += 1;
                    if i < end && self.kind(i) == TokKind::Str {
                        i += 1;
                    }
                    // `extern "C" { … }` foreign block (no fn bodies inside).
                    if self.is(i, "{") {
                        return self.skip_group(i);
                    }
                    // `extern crate name;`
                    if self.is(i, "crate") {
                        return self.skip_to_semi_or_block(i);
                    }
                }
                "fn" => return self.parse_fn(i, ctx, attr_test, attr_mutant),
                "mod" => return self.parse_mod(i, ctx, attr_test, attr_mutant),
                "impl" | "trait" => {
                    return self.parse_impl_or_trait(i, ctx, attr_test, attr_mutant)
                }
                "struct" | "enum" | "union" | "type" | "use" => {
                    return self.skip_to_semi_or_block(i + 1)
                }
                // `pub const NAME: … = …;` / `pub static …;`
                "static" => return self.skip_to_semi_or_block(i + 1),
                _ => return self.skip_to_semi_or_block(i),
            }
        }
    }

    /// Skip to the `;` ending a simple item, treating a `{…}` body (e.g.
    /// `struct S { … }`) as the terminator when it comes first.
    fn skip_to_semi_or_block(&self, mut i: usize) -> usize {
        while i < self.sig.len() {
            match self.text(i) {
                ";" => return i + 1,
                "{" => {
                    let past = self.skip_group(i);
                    // `struct S { … }` ends here; `const X: T = { … };`
                    // continues to the `;`.
                    if self.is(past, ";") {
                        return past + 1;
                    }
                    return past;
                }
                "(" | "[" => i = self.skip_group(i),
                "<" => i = self.skip_angles(i),
                _ => i += 1,
            }
        }
        i
    }

    fn parse_mod(&mut self, i: usize, ctx: &ItemCtx, attr_test: bool, attr_mutant: bool) -> usize {
        // `mod name { … }` or `mod name;`
        let name_at = i + 1;
        if name_at >= self.sig.len() || self.kind(name_at) != TokKind::Ident {
            return i + 1;
        }
        let name = self.text(name_at).to_owned();
        let mut j = name_at + 1;
        if self.is(j, ";") {
            return j + 1;
        }
        if self.is(j, "{") {
            let close = self.skip_group(j);
            let mut inner = ctx.clone();
            inner.module.push(name);
            inner.in_test |= attr_test;
            inner.mutant_gated |= attr_mutant;
            self.items(j + 1, close - 1, &inner);
            return close;
        }
        j += 1;
        j
    }

    fn parse_impl_or_trait(
        &mut self,
        i: usize,
        ctx: &ItemCtx,
        attr_test: bool,
        attr_mutant: bool,
    ) -> usize {
        // Header: from the keyword to the opening `{` (or `;` for a
        // declaration-only form).
        let mut j = i + 1;
        let mut header: Vec<usize> = Vec::new();
        while j < self.sig.len() {
            match self.text(j) {
                "{" => break,
                ";" => return j + 1,
                "<" => {
                    let past = self.skip_angles(j);
                    j = past;
                }
                "(" | "[" => j = self.skip_group(j),
                _ => {
                    header.push(j);
                    j += 1;
                }
            }
        }
        if j >= self.sig.len() {
            return j;
        }
        // Self type: for `impl Trait for Type` take the first ident after
        // `for`; otherwise the first ident of the header (generics were
        // skipped above and are absent from `header`).
        let type_name = {
            let for_pos = header.iter().position(|&k| self.is(k, "for"));
            let tail: &[usize] = match for_pos {
                Some(p) => &header[p + 1..],
                None => &header[..],
            };
            tail.iter()
                .find(|&&k| self.kind(k) == TokKind::Ident && !self.is(k, "dyn"))
                .map(|&k| self.text(k).to_owned())
        };
        let close = self.skip_group(j);
        let mut inner = ctx.clone();
        inner.impl_type = type_name;
        inner.in_test |= attr_test;
        inner.mutant_gated |= attr_mutant;
        self.items(j + 1, close - 1, &inner);
        close
    }

    fn parse_fn(&mut self, i: usize, ctx: &ItemCtx, attr_test: bool, attr_mutant: bool) -> usize {
        let name_at = i + 1;
        if name_at >= self.sig.len() || self.kind(name_at) != TokKind::Ident {
            return i + 1;
        }
        let name = self.text(name_at).to_owned();
        let line = self.line(name_at);
        let mut j = name_at + 1;
        if self.is(j, "<") {
            j = self.skip_angles(j);
        }
        if !self.is(j, "(") {
            return j;
        }
        let params_close = self.skip_group(j);
        // `self` receiver: first non-`&`/lifetime/`mut` token is `self`.
        let has_self = {
            let mut k = j + 1;
            while k < params_close
                && (self.is(k, "&") || self.is(k, "mut") || self.kind(k) == TokKind::Lifetime)
            {
                k += 1;
            }
            self.is(k, "self")
        };
        // Return type: `-> …` until `{`, `;`, or `where`.
        let mut ret = String::new();
        let mut k = params_close;
        if self.is(k, "-") && self.is(k + 1, ">") {
            k += 2;
            let mut parts: Vec<String> = Vec::new();
            while k < self.sig.len() {
                match self.text(k) {
                    "{" | ";" | "where" => break,
                    "<" => {
                        let past = self.skip_angles(k);
                        for m in k..past {
                            parts.push(self.text(m).to_owned());
                        }
                        k = past;
                    }
                    "(" | "[" => {
                        let past = self.skip_group(k);
                        for m in k..past {
                            parts.push(self.text(m).to_owned());
                        }
                        k = past;
                    }
                    _ => {
                        parts.push(self.text(k).to_owned());
                        k += 1;
                    }
                }
            }
            ret = parts.join(" ");
        }
        // `where` clause.
        while k < self.sig.len() && !self.is(k, "{") && !self.is(k, ";") {
            match self.text(k) {
                "<" => k = self.skip_angles(k),
                "(" | "[" => k = self.skip_group(k),
                _ => k += 1,
            }
        }
        let mut item = FnItem {
            name,
            module: ctx.module.clone(),
            impl_type: ctx.impl_type.clone(),
            line,
            is_test: self.file_is_test || ctx.in_test || attr_test,
            mutant_gated: ctx.mutant_gated || attr_mutant,
            has_self,
            ret,
            body: None,
            calls: Vec::new(),
            lets: Vec::new(),
            matches: Vec::new(),
            panics: Vec::new(),
        };
        if self.is(k, ";") {
            self.fns.push(item);
            return k + 1;
        }
        if self.is(k, "{") {
            let close = self.skip_group(k);
            item.body = Some((k, close - 1));
            self.scan_body(&mut item, k + 1, close - 1);
            self.fns.push(item);
            return close;
        }
        self.fns.push(item);
        k
    }

    /// Linear scan of a function body `[start, end)` collecting calls,
    /// lets, matches, and panic sites. Nested groups are *not* skipped —
    /// every token is visited once, so facts inside closures, blocks, and
    /// match arms are attributed to the enclosing function.
    fn scan_body(&self, item: &mut FnItem, start: usize, end: usize) {
        let mut i = start;
        while i < end {
            // Statement-level attributes.
            if self.is(i, "#") && self.is(i + 1, "[") {
                i = self.skip_group(i + 1);
                continue;
            }
            let kind = self.kind(i);
            let text = self.text(i);

            if kind == TokKind::Ident && text == "let" {
                if let Some(stmt) = self.parse_let(i, end) {
                    item.lets.push(stmt);
                }
                i += 1;
                continue;
            }
            if kind == TokKind::Ident && text == "match" {
                if let Some(m) = self.parse_match(i, end) {
                    item.matches.push(m);
                }
                i += 1;
                continue;
            }
            if kind == TokKind::Ident && !EXPR_KEYWORDS.contains(&text) {
                if let Some((call, next)) = self.parse_callish(i) {
                    match &call.kind {
                        CallKind::Macro => {
                            let n = call.name();
                            if matches!(n, "panic" | "todo" | "unimplemented") {
                                item.panics.push(PanicSite {
                                    kind: PanicKind::Macro(n.to_owned()),
                                    line: call.line,
                                    si: call.si,
                                });
                            }
                        }
                        CallKind::Method => match call.name() {
                            "unwrap" => item.panics.push(PanicSite {
                                kind: PanicKind::Unwrap,
                                line: call.line,
                                si: call.si,
                            }),
                            "expect" => item.panics.push(PanicSite {
                                kind: PanicKind::Expect,
                                line: call.line,
                                si: call.si,
                            }),
                            _ => {}
                        },
                        _ => {}
                    }
                    item.calls.push(call);
                    i = next;
                    continue;
                }
            }
            // Expression-position indexing: `expr[…]` with no `..` inside.
            if text == "[" && i > start {
                let prev_kind = self.kind(i - 1);
                let prev_text = self.text(i - 1);
                let exprish = matches!(prev_kind, TokKind::Ident | TokKind::Num)
                    && !EXPR_KEYWORDS.contains(&prev_text)
                    || prev_text == ")"
                    || prev_text == "]";
                if exprish {
                    let close = self.skip_group(i);
                    let mut depth = 0i64;
                    let mut has_range = false;
                    for k in i + 1..close.saturating_sub(1) {
                        match self.text(k) {
                            "(" | "[" | "{" => depth += 1,
                            ")" | "]" | "}" => depth -= 1,
                            "." if depth == 0 && self.is(k + 1, ".") => has_range = true,
                            _ => {}
                        }
                    }
                    if !has_range {
                        item.panics.push(PanicSite {
                            kind: PanicKind::Index,
                            line: self.line(i),
                            si: i,
                        });
                    }
                }
                i += 1;
                continue;
            }
            i += 1;
        }
    }

    /// At an identifier: try to read a (possibly pathed, possibly turbofish)
    /// call or macro invocation. Returns the call and the index to resume at
    /// (just past the callee name — arguments are scanned by the caller).
    fn parse_callish(&self, i: usize) -> Option<(Call, usize)> {
        let is_method = i > 0 && self.is(i - 1, ".");
        let mut segs = vec![self.text(i).to_owned()];
        let mut j = i;
        if !is_method {
            while self.is_colcol(j + 1)
                && j + 3 < self.sig.len()
                && self.kind(j + 3) == TokKind::Ident
            {
                segs.push(self.text(j + 3).to_owned());
                j += 3;
            }
        }
        let mut after = j + 1;
        // Turbofish: `name::<…>(…)`.
        if self.is_colcol(after) && self.is(after + 2, "<") {
            after = self.skip_angles(after + 2);
        }
        // Macro: `name!(…)` / `name![…]` / `name!{…}`.
        if segs.len() == 1 && self.is(after, "!") {
            let opener = after + 1;
            if self.is(opener, "(") || self.is(opener, "[") || self.is(opener, "{") {
                return Some((
                    Call {
                        kind: CallKind::Macro,
                        segs,
                        line: self.line(i),
                        si: i,
                    },
                    after + 1,
                ));
            }
            return None;
        }
        if !self.is(after, "(") {
            return None;
        }
        let kind = if is_method {
            CallKind::Method
        } else if segs.len() > 1 {
            CallKind::Path
        } else {
            CallKind::Free
        };
        Some((
            Call {
                kind,
                segs,
                line: self.line(i),
                si: i,
            },
            after,
        ))
    }

    fn parse_let(&self, i: usize, end: usize) -> Option<LetStmt> {
        let line = self.line(i);
        let mut j = i + 1;
        while self.is(j, "mut") {
            j += 1;
        }
        let pat = if self.is(j, "_") && (self.is(j + 1, "=") || self.is(j + 1, ":")) {
            j += 1;
            LetPat::Wild
        } else if j < end
            && self.kind(j) == TokKind::Ident
            && (self.is(j + 1, "=") || self.is(j + 1, ":"))
            && !self.is_colcol(j + 1)
        {
            let name = self.text(j).to_owned();
            j += 1;
            LetPat::Ident(name)
        } else {
            // Destructuring: advance to the `=` at depth 0.
            let mut depth = 0i64;
            while j < end {
                match self.text(j) {
                    "(" | "[" | "{" => depth += 1,
                    ")" | "]" | "}" => depth -= 1,
                    "=" if depth == 0 && !self.is(j + 1, "=") => break,
                    ";" if depth == 0 => return None, // `let x;` — no init
                    "<" => {
                        j = self.skip_angles(j);
                        continue;
                    }
                    _ => {}
                }
                j += 1;
            }
            LetPat::Other
        };
        // Optional type annotation.
        if self.is(j, ":") && !self.is_colcol(j) {
            j += 1;
            let mut depth = 0i64;
            while j < end {
                match self.text(j) {
                    "(" | "[" | "{" => depth += 1,
                    ")" | "]" | "}" => depth -= 1,
                    "=" if depth == 0 => break,
                    ";" if depth == 0 => return None,
                    "<" => {
                        j = self.skip_angles(j);
                        continue;
                    }
                    _ => {}
                }
                j += 1;
            }
        }
        if !self.is(j, "=") {
            return None;
        }
        let init_start = j + 1;
        // Initializer runs to the `;` at depth 0 (let-else blocks and
        // nested statements are inside balanced braces).
        let mut depth = 0i64;
        let mut k = init_start;
        let mut question = false;
        while k < end {
            match self.text(k) {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => depth -= 1,
                "?" => question = true,
                ";" if depth == 0 => break,
                _ => {}
            }
            k += 1;
        }
        Some(LetStmt {
            pat,
            line,
            init: (init_start, k),
            question,
            // Just past the `;`; an unterminated statement (truncated
            // input) ends at the region boundary instead of past it.
            stmt_end: if k < end { k + 1 } else { k },
        })
    }

    fn parse_match(&self, i: usize, end: usize) -> Option<MatchExpr> {
        let line = self.line(i);
        // Scrutinee: to the `{` at depth 0 (struct literals are not legal
        // in scrutinee position without parens).
        let mut j = i + 1;
        let mut depth = 0i64;
        while j < end {
            match self.text(j) {
                "(" | "[" => depth += 1,
                ")" | "]" => depth -= 1,
                "{" if depth == 0 => break,
                ";" if depth == 0 => return None, // not a match expr
                _ => {}
            }
            j += 1;
        }
        if !self.is(j, "{") {
            return None;
        }
        let close = self.skip_group(j);
        let mut arms = Vec::new();
        let mut k = j + 1;
        while k < close - 1 {
            // Skip arm-level attributes and stray commas.
            if self.is(k, ",") {
                k += 1;
                continue;
            }
            if self.is(k, "#") && self.is(k + 1, "[") {
                k = self.skip_group(k + 1);
                continue;
            }
            // Pattern: until `=>` at depth 0.
            let pat_start = k;
            let mut depth = 0i64;
            let mut pat_toks: Vec<String> = Vec::new();
            let mut guard_at: Option<usize> = None;
            while k < close - 1 {
                let t = self.text(k);
                match t {
                    "(" | "[" | "{" => depth += 1,
                    ")" | "]" | "}" => depth -= 1,
                    "=" if depth == 0 && self.is(k + 1, ">") => break,
                    "if" if depth == 0 && guard_at.is_none() => guard_at = Some(k),
                    _ => {}
                }
                if guard_at.is_none() {
                    pat_toks.push(t.to_owned());
                }
                k += 1;
            }
            if k >= close - 1 {
                break;
            }
            let is_catch_all = pat_toks == ["_"]
                || (pat_toks.len() == 1
                    && self.kind(pat_start) == TokKind::Ident
                    && pat_toks[0]
                        .chars()
                        .next()
                        .is_some_and(|c| c.is_ascii_lowercase())
                    && !EXPR_KEYWORDS.contains(&pat_toks[0].as_str()));
            arms.push(Arm {
                line: self.line(pat_start),
                pat: pat_toks.join(" ").replace(": :", "::"),
                is_catch_all,
            });
            k += 2; // past `=>`
                    // Arm body: a block (ends after it), or to the `,` at depth 0.
            if self.is(k, "{") {
                k = self.skip_group(k);
            } else {
                let mut depth = 0i64;
                while k < close - 1 {
                    match self.text(k) {
                        "(" | "[" | "{" => depth += 1,
                        ")" | "]" | "}" => depth -= 1,
                        "," if depth == 0 => break,
                        _ => {}
                    }
                    k += 1;
                }
            }
        }
        Some(MatchExpr { line, arms })
    }
}

/// `hay` contains `word` delimited by non-identifier characters.
pub fn contains_word(hay: &str, word: &str) -> bool {
    let bytes = hay.as_bytes();
    let is_ident = |c: u8| c == b'_' || c.is_ascii_alphanumeric();
    let mut start = 0;
    while let Some(pos) = hay[start..].find(word) {
        let i = start + pos;
        let j = i + word.len();
        let before_ok = i == 0 || !is_ident(bytes[i - 1]);
        let after_ok = j >= bytes.len() || !is_ident(bytes[j]);
        if before_ok && after_ok {
            return true;
        }
        start = i + 1;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(src: &str) -> ParsedFile {
        ParsedFile::parse("crates/x/src/lib.rs", "x", src, false)
    }

    #[test]
    fn finds_free_and_impl_fns() {
        let p = parse(
            "fn alpha() {}\n\
             struct S;\n\
             impl S {\n    pub fn beta(&self) -> u32 { 1 }\n}\n\
             impl Clone for S {\n    fn clone(&self) -> S { S }\n}\n",
        );
        let names: Vec<String> = p.fns.iter().map(|f| f.qual()).collect();
        assert_eq!(names, vec!["alpha", "S::beta", "S::clone"]);
        assert!(p.fns[1].has_self);
        assert_eq!(p.fns[1].ret, "u32");
        assert!(!p.fns[0].has_self);
    }

    #[test]
    fn cfg_test_modules_mark_fns_as_test() {
        let p = parse(
            "fn prod() {}\n\
             #[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { prod(); }\n}\n",
        );
        assert!(!p.fns[0].is_test);
        assert!(p.fns[1].is_test);
    }

    #[test]
    fn mutant_gate_attribute_is_inherited() {
        let p = parse(
            "#[cfg(feature = \"lint-mutants\")]\nmod m {\n    pub fn seeded() {}\n}\n\
             fn normal() {}\n",
        );
        assert!(p.fns[0].mutant_gated);
        assert!(!p.fns[1].mutant_gated);
    }

    #[test]
    fn calls_are_classified() {
        let p = parse(
            "fn f() {\n    helper();\n    veloc::Client::init(c, 0, cfg);\n    \
             x.method(1);\n    writeln!(out, \"x\");\n    v.collect::<Vec<_>>();\n}\n",
        );
        let f = &p.fns[0];
        let kinds: Vec<(CallKind, &str)> = f.calls.iter().map(|c| (c.kind, c.name())).collect();
        assert!(kinds.contains(&(CallKind::Free, "helper")));
        assert!(kinds.contains(&(CallKind::Path, "init")));
        assert!(kinds.contains(&(CallKind::Method, "method")));
        assert!(kinds.contains(&(CallKind::Macro, "writeln")));
        assert!(kinds.contains(&(CallKind::Method, "collect")));
        let path = f.calls.iter().find(|c| c.kind == CallKind::Path).unwrap();
        assert_eq!(path.segs, vec!["veloc", "Client", "init"]);
    }

    #[test]
    fn lets_and_question_marks() {
        let p = parse(
            "fn f() -> Result<(), E> {\n    let _ = fallible();\n    let a = fallible()?;\n    \
             let used = fallible();\n    used.ok();\n    let (x, y) = pair();\n    Ok(())\n}\n",
        );
        let f = &p.fns[0];
        assert_eq!(f.lets.len(), 4);
        assert_eq!(f.lets[0].pat, LetPat::Wild);
        assert!(!f.lets[0].question);
        assert_eq!(f.lets[1].pat, LetPat::Ident("a".into()));
        assert!(f.lets[1].question);
        assert_eq!(f.lets[2].pat, LetPat::Ident("used".into()));
        assert_eq!(f.lets[3].pat, LetPat::Other);
    }

    #[test]
    fn match_arms_and_catch_alls() {
        let p = parse(
            "fn f(e: E) {\n    match e {\n        E::A => {}\n        E::B { x } if x > 0 => {}\n        \
             _ => {}\n    }\n    match e {\n        E::A => 1,\n        other => 2,\n    };\n}\n",
        );
        let f = &p.fns[0];
        assert_eq!(f.matches.len(), 2);
        let m0 = &f.matches[0];
        assert_eq!(m0.arms.len(), 3);
        assert!(m0.arms[0].pat.contains("E :: A"));
        assert!(!m0.arms[1].is_catch_all); // guarded struct pattern
        assert!(m0.arms[2].is_catch_all); // `_`
        let m1 = &f.matches[1];
        assert!(m1.arms[1].is_catch_all); // bare lowercase binding
    }

    #[test]
    fn nested_matches_are_both_seen() {
        let p = parse(
            "fn f(a: A, b: B) {\n    match a {\n        A::X => match b {\n            B::Y => {}\n            _ => {}\n        },\n        A::Z => {}\n    }\n}\n",
        );
        assert_eq!(p.fns[0].matches.len(), 2);
    }

    #[test]
    fn panic_sites_are_collected() {
        let p = parse(
            "fn f(v: &[u8], i: usize) {\n    v.get(i).unwrap();\n    opt.expect(\"msg\");\n    \
             panic!(\"boom\");\n    let x = v[i];\n    let s = &v[..4];\n    \
             assert!(i > 0);\n    unreachable!();\n}\n",
        );
        let f = &p.fns[0];
        let kinds: Vec<&PanicKind> = f.panics.iter().map(|s| &s.kind).collect();
        assert!(kinds.contains(&&PanicKind::Unwrap));
        assert!(kinds.contains(&&PanicKind::Expect));
        assert!(kinds.contains(&&PanicKind::Macro("panic".into())));
        assert_eq!(
            kinds.iter().filter(|k| ***k == PanicKind::Index).count(),
            1,
            "range slicing is not an index panic site: {kinds:?}"
        );
        // assert!/unreachable! are documented-invariant macros, not sites.
        assert!(!kinds
            .iter()
            .any(|k| matches!(k, PanicKind::Macro(m) if m == "assert")));
    }

    #[test]
    fn closures_attribute_to_enclosing_fn() {
        let p =
            parse("fn f() {\n    run(|x| {\n        inner(x);\n        y.unwrap();\n    });\n}\n");
        let f = &p.fns[0];
        assert!(f.calls.iter().any(|c| c.name() == "inner"));
        assert!(f.panics.iter().any(|s| s.kind == PanicKind::Unwrap));
    }

    #[test]
    fn path_refs_are_found() {
        let p = parse("fn f(a: &AtomicU64) { a.load(Ordering::Relaxed); }\n");
        assert_eq!(p.find_path_refs(&["Ordering", "Relaxed"]).len(), 1);
        assert_eq!(p.find_path_refs(&["std", "thread", "spawn"]).len(), 0);
        let p = parse("fn g() { std::thread::spawn(|| {}); }\n");
        assert_eq!(p.find_path_refs(&["std", "thread", "spawn"]).len(), 1);
        // A longer path does not match its suffix.
        assert_eq!(p.find_path_refs(&["thread", "spawn"]).len(), 0);
    }

    #[test]
    fn fn_at_maps_sites_to_functions() {
        let p = parse("fn a() { one(); }\nfn b() { two(); }\n");
        let call_b = p.fns[1].calls[0].si;
        assert_eq!(p.fn_at(call_b).map(|f| f.name.as_str()), Some("b"));
    }
}
