//! Structured control flow per function, built over the significant-token
//! stream the parser already indexed.
//!
//! The parser ([`crate::parser`]) records *facts* (calls, lets, matches) in
//! token order but deliberately flattens structure: a call inside a match
//! arm and a call after the match are indistinguishable. The path-sensitive
//! analyses (typestate, collective matching) need the structure back, so
//! this module re-walks each function body and produces a tree:
//!
//! - [`Step::Call`] — one call expression (an index into `FnItem::calls`);
//! - [`Step::Branch`] — `if`/`else if`/`else` chains and `match`
//!   expressions, each arm its own [`Block`], with exhaustiveness recorded
//!   (an `if` without `else` has an implicit empty fall-through arm);
//! - [`Step::Loop`] — `loop`/`while`/`for` bodies (condition calls are
//!   folded into the body, iterator expressions precede it);
//! - [`Step::Diverge`] — `return`/`break`/`continue`/`panic!`-family/
//!   `process::exit`: control leaves this block here.
//!
//! Anything unrecognized is walked *transparently* (closures, bare blocks,
//! struct literals), consistent with the parser's attribution of closure
//! bodies to the enclosing function: degraded precision, never lost calls.

use std::collections::HashMap;

use crate::lexer::TokKind;
use crate::parser::{Call, CallKind, FnItem, ParsedFile};

/// A straight-line sequence of steps.
#[derive(Clone, Debug, Default)]
pub struct Block {
    pub steps: Vec<Step>,
}

/// One structured step inside a [`Block`].
#[derive(Clone, Debug)]
pub enum Step {
    /// Index into the owning `FnItem::calls`.
    Call(usize),
    Branch(BranchNode),
    Loop {
        body: Block,
        line: u32,
    },
    /// `return` / `break` / `continue` / `panic!` / `process::exit`.
    Diverge {
        line: u32,
    },
}

/// An `if` chain or `match`: divergent arms of control flow.
#[derive(Clone, Debug)]
pub struct BranchNode {
    pub line: u32,
    /// Condition / scrutinee text (significant tokens joined by spaces);
    /// used by heuristics such as rank-dependence detection.
    pub cond: String,
    pub arms: Vec<Block>,
    /// `match` and `if`/`else` cover all paths; a lone `if` does not (its
    /// implicit fall-through arm is *not* materialized in `arms`).
    pub exhaustive: bool,
}

impl Block {
    /// Control cannot fall out the bottom of this block: it contains a
    /// top-level diverging step, or an exhaustive branch all of whose arms
    /// diverge.
    pub fn diverges(&self) -> bool {
        self.steps.iter().any(|s| match s {
            Step::Diverge { .. } => true,
            Step::Branch(b) => {
                b.exhaustive && !b.arms.is_empty() && b.arms.iter().all(Block::diverges)
            }
            _ => false,
        })
    }
}

/// Macro names whose invocation ends the enclosing path.
const DIVERGING_MACROS: &[&str] = &["panic", "todo", "unimplemented", "unreachable"];

/// Build the control-flow tree for `f`'s body (empty when bodyless).
pub fn build(file: &ParsedFile, f: &FnItem) -> Block {
    let Some((open, close)) = f.body else {
        return Block::default();
    };
    let call_at: HashMap<usize, usize> =
        f.calls.iter().enumerate().map(|(k, c)| (c.si, k)).collect();
    let b = Builder { file, f, call_at };
    let mut steps = Vec::new();
    b.seq(open + 1, close, &mut steps);
    Block { steps }
}

struct Builder<'a> {
    file: &'a ParsedFile,
    f: &'a FnItem,
    /// Significant-token index of a callee's first segment → call index.
    call_at: HashMap<usize, usize>,
}

impl<'a> Builder<'a> {
    fn is(&self, si: usize, s: &str) -> bool {
        si < self.file.sig.len() && self.file.text(si) == s
    }

    fn text_range(&self, range: (usize, usize)) -> String {
        (range.0..range.1.min(self.file.sig.len()))
            .map(|k| self.file.text(k))
            .collect::<Vec<_>>()
            .join(" ")
    }

    /// Emit every call recorded inside `range` as flat [`Step::Call`]s
    /// (used for conditions/scrutinees/guards, where nested branching is
    /// not worth recovering).
    fn calls_as_steps(&self, range: (usize, usize), out: &mut Vec<Step>) {
        for c in self.f.calls_in(range) {
            if let Some(&idx) = self.call_at.get(&c.si) {
                out.push(Step::Call(idx));
            }
        }
    }

    /// Walk `[i, end)` appending steps; nested groups are transparent
    /// except the control-flow keywords handled structurally.
    fn seq(&self, mut i: usize, end: usize, out: &mut Vec<Step>) {
        let end = end.min(self.file.sig.len());
        while i < end {
            if self.is(i, "#") && self.is(i + 1, "[") {
                i = skip_group(self.file, i + 1);
                continue;
            }
            let kind = self.file.tok(i).kind;
            let text = self.file.text(i);
            if kind == TokKind::Ident {
                match text {
                    "if" => {
                        i = self.if_chain(i, end, out);
                        continue;
                    }
                    "match" => {
                        i = self.match_expr(i, end, out);
                        continue;
                    }
                    "loop" => {
                        if self.is(i + 1, "{") {
                            let close = skip_group(self.file, i + 1);
                            let mut body = Vec::new();
                            self.seq(i + 2, close - 1, &mut body);
                            out.push(Step::Loop {
                                body: Block { steps: body },
                                line: self.file.line(i),
                            });
                            i = close;
                            continue;
                        }
                    }
                    "while" => {
                        // `while cond { … }` / `while let pat = expr { … }`:
                        // the condition runs each iteration, so its calls
                        // fold into the loop body's head.
                        let brace = scan_to_brace(self.file, i + 1, end);
                        if self.is(brace, "{") {
                            let close = skip_group(self.file, brace);
                            let mut body = Vec::new();
                            self.calls_as_steps((i + 1, brace), &mut body);
                            self.seq(brace + 1, close - 1, &mut body);
                            out.push(Step::Loop {
                                body: Block { steps: body },
                                line: self.file.line(i),
                            });
                            i = close;
                            continue;
                        }
                    }
                    "for" => {
                        // `for pat in iter { … }`: the iterator expression
                        // evaluates once, before the loop.
                        let brace = scan_to_brace(self.file, i + 1, end);
                        if self.is(brace, "{") {
                            let close = skip_group(self.file, brace);
                            self.calls_as_steps((i + 1, brace), out);
                            let mut body = Vec::new();
                            self.seq(brace + 1, close - 1, &mut body);
                            out.push(Step::Loop {
                                body: Block { steps: body },
                                line: self.file.line(i),
                            });
                            i = close;
                            continue;
                        }
                    }
                    "return" | "break" | "continue" => {
                        let line = self.file.line(i);
                        let stop = scan_to_stmt_end(self.file, i + 1, end);
                        self.calls_as_steps((i + 1, stop), out);
                        out.push(Step::Diverge { line });
                        i = stop;
                        continue;
                    }
                    "else" => {
                        // A bare `else {` here is a `let … else` block: it
                        // either falls through (pattern matched) or runs
                        // the block, which must diverge.
                        if self.is(i + 1, "{") {
                            let close = skip_group(self.file, i + 1);
                            let mut alt = Vec::new();
                            self.seq(i + 2, close - 1, &mut alt);
                            out.push(Step::Branch(BranchNode {
                                line: self.file.line(i),
                                cond: String::from("let-else"),
                                arms: vec![Block::default(), Block { steps: alt }],
                                exhaustive: true,
                            }));
                            i = close;
                            continue;
                        }
                    }
                    _ => {
                        if let Some(&idx) = self.call_at.get(&i) {
                            out.push(Step::Call(idx));
                            let call = &self.f.calls[idx];
                            if diverging_call(call) {
                                out.push(Step::Diverge { line: call.line });
                            }
                            i += 1;
                            continue;
                        }
                    }
                }
            }
            i += 1;
        }
    }

    /// Parse an `if`/`else if`/`else` chain starting at the `if` token.
    /// Returns the index just past the chain.
    fn if_chain(&self, i: usize, end: usize, out: &mut Vec<Step>) -> usize {
        let brace = scan_to_brace(self.file, i + 1, end);
        if !self.is(brace, "{") {
            return i + 1;
        }
        let cond = self.text_range((i + 1, brace));
        self.calls_as_steps((i + 1, brace), out);
        let close = skip_group(self.file, brace);
        let mut then = Vec::new();
        self.seq(brace + 1, close - 1, &mut then);
        let line = self.file.line(i);

        let mut arms = vec![Block { steps: then }];
        let mut exhaustive = false;
        let mut next = close;
        if self.is(close, "else") {
            if self.is(close + 1, "if") {
                let mut tail = Vec::new();
                next = self.if_chain(close + 1, end, &mut tail);
                arms.push(Block { steps: tail });
                exhaustive = true;
            } else if self.is(close + 1, "{") {
                let else_close = skip_group(self.file, close + 1);
                let mut alt = Vec::new();
                self.seq(close + 2, else_close - 1, &mut alt);
                arms.push(Block { steps: alt });
                exhaustive = true;
                next = else_close;
            }
        }
        out.push(Step::Branch(BranchNode {
            line,
            cond,
            arms,
            exhaustive,
        }));
        next
    }

    /// Parse a `match` expression starting at the `match` token. Returns
    /// the index just past it, or `i + 1` when it is not a match
    /// expression after all.
    fn match_expr(&self, i: usize, end: usize, out: &mut Vec<Step>) -> usize {
        let mut j = i + 1;
        let mut depth = 0i64;
        while j < end {
            match self.file.text(j) {
                "(" | "[" => depth += 1,
                ")" | "]" => depth -= 1,
                "{" if depth == 0 => break,
                ";" if depth == 0 => return i + 1,
                _ => {}
            }
            j += 1;
        }
        if !self.is(j, "{") {
            return i + 1;
        }
        let cond = self.text_range((i + 1, j));
        self.calls_as_steps((i + 1, j), out);
        let line = self.file.line(i);
        let close = skip_group(self.file, j);
        let mut arms: Vec<Block> = Vec::new();
        let mut k = j + 1;
        while k < close - 1 {
            if self.is(k, ",") {
                k += 1;
                continue;
            }
            if self.is(k, "#") && self.is(k + 1, "[") {
                k = skip_group(self.file, k + 1);
                continue;
            }
            // Pattern (and optional guard) up to `=>` at depth 0.
            let mut depth = 0i64;
            let mut guard_at: Option<usize> = None;
            while k < close - 1 {
                match self.file.text(k) {
                    "(" | "[" | "{" => depth += 1,
                    ")" | "]" | "}" => depth -= 1,
                    "=" if depth == 0 && self.is(k + 1, ">") => break,
                    "if" if depth == 0 && guard_at.is_none() => guard_at = Some(k),
                    _ => {}
                }
                k += 1;
            }
            if k >= close - 1 {
                break;
            }
            let arrow = k;
            let mut steps = Vec::new();
            // Guard calls run before the arm body on the path that takes
            // this arm (and patterns cannot contain calls, so restricting
            // to the guard range skips tuple-struct patterns).
            if let Some(g) = guard_at {
                self.calls_as_steps((g, arrow), &mut steps);
            }
            k = arrow + 2;
            if self.is(k, "{") {
                let body_close = skip_group(self.file, k);
                self.seq(k + 1, body_close - 1, &mut steps);
                k = body_close;
            } else {
                let start = k;
                let mut depth = 0i64;
                while k < close - 1 {
                    match self.file.text(k) {
                        "(" | "[" | "{" => depth += 1,
                        ")" | "]" | "}" => depth -= 1,
                        "," if depth == 0 => break,
                        _ => {}
                    }
                    k += 1;
                }
                self.seq(start, k, &mut steps);
            }
            arms.push(Block { steps });
        }
        out.push(Step::Branch(BranchNode {
            line,
            cond,
            arms,
            exhaustive: true,
        }));
        close
    }
}

/// `panic!`-family macros and `process::exit`/`process::abort` end the path.
fn diverging_call(call: &Call) -> bool {
    match call.kind {
        CallKind::Macro => DIVERGING_MACROS.contains(&call.name()),
        CallKind::Path => {
            matches!(call.name(), "exit" | "abort")
                && call.segs.len() >= 2
                && call.segs[call.segs.len() - 2] == "process"
        }
        _ => false,
    }
}

/// Skip a balanced `(…)`, `[…]`, or `{…}` group starting at an opener;
/// returns the index just past the closer.
pub(crate) fn skip_group(file: &ParsedFile, si: usize) -> usize {
    let mut depth = 0i64;
    let mut i = si;
    while i < file.sig.len() {
        match file.text(i) {
            "(" | "[" | "{" => depth += 1,
            ")" | "]" | "}" => {
                depth -= 1;
                if depth == 0 {
                    return i + 1;
                }
            }
            _ => {}
        }
        i += 1;
    }
    i
}

/// Scan forward to the `{` at paren/bracket depth 0 (condition/iterator
/// extents; struct literals are not legal there without parens).
fn scan_to_brace(file: &ParsedFile, mut i: usize, end: usize) -> usize {
    let mut depth = 0i64;
    let end = end.min(file.sig.len());
    while i < end {
        match file.text(i) {
            "(" | "[" => depth += 1,
            ")" | "]" => depth -= 1,
            "{" if depth == 0 => return i,
            ";" if depth == 0 => return i,
            _ => {}
        }
        i += 1;
    }
    i
}

/// Scan forward to just past the expression ending at `;` (or the `}` /
/// `,` closing the surrounding block) at depth 0.
fn scan_to_stmt_end(file: &ParsedFile, mut i: usize, end: usize) -> usize {
    let mut depth = 0i64;
    let end = end.min(file.sig.len());
    while i < end {
        match file.text(i) {
            "(" | "[" | "{" => depth += 1,
            ")" | "]" | "}" => {
                if depth == 0 {
                    return i;
                }
                depth -= 1;
            }
            ";" | "," if depth == 0 => return i,
            _ => {}
        }
        i += 1;
    }
    i
}

/// Number of top-level arguments in `call`'s argument list (0 when the
/// list is empty or malformed). Distinguishes `client.checkpoint(name, v)`
/// from the 3-argument region form.
pub fn call_arity(file: &ParsedFile, call: &Call) -> usize {
    // Find the opening `(` (or macro delimiter) after the callee path:
    // `a :: b :: name` spans 3 significant tokens per extra segment.
    let mut after = call.si + 1 + 3 * (call.segs.len() - 1);
    if call.kind == CallKind::Macro {
        after += 1; // past `!`
    } else if file.is_colcol(after) && after + 2 < file.sig.len() && file.text(after + 2) == "<" {
        // Turbofish.
        let mut depth = 0i64;
        let mut k = after + 2;
        after = loop {
            if k >= file.sig.len() {
                break k;
            }
            match file.text(k) {
                "<" => depth += 1,
                ">" => {
                    depth -= 1;
                    if depth <= 0 {
                        break k + 1;
                    }
                }
                "(" | "[" | "{" => {
                    k = skip_group(file, k);
                    continue;
                }
                _ => {}
            }
            k += 1;
        };
    }
    if after >= file.sig.len() || !matches!(file.text(after), "(" | "[" | "{") {
        return 0;
    }
    let close = skip_group(file, after);
    if close <= after + 2 {
        return 0; // `()` or ran off the file
    }
    let mut depth = 0i64;
    let mut commas = 0usize;
    for k in after + 1..close - 1 {
        match file.text(k) {
            "(" | "[" | "{" => depth += 1,
            ")" | "]" | "}" => depth -= 1,
            "," if depth == 0 => commas += 1,
            _ => {}
        }
    }
    let trailing = file.text(close - 2) == ",";
    commas + 1 - usize::from(trailing)
}

/// For a method call `recv.name(…)`, the identifier immediately before
/// the dot (`self.queue.lock()` → `queue`). `None` when the receiver is a
/// call/index result or the call is not a method.
pub fn receiver_ident(file: &ParsedFile, call: &Call) -> Option<String> {
    if call.kind != CallKind::Method || call.si < 2 {
        return None;
    }
    if file.text(call.si - 1) != "." {
        return None;
    }
    let prev = call.si - 2;
    if file.tok(prev).kind == TokKind::Ident
        && !crate::parser::contains_word("if else match return", file.text(prev))
    {
        Some(file.text(prev).to_owned())
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(src: &str) -> ParsedFile {
        ParsedFile::parse("crates/x/src/lib.rs", "x", src, false)
    }

    fn names(f: &FnItem, block: &Block) -> Vec<String> {
        block
            .steps
            .iter()
            .filter_map(|s| match s {
                Step::Call(i) => Some(f.calls[*i].name().to_owned()),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn straight_line_calls_in_order() {
        let p = parse("fn f() { a(); b(); c.d(); }\n");
        let f = &p.fns[0];
        let b = build(&p, f);
        assert_eq!(names(f, &b), vec!["a", "b", "d"]);
    }

    #[test]
    fn if_else_chain_becomes_one_branch() {
        let p = parse(
            "fn f(x: u32) {\n    pre();\n    if x > 0 { a(); } else if x < 5 { b(); } else { c(); }\n    post();\n}\n",
        );
        let f = &p.fns[0];
        let b = build(&p, f);
        assert_eq!(b.steps.len(), 3);
        let Step::Branch(br) = &b.steps[1] else {
            panic!("expected branch, got {:?}", b.steps[1]);
        };
        assert!(br.exhaustive);
        assert_eq!(br.arms.len(), 2);
        assert_eq!(names(f, &br.arms[0]), vec!["a"]);
        // The else-if chain nests: arm 1 is itself a branch of b/c.
        let Step::Branch(inner) = &br.arms[1].steps[0] else {
            panic!("expected nested branch");
        };
        assert_eq!(names(f, &inner.arms[0]), vec!["b"]);
        assert_eq!(names(f, &inner.arms[1]), vec!["c"]);
    }

    #[test]
    fn lone_if_is_not_exhaustive() {
        let p = parse("fn f(x: bool) { if x { a(); } }\n");
        let f = &p.fns[0];
        let b = build(&p, f);
        let Step::Branch(br) = &b.steps[0] else {
            panic!()
        };
        assert!(!br.exhaustive);
        assert_eq!(br.arms.len(), 1);
        assert!(br.cond.contains('x'));
    }

    #[test]
    fn match_arms_with_guard_calls() {
        let p = parse(
            "fn f(e: E) {\n    match scrut(e) {\n        E::A => a(),\n        E::B if check(e) => { b(); }\n        _ => {}\n    }\n}\n",
        );
        let f = &p.fns[0];
        let b = build(&p, f);
        // Scrutinee call hoisted before the branch.
        assert!(matches!(&b.steps[0], Step::Call(i) if f.calls[*i].name() == "scrut"));
        let Step::Branch(br) = &b.steps[1] else {
            panic!()
        };
        assert!(br.exhaustive);
        assert_eq!(br.arms.len(), 3);
        assert_eq!(names(f, &br.arms[0]), vec!["a"]);
        assert_eq!(names(f, &br.arms[1]), vec!["check", "b"]);
        assert!(br.arms[2].steps.is_empty());
    }

    #[test]
    fn loops_and_while_conditions() {
        let p = parse(
            "fn f() {\n    for x in make_iter() { body(x); }\n    while more() { step(); }\n    loop { tick(); break; }\n}\n",
        );
        let f = &p.fns[0];
        let b = build(&p, f);
        assert!(matches!(&b.steps[0], Step::Call(i) if f.calls[*i].name() == "make_iter"));
        let Step::Loop { body, .. } = &b.steps[1] else {
            panic!()
        };
        assert_eq!(names(f, body), vec!["body"]);
        let Step::Loop { body, .. } = &b.steps[2] else {
            panic!()
        };
        assert_eq!(names(f, body), vec!["more", "step"]);
        let Step::Loop { body, .. } = &b.steps[3] else {
            panic!()
        };
        assert!(matches!(body.steps[1], Step::Diverge { .. }));
    }

    #[test]
    fn divergence_detection() {
        let p = parse(
            "fn f(x: bool) {\n    if x { return; } else { panic!(\"no\"); }\n}\n\
             fn g(x: bool) {\n    if x { return; }\n}\n",
        );
        let b = build(&p, &p.fns[0]);
        assert!(b.diverges(), "both arms diverge and the if is exhaustive");
        let b = build(&p, &p.fns[1]);
        assert!(!b.diverges(), "lone if falls through");
    }

    #[test]
    fn return_collects_tail_calls_then_diverges() {
        let p = parse("fn f() -> u32 { return compute(1); }\n");
        let f = &p.fns[0];
        let b = build(&p, f);
        assert!(matches!(&b.steps[0], Step::Call(i) if f.calls[*i].name() == "compute"));
        assert!(matches!(b.steps[1], Step::Diverge { .. }));
    }

    #[test]
    fn call_arity_counts_top_level_args() {
        let p = parse(
            "fn f() {\n    zero();\n    one(a);\n    two(a, b);\n    nested(g(x, y), b);\n    \
             trail(a, b,);\n    region(l, i, |s| { s.go(1, 2); });\n}\n",
        );
        let f = &p.fns[0];
        let by_name = |n: &str| f.calls.iter().find(|c| c.name() == n).unwrap();
        assert_eq!(call_arity(&p, by_name("zero")), 0);
        assert_eq!(call_arity(&p, by_name("one")), 1);
        assert_eq!(call_arity(&p, by_name("two")), 2);
        assert_eq!(call_arity(&p, by_name("nested")), 2);
        assert_eq!(call_arity(&p, by_name("trail")), 2);
        assert_eq!(call_arity(&p, by_name("region")), 3);
        assert_eq!(call_arity(&p, by_name("go")), 2);
    }

    #[test]
    fn receiver_ident_reads_the_field() {
        let p = parse("fn f(s: &S) { s.queue.lock(); helper(); s.inner().lock(); }\n");
        let f = &p.fns[0];
        let lock = &f.calls[0];
        assert_eq!(receiver_ident(&p, lock), Some("queue".into()));
        let helper = f.calls.iter().find(|c| c.name() == "helper").unwrap();
        assert_eq!(receiver_ident(&p, helper), None);
        let second = f.calls.iter().rev().find(|c| c.name() == "lock").unwrap();
        assert_eq!(receiver_ident(&p, second), None, "call-result receiver");
    }

    #[test]
    fn let_else_models_diverging_alternative() {
        let p = parse(
            "fn f(o: Option<u32>) {\n    let Some(x) = o else { return; };\n    use_it(x);\n}\n",
        );
        let f = &p.fns[0];
        let b = build(&p, f);
        let br = b
            .steps
            .iter()
            .find_map(|s| match s {
                Step::Branch(b) => Some(b),
                _ => None,
            })
            .expect("let-else branch");
        assert_eq!(br.arms.len(), 2);
        assert!(br.arms[1].diverges());
        assert!(!b.diverges(), "fall-through arm continues");
    }
}
