//! Workspace call graph over the parsed files.
//!
//! Name resolution is heuristic — there is no type information — but tuned
//! to err toward *over*-approximation for reachability lints (a call may
//! resolve to several same-named candidates) while avoiding the classic
//! false-positive traps:
//!
//! - qualified calls (`Type::new`, `module::helper`) only resolve to
//!   functions whose impl type / crate / module actually matches the
//!   qualifier, so `CaptureSession::new` never resolves to an unrelated
//!   `Foo::new`;
//! - method calls (`.restore(…)`) resolve to same-named `self`-taking
//!   methods, within the caller's crate by default and workspace-wide in
//!   deep mode;
//! - test functions and `lint-mutants`-gated functions are excluded from
//!   the graph unless explicitly requested.

use std::collections::{HashMap, HashSet, VecDeque};

use crate::parser::{Call, CallKind, FnItem, ParsedFile};

/// Stable identifier of a function: (file index, fn index within file).
pub type FnId = (usize, usize);

/// The parsed workspace: every `.rs` file the analyzer looked at.
pub struct Workspace {
    /// Filesystem root the workspace was loaded from (`None` for
    /// synthetic workspaces — fixtures and unit tests). `effect-drift`
    /// reads the committed `effects-inventory.json` relative to it.
    pub root: Option<std::path::PathBuf>,
    pub files: Vec<ParsedFile>,
}

impl Workspace {
    pub fn fns(&self) -> impl Iterator<Item = (FnId, &FnItem)> {
        self.files
            .iter()
            .enumerate()
            .flat_map(|(fi, f)| f.fns.iter().enumerate().map(move |(gi, g)| ((fi, gi), g)))
    }

    pub fn fn_item(&self, id: FnId) -> &FnItem {
        &self.files[id.0].fns[id.1]
    }

    pub fn file(&self, id: FnId) -> &ParsedFile {
        &self.files[id.0]
    }
}

/// Name-resolution / traversal options.
#[derive(Clone, Copy, Default)]
pub struct GraphOpts {
    /// Resolve method and free calls across crate boundaries
    /// (`LINT_DEEP=1`); default keeps them within the caller's crate.
    pub deep: bool,
    /// Include `#[cfg(feature = "lint-mutants")]` functions (the seeded
    /// violations used by the mutant self-test).
    pub include_mutants: bool,
}

/// Per-call name resolution against the workspace's candidate index.
pub struct Resolver<'a> {
    ws: &'a Workspace,
    by_name: HashMap<&'a str, Vec<FnId>>,
    opts: GraphOpts,
}

impl<'a> Resolver<'a> {
    pub fn new(ws: &'a Workspace, opts: GraphOpts) -> Resolver<'a> {
        let mut by_name: HashMap<&str, Vec<FnId>> = HashMap::new();
        for (id, f) in ws.fns() {
            if f.is_test {
                continue;
            }
            if f.mutant_gated && !opts.include_mutants {
                continue;
            }
            by_name.entry(f.name.as_str()).or_default().push(id);
        }
        Resolver { ws, by_name, opts }
    }

    /// Candidate callees of `call` as made from function `caller`.
    pub fn resolve(&self, caller: FnId, call: &Call) -> Vec<FnId> {
        let caller_crate = self.ws.file(caller).crate_name.as_str();
        let mut out = Vec::new();
        resolve(
            self.ws,
            &self.by_name,
            caller_crate,
            caller.0,
            call,
            self.opts,
            &mut out,
        );
        out
    }
}

pub struct CallGraph {
    /// Adjacency: caller → resolved callees.
    pub edges: HashMap<FnId, Vec<FnId>>,
}

impl CallGraph {
    pub fn build(ws: &Workspace, opts: GraphOpts) -> CallGraph {
        let resolver = Resolver::new(ws, opts);
        let mut edges: HashMap<FnId, Vec<FnId>> = HashMap::new();
        for (id, f) in ws.fns() {
            if f.mutant_gated && !opts.include_mutants {
                continue;
            }
            let mut out: Vec<FnId> = Vec::new();
            for call in &f.calls {
                out.extend(resolver.resolve(id, call));
            }
            out.sort_unstable();
            out.dedup();
            edges.insert(id, out);
        }
        CallGraph { edges }
    }

    /// All functions reachable from `roots` (inclusive).
    pub fn reachable(&self, roots: &[FnId]) -> HashSet<FnId> {
        let mut seen: HashSet<FnId> = roots.iter().copied().collect();
        let mut queue: VecDeque<FnId> = roots.iter().copied().collect();
        while let Some(id) = queue.pop_front() {
            if let Some(next) = self.edges.get(&id) {
                for &n in next {
                    if seen.insert(n) {
                        queue.push_back(n);
                    }
                }
            }
        }
        seen
    }
}

fn resolve(
    ws: &Workspace,
    by_name: &HashMap<&str, Vec<FnId>>,
    caller_crate: &str,
    caller_file: usize,
    call: &Call,
    opts: GraphOpts,
    out: &mut Vec<FnId>,
) {
    let name = call.name();
    let Some(cands) = by_name.get(name) else {
        return;
    };
    match call.kind {
        CallKind::Macro => {}
        CallKind::Method => {
            // `.name(…)`: same-named `self`-taking methods. Same crate
            // unless deep.
            for &c in cands {
                let g = ws.fn_item(c);
                if !g.has_self {
                    continue;
                }
                if !opts.deep && ws.file(c).crate_name != caller_crate {
                    continue;
                }
                out.push(c);
            }
        }
        CallKind::Free => {
            // `name(…)`: free functions; prefer same file, then same crate,
            // then (deep) workspace.
            let same_file: Vec<FnId> = cands
                .iter()
                .copied()
                .filter(|&c| !ws.fn_item(c).has_self && c.0 == caller_file)
                .collect();
            if !same_file.is_empty() {
                out.extend(same_file);
                return;
            }
            for &c in cands {
                let g = ws.fn_item(c);
                if g.has_self {
                    continue;
                }
                if !opts.deep && ws.file(c).crate_name != caller_crate {
                    continue;
                }
                out.push(c);
            }
        }
        CallKind::Path => {
            // `a::b::name(…)`: the qualifier just before the name must
            // match the callee's impl type, crate, or module. `self`,
            // `crate`, and `super` qualify within the caller's crate.
            let qual = &call.segs[call.segs.len() - 2];
            for &c in cands {
                let g = ws.fn_item(c);
                let callee_crate = ws.file(c).crate_name.as_str();
                let matches = if qual == "self" || qual == "crate" || qual == "super" {
                    callee_crate == caller_crate
                } else if qual
                    .chars()
                    .next()
                    .is_some_and(|ch| ch.is_ascii_uppercase())
                {
                    // `Type::name` — impl type must match exactly.
                    g.impl_type.as_deref() == Some(qual.as_str())
                } else {
                    // `module::name` / `crate_name::name`.
                    let norm = qual.replace('-', "_");
                    callee_crate.replace('-', "_") == norm
                        || g.module.contains(&norm)
                        || ws.file(c).rel.contains(&format!("/{norm}"))
                };
                if !matches {
                    continue;
                }
                // Crate-qualified calls cross crates by design; other
                // qualifiers stay within the crate unless deep.
                let crate_qualified = callee_crate.replace('-', "_") == qual.replace('-', "_");
                if !opts.deep && !crate_qualified && callee_crate != caller_crate {
                    continue;
                }
                out.push(c);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ws(files: &[(&str, &str, &str)]) -> Workspace {
        Workspace {
            root: None,
            files: files
                .iter()
                .map(|(rel, krate, src)| ParsedFile::parse(rel, krate, src, false))
                .collect(),
        }
    }

    fn id_of(ws: &Workspace, name: &str) -> FnId {
        ws.fns()
            .find(|(_, f)| f.name == name)
            .map(|(id, _)| id)
            .unwrap_or_else(|| panic!("no fn named {name}"))
    }

    #[test]
    fn free_call_prefers_same_file() {
        let ws = ws(&[
            (
                "crates/a/src/lib.rs",
                "a",
                "fn top() { helper(); }\nfn helper() {}\n",
            ),
            ("crates/a/src/other.rs", "a", "fn helper() {}\n"),
        ]);
        let g = CallGraph::build(&ws, GraphOpts::default());
        let top = id_of(&ws, "top");
        assert_eq!(g.edges[&top], vec![(0, 1)]);
    }

    #[test]
    fn qualified_call_requires_matching_impl_type() {
        let ws = ws(&[(
            "crates/a/src/lib.rs",
            "a",
            "struct S; struct T;\n\
             impl S { fn new() -> S { S } }\n\
             impl T { fn new() -> T { T } }\n\
             fn top() { let _s = S::new(); }\n",
        )]);
        let g = CallGraph::build(&ws, GraphOpts::default());
        let top = id_of(&ws, "top");
        let callees = &g.edges[&top];
        assert_eq!(callees.len(), 1);
        assert_eq!(ws.fn_item(callees[0]).qual(), "S::new");
    }

    #[test]
    fn method_calls_stay_in_crate_unless_deep() {
        let files = [
            (
                "crates/a/src/lib.rs",
                "a",
                "struct S;\nimpl S { fn go(&self) {} }\nfn top(s: &S) { s.go(); }\n",
            ),
            (
                "crates/b/src/lib.rs",
                "b",
                "struct R;\nimpl R { fn go(&self) {} }\n",
            ),
        ];
        let ws = ws(&files);
        let top = id_of(&ws, "top");
        let shallow = CallGraph::build(&ws, GraphOpts::default());
        assert_eq!(shallow.edges[&top].len(), 1);
        let deep = CallGraph::build(
            &ws,
            GraphOpts {
                deep: true,
                ..Default::default()
            },
        );
        assert_eq!(deep.edges[&top].len(), 2);
    }

    #[test]
    fn crate_qualified_calls_cross_crates() {
        let ws = ws(&[
            (
                "crates/app/src/lib.rs",
                "app",
                "fn top() { fenix::run(); }\n",
            ),
            ("crates/fenix/src/lib.rs", "fenix", "pub fn run() {}\n"),
        ]);
        let g = CallGraph::build(&ws, GraphOpts::default());
        let top = id_of(&ws, "top");
        assert_eq!(g.edges[&top], vec![(1, 0)]);
    }

    #[test]
    fn cross_module_and_trait_method_calls() {
        // The fixture-crate shape the satellite task asks for: a call into a
        // sibling module plus a trait method dispatched through `&self`.
        let ws = ws(&[(
            "crates/fixture/src/main.rs",
            "fixture",
            "mod util { pub fn helper() {} }\n\
                 fn main() { util::helper(); run_trait(); }\n\
                 trait Runner { fn exec(&self); }\n\
                 struct R;\n\
                 impl Runner for R { fn exec(&self) { leaf(); } }\n\
                 fn run_trait() { let r = R; r.exec(); }\n\
                 fn leaf() {}\n",
        )]);
        let g = CallGraph::build(&ws, GraphOpts::default());
        let main = id_of(&ws, "main");
        let helper = id_of(&ws, "helper");
        let exec = ws
            .fns()
            .find(|(_, f)| f.name == "exec" && f.body.is_some())
            .map(|(id, _)| id)
            .unwrap();
        let leaf = id_of(&ws, "leaf");
        let reach = g.reachable(&[main]);
        assert!(reach.contains(&helper), "cross-module call resolved");
        assert!(reach.contains(&exec), "trait method call resolved");
        assert!(reach.contains(&leaf), "transitive through trait impl");
    }

    #[test]
    fn tests_and_mutants_are_excluded_by_default() {
        let ws = ws(&[(
            "crates/a/src/lib.rs",
            "a",
            "fn top() { seeded(); }\n\
             #[cfg(feature = \"lint-mutants\")]\nfn seeded() { boom(); }\n\
             fn boom() {}\n\
             #[cfg(test)]\nmod tests { fn top() {} }\n",
        )]);
        let top = id_of(&ws, "top");
        let shallow = CallGraph::build(&ws, GraphOpts::default());
        assert!(shallow.edges[&top].is_empty(), "mutant excluded");
        let with = CallGraph::build(
            &ws,
            GraphOpts {
                include_mutants: true,
                ..Default::default()
            },
        );
        assert_eq!(with.edges[&top].len(), 1, "mutant included on request");
        let reach = with.reachable(&[top]);
        assert!(reach.contains(&id_of(&ws, "boom")));
    }
}
