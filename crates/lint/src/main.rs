fn main() {
    lint::cli_main();
}
