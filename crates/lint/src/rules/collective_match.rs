//! `collective-match` — static deadlock detection for divergent collective
//! sequences.
//!
//! Every rank must issue the *same* sequence of simmpi collectives
//! (`barrier`/`allgather`/`agree`/rendezvous/two-phase commit …). A branch
//! whose condition depends on the rank's identity (`rank == 0`, a
//! root/leader role) and whose arms issue different collective sequences
//! is a deadlock waiting for a schedule: the root enters `allgather`, the
//! others never do.
//!
//! For each in-scope function the rule computes, per branch arm, the
//! bounded *set of possible collective sequences* (loops appear as one
//! canonical element, single-candidate callees are inlined so sequences
//! hidden in helpers still count). Arms that diverge (`return`/`?`-free
//! error paths, panics) are exempt — an erroring rank abandons the
//! protocol by design. Mismatched fall-through arms under a
//! rank-dependent condition are reported; conditions that cannot be
//! rank-dependent (iteration counters, config flags) are skipped, as is
//! the simmpi implementation itself, whose root-vs-peer branches are the
//! collectives' own implementation technique.

use std::collections::HashSet;

use crate::callgraph::{FnId, GraphOpts, Resolver, Workspace};
use crate::cfg::{self, Block, BranchNode, Step};
use crate::diag::Diagnostic;
use crate::parser::{contains_word, CallKind};

pub const RULE: &str = "collective-match";

/// Crates whose functions must keep collective sequences rank-uniform.
/// simmpi itself is excluded: a collective's *implementation* legitimately
/// branches root-vs-peer.
const SCOPE: &[&str] = &[
    "fenix",
    "veloc",
    "kokkos-resilience",
    "resilience",
    "redstore",
    "harness",
];

/// Collective method names, with a minimum arity where a common
/// non-collective method shares the name (`Iterator::reduce` takes one
/// closure; `Comm::reduce` takes root + data).
const COLLECTIVES: &[(&str, usize)] = &[
    ("barrier", 0),
    ("allgather", 0),
    ("allreduce", 0),
    ("allreduce_scalar", 0),
    ("allreduce_with", 0),
    ("bcast", 0),
    ("bcast_bytes", 0),
    ("reduce", 2),
    ("reduce_with", 0),
    ("gather", 0),
    ("agree", 0),
    ("shrink", 0),
    ("rendezvous", 0),
    ("repair_rendezvous", 0),
    ("agree_intact_version", 0),
    ("agree_intact_version_below", 0),
    ("latest_agreed", 0),
    ("latest_agreed_below", 0),
];

/// Identifier words in a condition that make it rank-dependent.
const RANK_WORDS: &[&str] = &[
    "rank",
    "my_rank",
    "comm_rank",
    "world_rank",
    "my_global",
    "root",
    "is_root",
    "leader",
    "role",
    "coordinator",
    "primary",
];

/// Bounds on the sequence-set computation; an arm past the bound is
/// treated as unanalyzable and never flagged.
const MAX_SEQS: usize = 8;
const MAX_LEN: usize = 12;
const MAX_DEPTH: usize = 4;

/// A bounded set of possible collective sequences along fall-through
/// paths. `set` is empty when every path diverges.
#[derive(Clone, Debug)]
struct Seqs {
    set: Vec<Vec<String>>,
    overflow: bool,
}

impl Seqs {
    fn unit() -> Seqs {
        Seqs {
            set: vec![Vec::new()],
            overflow: false,
        }
    }

    fn diverged() -> Seqs {
        Seqs {
            set: Vec::new(),
            overflow: false,
        }
    }

    fn push_elem(&mut self, e: &str) {
        for seq in &mut self.set {
            if seq.len() >= MAX_LEN {
                self.overflow = true;
            } else {
                seq.push(e.to_owned());
            }
        }
    }

    /// Sequential composition: every sequence continues with every
    /// continuation in `next`.
    fn then(&mut self, next: &Seqs) {
        self.overflow |= next.overflow;
        let mut out = Vec::new();
        'outer: for a in &self.set {
            for b in &next.set {
                if out.len() >= MAX_SEQS {
                    self.overflow = true;
                    break 'outer;
                }
                let mut seq = a.clone();
                if seq.len() + b.len() > MAX_LEN {
                    self.overflow = true;
                }
                seq.extend(b.iter().take(MAX_LEN.saturating_sub(a.len())).cloned());
                out.push(seq);
            }
        }
        out.sort();
        out.dedup();
        self.set = out;
    }

    fn union(&mut self, other: &Seqs) {
        self.overflow |= other.overflow;
        self.set.extend(other.set.iter().cloned());
        self.set.sort();
        self.set.dedup();
        if self.set.len() > MAX_SEQS {
            self.set.truncate(MAX_SEQS);
            self.overflow = true;
        }
    }

    /// Canonical rendering for comparison and messages.
    fn canon(&self) -> String {
        let mut alts: Vec<String> = self
            .set
            .iter()
            .map(|s| {
                if s.is_empty() {
                    "(none)".to_owned()
                } else {
                    s.join("->")
                }
            })
            .collect();
        alts.sort();
        alts.dedup();
        alts.join(" | ")
    }
}

fn rank_dependent(cond: &str) -> bool {
    RANK_WORDS.iter().any(|w| contains_word(cond, w))
}

pub fn check(ws: &Workspace, resolver: &Resolver, opts: GraphOpts) -> Vec<Diagnostic> {
    let mut in_scope: Vec<FnId> = Vec::new();
    for (id, f) in ws.fns() {
        if f.is_test || f.body.is_none() {
            continue;
        }
        if f.mutant_gated && !opts.include_mutants {
            continue;
        }
        if !SCOPE.contains(&ws.file(id).crate_name.as_str()) {
            continue;
        }
        in_scope.push(id);
    }
    let scope_set: HashSet<FnId> = in_scope.iter().copied().collect();
    let mut diags = Vec::new();
    let mut eval = Eval {
        ws,
        resolver,
        scope_set: &scope_set,
        stack: Vec::new(),
        diags: &mut diags,
    };
    for &id in &in_scope {
        let f = ws.fn_item(id);
        let block = cfg::build(ws.file(id), f);
        eval.stack.push(id);
        eval.block_seqs(id, &block, true);
        eval.stack.pop();
    }
    diags
}

struct Eval<'a, 'd> {
    ws: &'a Workspace,
    resolver: &'a Resolver<'a>,
    scope_set: &'a HashSet<FnId>,
    stack: Vec<FnId>,
    diags: &'d mut Vec<Diagnostic>,
}

impl Eval<'_, '_> {
    /// Sequence set of `block`; when `check` is set, branch nodes in this
    /// block belong to the function under report and are compared.
    /// Returns `(seqs, flagged)` — `flagged` suppresses enclosing reports
    /// so one root cause yields one diagnostic.
    fn block_seqs(&mut self, id: FnId, block: &Block, check: bool) -> (Seqs, bool) {
        let mut seqs = Seqs::unit();
        let mut flagged = false;
        for step in &block.steps {
            match step {
                Step::Call(idx) => {
                    let file = self.ws.file(id);
                    let f = self.ws.fn_item(id);
                    let call = &f.calls[*idx];
                    if call.kind == CallKind::Method {
                        if let Some((name, _)) = COLLECTIVES.iter().find(|(n, min)| {
                            call.name() == *n && cfg::call_arity(file, call) >= *min
                        }) {
                            seqs.push_elem(name);
                            continue;
                        }
                    }
                    if call.kind == CallKind::Macro {
                        continue;
                    }
                    let cands: Vec<FnId> = self
                        .resolver
                        .resolve(id, call)
                        .into_iter()
                        .filter(|c| self.scope_set.contains(c))
                        .collect();
                    if cands.len() == 1
                        && !self.stack.contains(&cands[0])
                        && self.stack.len() < MAX_DEPTH
                    {
                        let callee = cands[0];
                        let cb = cfg::build(self.ws.file(callee), self.ws.fn_item(callee));
                        self.stack.push(callee);
                        let (callee_seqs, _) = self.block_seqs(callee, &cb, false);
                        self.stack.pop();
                        seqs.then(&callee_seqs);
                    }
                }
                Step::Branch(b) => {
                    let mut arm_results: Vec<(Seqs, bool)> = Vec::new();
                    for arm in &b.arms {
                        arm_results.push(self.block_seqs(id, arm, check));
                    }
                    let arm_flagged = arm_results.iter().any(|(_, fl)| *fl);
                    flagged |= arm_flagged;
                    if check && !arm_flagged {
                        flagged |= self.check_branch(id, b, &arm_results);
                    }
                    let mut joined = Seqs::diverged();
                    for (s, _) in &arm_results {
                        joined.union(s);
                    }
                    if !b.exhaustive {
                        joined.union(&Seqs::unit());
                    }
                    if joined.set.is_empty() {
                        return (Seqs::diverged(), flagged);
                    }
                    seqs.then(&joined);
                }
                Step::Loop { body, .. } => {
                    let (body_seqs, fl) = self.block_seqs(id, body, check);
                    flagged |= fl;
                    if body_seqs.overflow {
                        seqs.overflow = true;
                    }
                    if body_seqs.set.iter().any(|s| !s.is_empty()) {
                        seqs.push_elem(&format!("loop{{{}}}", body_seqs.canon()));
                    }
                }
                Step::Diverge { .. } => return (Seqs::diverged(), flagged),
            }
        }
        (seqs, flagged)
    }

    /// Compare the fall-through collective sequences across `b`'s arms;
    /// returns whether a diagnostic was emitted.
    fn check_branch(&mut self, id: FnId, b: &BranchNode, arms: &[(Seqs, bool)]) -> bool {
        if !rank_dependent(&b.cond) {
            return false;
        }
        if arms.iter().any(|(s, _)| s.overflow) {
            return false;
        }
        // Fall-through arms only: a diverging arm (empty set) abandons the
        // protocol and is exempt.
        let mut canon: Vec<String> = arms
            .iter()
            .filter(|(s, _)| !s.set.is_empty())
            .map(|(s, _)| s.canon())
            .collect();
        if !b.exhaustive {
            canon.push("(none)".to_owned());
        }
        if canon.len() < 2 {
            return false;
        }
        // Every arm silent → nothing to deadlock on.
        if canon.iter().all(|c| c == "(none)") {
            return false;
        }
        let mut distinct = canon.clone();
        distinct.sort();
        distinct.dedup();
        if distinct.len() < 2 {
            return false;
        }
        let file = self.ws.file(id);
        let f = self.ws.fn_item(id);
        let mut cond = b.cond.clone();
        if cond.len() > 48 {
            cond.truncate(48);
            cond.push('…');
        }
        let detail: Vec<String> = canon
            .iter()
            .enumerate()
            .map(|(i, c)| format!("arm {} issues [{}]", i + 1, c))
            .collect();
        self.diags.push(Diagnostic {
            rule: RULE,
            file: file.rel.clone(),
            line: b.line,
            func: f.qual(),
            msg: format!(
                "collective sequences diverge across rank-dependent branch \
                 (`{cond}`): {}; ranks taking different arms deadlock in the \
                 unmatched collective",
                detail.join(", ")
            ),
        });
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::ParsedFile;

    fn run(files: &[(&str, &str)]) -> Vec<Diagnostic> {
        let ws = Workspace {
            root: None,
            files: files
                .iter()
                .map(|(rel, src)| {
                    let krate = crate::classify(rel).map(|(c, _)| c).unwrap_or_default();
                    ParsedFile::parse(rel, &krate, src, false)
                })
                .collect(),
        };
        let opts = GraphOpts::default();
        let resolver = Resolver::new(&ws, opts);
        check(&ws, &resolver, opts)
    }

    #[test]
    fn lone_if_with_collective_on_rank_flags() {
        let d = run(&[(
            "crates/fenix/src/f.rs",
            "pub fn go(comm: &Comm, rank: usize) {\n    if rank == 0 {\n        \
             comm.barrier();\n    }\n}\n",
        )]);
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].msg.contains("barrier"), "{}", d[0].msg);
    }

    #[test]
    fn matching_sequences_are_clean() {
        let d = run(&[(
            "crates/fenix/src/f.rs",
            "pub fn go(comm: &Comm, rank: usize) {\n    if rank == 0 {\n        \
             prep_root();\n        comm.barrier();\n    } else {\n        \
             comm.barrier();\n    }\n}\nfn prep_root() {}\n",
        )]);
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn non_rank_conditions_are_skipped() {
        let d = run(&[(
            "crates/fenix/src/f.rs",
            "pub fn go(comm: &Comm, iter: usize) {\n    if iter % 10 == 0 {\n        \
             comm.barrier();\n    }\n}\n",
        )]);
        assert!(
            d.is_empty(),
            "interval checkpointing is rank-uniform: {d:?}"
        );
    }

    #[test]
    fn match_on_role_with_mismatched_arms_flags() {
        let d = run(&[(
            "crates/redstore/src/s.rs",
            "pub fn commit(comm: &Comm, role: Role) {\n    match role {\n        \
             Role::Leader => {\n            comm.agree(1, 0);\n            \
             comm.allgather(&x);\n        }\n        Role::Member => {\n            \
             comm.agree(1, 0);\n        }\n    }\n}\n",
        )]);
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].msg.contains("allgather"), "{}", d[0].msg);
    }

    #[test]
    fn diverging_error_arm_is_exempt() {
        let d = run(&[(
            "crates/fenix/src/f.rs",
            "pub fn go(comm: &Comm, rank: usize) -> Result<(), E> {\n    \
             if rank == 0 {\n        comm.barrier()?;\n    } else {\n        \
             return Err(E::NotRoot);\n    }\n    Ok(())\n}\n",
        )]);
        assert!(
            d.is_empty(),
            "the erroring rank abandons the protocol: {d:?}"
        );
    }

    #[test]
    fn collectives_hidden_in_helpers_are_found() {
        let d = run(&[(
            "crates/fenix/src/f.rs",
            "pub fn go(comm: &Comm, rank: usize) {\n    if rank == 0 {\n        \
             sync_root(comm);\n    }\n}\n\
             fn sync_root(comm: &Comm) {\n    comm.barrier();\n}\n",
        )]);
        assert_eq!(d.len(), 1, "helper collectives count: {d:?}");
    }

    #[test]
    fn helper_is_reported_once_not_per_caller() {
        let d = run(&[(
            "crates/fenix/src/f.rs",
            "pub fn a(comm: &Comm, rank: usize) {\n    helper(comm, rank);\n}\n\
             pub fn b(comm: &Comm, rank: usize) {\n    helper(comm, rank);\n}\n\
             fn helper(comm: &Comm, rank: usize) {\n    if rank == 0 {\n        \
             comm.barrier();\n    }\n}\n",
        )]);
        assert_eq!(d.len(), 1, "own-function analysis only: {d:?}");
        assert!(d[0].func.contains("helper"));
    }

    #[test]
    fn simmpi_implementation_is_out_of_scope() {
        let d = run(&[(
            "crates/simmpi/src/comm.rs",
            "pub fn bcast(comm: &Comm, root: usize) {\n    if comm.rank() == root {\n        \
             comm.bcast_bytes(&[1]);\n    }\n}\n",
        )]);
        assert!(d.is_empty(), "root-vs-peer impl branches are legal: {d:?}");
    }

    #[test]
    fn loops_compare_structurally() {
        let d = run(&[(
            "crates/fenix/src/f.rs",
            "pub fn go(comm: &Comm, rank: usize, n: usize) {\n    if rank == 0 {\n        \
             for _ in 0..n {\n            comm.barrier();\n        }\n    } else {\n        \
             for _ in 0..n {\n            comm.barrier();\n        }\n    }\n}\n",
        )]);
        assert!(d.is_empty(), "identical loop bodies match: {d:?}");
    }
}
