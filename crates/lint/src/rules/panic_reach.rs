//! `panic-reach`: no `panic!`/`todo!`/`unimplemented!`, `.unwrap()`,
//! `.expect(…)`, or non-range `[…]`-indexing may be reachable through the
//! call graph from a recovery entry point in `fenix`, `veloc`, or
//! `kokkos-resilience`. A panic on the re-entry path after a failure kills
//! the rank that was supposed to be recovering — turning a survivable
//! fault into a second, unsurvivable one.
//!
//! This upgrades PR 2's per-file `unwrap-on-recovery-path` text rule to
//! transitive call-graph precision: the entry set is the functions a rank
//! executes on the post-failure path (see
//! [`crate::rules::RECOVERY_ENTRY_FNS`]), and every function reachable
//! from them is checked.
//!
//! Deliberately *not* sites: `assert!`/`debug_assert!` (stated invariants)
//! and `unreachable!` (documented impossible states) — the paper's
//! runtime keeps those as contract documentation, and the model checker
//! exercises them.
//!
//! Default mode keeps name resolution within each recovery crate;
//! `LINT_DEEP=1` follows method calls workspace-wide (slower, noisier —
//! run by CI as an advisory pass).

use crate::callgraph::{CallGraph, FnId, GraphOpts, Workspace};
use crate::diag::Diagnostic;
use crate::parser::PanicKind;
use crate::rules::{in_crates, PANIC_SITE_CRATES, RECOVERY_CRATES, RECOVERY_ENTRY_FNS};

pub fn check(ws: &Workspace, graph: &CallGraph, opts: GraphOpts) -> Vec<Diagnostic> {
    let entries: Vec<FnId> = ws
        .fns()
        .filter(|(id, f)| {
            if f.is_test || ws.file(*id).file_is_test {
                return false;
            }
            if f.mutant_gated && !opts.include_mutants {
                return false;
            }
            let krate = ws.file(*id).crate_name.as_str();
            RECOVERY_ENTRY_FNS
                .iter()
                .any(|(c, names)| *c == krate && names.contains(&f.name.as_str()))
        })
        .map(|(id, _)| id)
        .collect();
    let reach = graph.reachable(&entries);
    let mut out = Vec::new();
    for id in reach {
        let f = ws.fn_item(id);
        let file = ws.file(id);
        // In default mode only the recovery crates are in scope; deep mode
        // follows the traversal further (e.g. into simmpi), but still only
        // reports sites in protocol-participating crates — see
        // [`PANIC_SITE_CRATES`].
        let scope = if opts.deep {
            PANIC_SITE_CRATES
        } else {
            RECOVERY_CRATES
        };
        if !in_crates(&file.crate_name, scope) {
            continue;
        }
        for site in &f.panics {
            let what = match &site.kind {
                PanicKind::Macro(m) => format!("{m}!"),
                PanicKind::Unwrap => ".unwrap()".into(),
                PanicKind::Expect => ".expect(…)".into(),
                PanicKind::Index => "[…]-indexing".into(),
            };
            out.push(Diagnostic {
                rule: "panic-reach",
                file: file.rel.clone(),
                line: site.line,
                func: f.qual(),
                msg: format!(
                    "{what} is reachable from a recovery entry point; a panic here kills \
                     the recovering rank — return the error through the resilience layers \
                     instead"
                ),
            });
        }
    }
    out
}
