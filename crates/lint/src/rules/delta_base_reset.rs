//! `delta-base-reset`: incremental checkpoints are only sound while the
//! client's remembered delta base is a version the rank actually holds.
//! Every reset path — `Context::reset(new_comm)` after a Fenix repair, or
//! a protection-table teardown via `clear_protected` on body re-entry —
//! must therefore reach the data layer's generation invalidation
//! (`invalidate_deltas`, directly or through `set_rank`/`clear`), or a
//! recovered rank could emit a delta frame against a base it no longer
//! possesses and silently corrupt its own restart chain.
//!
//! The check is transitive: for each non-test function in the integration
//! crates (`kokkos-resilience`, `resilience`) that contains a `reset` or
//! `clear_protected` call, the rule builds a *deep* call graph (cross-crate
//! method resolution — the invalidation usually lives two layers down, in
//! `veloc`) and demands that some reachable function contains an
//! `invalidate_deltas` call site.

use crate::callgraph::{CallGraph, GraphOpts, Workspace};
use crate::diag::Diagnostic;
use crate::rules::in_crates;

/// Crates whose reset paths must invalidate delta-chain state.
pub const DELTA_RESET_CRATES: &[&str] = &["kokkos-resilience", "resilience"];

/// Call names that tear down protection/communicator state.
const RESET_CALLS: &[&str] = &["reset", "clear_protected"];

/// The generation-invalidation call every reset path must reach.
const INVALIDATE_CALL: &str = "invalidate_deltas";

pub fn check(ws: &Workspace, opts: GraphOpts) -> Vec<Diagnostic> {
    // Always resolve deeply: the invalidation lives in `veloc`, below the
    // crates in scope, so the default same-crate resolution would make
    // every correct site look like a violation.
    let deep = GraphOpts {
        deep: true,
        include_mutants: opts.include_mutants,
    };
    let graph = CallGraph::build(ws, deep);
    let mut out = Vec::new();
    for (id, f) in ws.fns() {
        if f.is_test || ws.file(id).file_is_test {
            continue;
        }
        if f.mutant_gated && !opts.include_mutants {
            continue;
        }
        let file = ws.file(id);
        if !in_crates(&file.crate_name, DELTA_RESET_CRATES) {
            continue;
        }
        let Some(trigger) = f.calls.iter().find(|c| RESET_CALLS.contains(&c.name())) else {
            continue;
        };
        let invalidated = graph.reachable(&[id]).into_iter().any(|rid| {
            ws.fn_item(rid)
                .calls
                .iter()
                .any(|c| c.name() == INVALIDATE_CALL)
        });
        if !invalidated {
            out.push(Diagnostic {
                rule: "delta-base-reset",
                file: file.rel.clone(),
                line: trigger.line,
                func: f.qual(),
                msg: format!(
                    "`{}()` tears down protection state without reaching \
                     `invalidate_deltas`; a recovered rank could emit a delta \
                     checkpoint against a base it no longer holds",
                    trigger.name()
                ),
            });
        }
    }
    out
}
