//! `wildcard-match`: matches over the failure enums (`MpiError`,
//! `VelocError`, `ImrError`) in the recovery crates must enumerate every
//! variant — no `_` wildcard and no bare-binding catch-all arm. When a new
//! failure class is added (the paper's evolution added `Revoked` on top of
//! `ProcFailed`), a wildcard silently routes it to whatever the old
//! default was; exhaustive matches make the compiler surface every site
//! that needs a decision.
//!
//! The paper's `FenixEvent` maps onto `MpiError` in this codebase: Fenix
//! surfaces process failure as ULFM error classes rather than a separate
//! event enum (see `rules::FAILURE_ENUMS`).
//!
//! `matches!(e, …)` is exempt — its implicit `_ => false` *is* the point
//! of the macro — and so are matches that never name a failure-enum
//! variant in any arm (e.g. a `Result` match that forwards `Err(e)`
//! wholesale).

use crate::callgraph::Workspace;
use crate::diag::Diagnostic;
use crate::parser::contains_word;
use crate::rules::{in_crates, FAILURE_ENUMS, STRICT_FAILURE_CRATES};

pub fn check(ws: &Workspace) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for (id, f) in ws.fns() {
        if f.is_test || ws.file(id).file_is_test {
            continue;
        }
        let file = ws.file(id);
        if !in_crates(&file.crate_name, STRICT_FAILURE_CRATES) {
            continue;
        }
        for m in &f.matches {
            let named_enum = FAILURE_ENUMS
                .iter()
                .find(|e| m.arms.iter().any(|a| contains_word(&a.pat, e)));
            let Some(named_enum) = named_enum else {
                continue;
            };
            for arm in &m.arms {
                if arm.is_catch_all {
                    out.push(Diagnostic {
                        rule: "wildcard-match",
                        file: file.rel.clone(),
                        line: arm.line,
                        func: f.qual(),
                        msg: format!(
                            "catch-all arm `{}` in a match over `{named_enum}`; enumerate \
                             every failure variant so new failure classes force a decision \
                             here",
                            arm.pat
                        ),
                    });
                }
            }
        }
    }
    out
}
