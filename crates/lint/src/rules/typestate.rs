//! `protocol-typestate` — declarative protocol automata checked over the
//! interprocedural control-flow tree.
//!
//! Each [`Automaton`] names a protocol the paper's layers must follow:
//!
//! - **checkpoint-lifecycle** — `protect`/`protect_exact` must precede the
//!   2-argument `checkpoint`/`restart` client calls, and `clear_protected`
//!   un-protects (a later checkpoint without re-protect is a violation);
//! - **region-lifecycle** — `CaptureSession::new` → `record` →
//!   `unique_views`, the kokkos-resilience capture order;
//! - **ulfm-recovery** — detection (`is_recoverable`/`failed_ranks`) must
//!   precede `revoke`; `agree`/`repair_rendezvous`/`shrink` repair the
//!   communicator; a plain collective issued while revoked-and-unrepaired
//!   is a static deadlock/error.
//!
//! The check is a state-**set** abstract interpretation of each function's
//! [`cfg`] tree: branches are explored per-arm (path sensitivity) and
//! joined by union; loops run to a small fixpoint; calls that resolve to
//! exactly one in-scope function are inlined (depth-bounded, cycle-safe),
//! so a protocol split across helpers is still checked end to end.
//!
//! Roots are in-scope functions with no in-scope caller; they start in the
//! automaton's designated start state. Functions that are never inlined
//! anywhere (their call sites resolve ambiguously, or only tests call
//! them) are re-checked from a *permissive* all-states start, so only
//! locally infeasible sequences are flagged — interprocedural context can
//! never be invented against them.

use std::collections::{HashMap, HashSet};

use crate::callgraph::{FnId, GraphOpts, Resolver, Workspace};
use crate::cfg::{self, Block, Step};
use crate::diag::Diagnostic;
use crate::parser::CallKind;

pub const RULE: &str = "protocol-typestate";

/// How a call site produces a protocol symbol.
enum Matcher {
    /// `.name(…)` method call; `Some(n)` restricts to exactly `n` args
    /// (disambiguating the overloaded `checkpoint`/`restart` names).
    Method(&'static str, Option<usize>),
    /// `Qual::name(…)` path call.
    PathCall(&'static str, &'static str),
}

/// One protocol symbol with its transition relation over state indices.
struct Sym {
    label: &'static str,
    matchers: &'static [Matcher],
    delta: &'static [(u8, u8)],
}

struct Automaton {
    name: &'static str,
    /// Crates whose non-test functions this automaton applies to.
    scope: &'static [&'static str],
    states: &'static [&'static str],
    /// Start states for root functions.
    start: &'static [u8],
    syms: &'static [Sym],
    hint: &'static str,
}

const CHECKPOINT_LIFECYCLE: Automaton = Automaton {
    name: "checkpoint-lifecycle",
    scope: &["veloc", "kokkos-resilience", "resilience", "harness"],
    states: &["unprotected", "protected"],
    start: &[0],
    syms: &[
        Sym {
            label: "protect",
            matchers: &[
                Matcher::Method("protect", None),
                Matcher::Method("protect_exact", None),
            ],
            delta: &[(0, 1), (1, 1)],
        },
        Sym {
            label: "clear_protected",
            matchers: &[Matcher::Method("clear_protected", None)],
            delta: &[(0, 0), (1, 0)],
        },
        Sym {
            label: "checkpoint",
            matchers: &[Matcher::Method("checkpoint", Some(2))],
            delta: &[(1, 1)],
        },
        Sym {
            label: "restart",
            matchers: &[Matcher::Method("restart", Some(2))],
            delta: &[(1, 1)],
        },
    ],
    hint: "the 2-argument client checkpoint/restart requires protected \
           regions: call protect()/protect_exact() first (and re-protect \
           after clear_protected())",
};

const REGION_LIFECYCLE: Automaton = Automaton {
    name: "region-lifecycle",
    scope: &["kokkos", "kokkos-resilience"],
    states: &["idle", "entered", "captured"],
    start: &[0],
    syms: &[
        Sym {
            label: "enter",
            matchers: &[Matcher::PathCall("CaptureSession", "new")],
            delta: &[(0, 1), (1, 1), (2, 1)],
        },
        Sym {
            label: "record",
            matchers: &[Matcher::Method("record", None)],
            delta: &[(1, 2), (2, 2)],
        },
        Sym {
            label: "unique_views",
            matchers: &[Matcher::Method("unique_views", None)],
            delta: &[(2, 2)],
        },
    ],
    hint: "region capture order is CaptureSession::new -> record -> \
           unique_views",
};

const ULFM_RECOVERY: Automaton = Automaton {
    name: "ulfm-recovery",
    scope: &["fenix", "resilience"],
    states: &["live", "detected", "revoked"],
    start: &[0],
    syms: &[
        Sym {
            label: "detect",
            matchers: &[
                Matcher::Method("is_recoverable", None),
                Matcher::Method("failed_ranks", None),
            ],
            delta: &[(0, 1), (1, 1), (2, 2)],
        },
        Sym {
            label: "revoke",
            matchers: &[Matcher::Method("revoke", None)],
            delta: &[(1, 2), (2, 2)],
        },
        Sym {
            label: "agree",
            matchers: &[
                Matcher::Method("agree", None),
                Matcher::Method("repair_rendezvous", None),
                Matcher::Method("agree_intact_version", None),
                Matcher::Method("agree_intact_version_below", None),
            ],
            delta: &[(0, 0), (1, 1), (2, 0)],
        },
        Sym {
            label: "shrink",
            matchers: &[Matcher::Method("shrink", None)],
            delta: &[(0, 0), (1, 0), (2, 0)],
        },
        Sym {
            label: "collective",
            matchers: &[
                Matcher::Method("barrier", None),
                Matcher::Method("allgather", None),
                Matcher::Method("allreduce", None),
                Matcher::Method("allreduce_scalar", None),
                Matcher::Method("allreduce_with", None),
                Matcher::Method("bcast", None),
                Matcher::Method("bcast_bytes", None),
                Matcher::Method("reduce", None),
                Matcher::Method("reduce_with", None),
                Matcher::Method("gather", None),
            ],
            delta: &[(0, 0), (1, 1)],
        },
    ],
    hint: "recovery order is detect (is_recoverable/failed_ranks) -> \
           revoke -> agree/shrink; plain collectives are illegal on a \
           revoked, unrepaired communicator",
};

const AUTOMATA: &[&Automaton] = &[&CHECKPOINT_LIFECYCLE, &REGION_LIFECYCLE, &ULFM_RECOVERY];

/// Maximum call-inlining depth.
const MAX_DEPTH: usize = 10;

type StateSet = u32;

fn all_states(a: &Automaton) -> StateSet {
    (1u32 << a.states.len()) - 1
}

fn start_set(a: &Automaton) -> StateSet {
    a.start.iter().fold(0, |s, &b| s | (1 << b))
}

fn set_names(a: &Automaton, s: StateSet) -> String {
    a.states
        .iter()
        .enumerate()
        .filter(|(i, _)| s & (1 << i) != 0)
        .map(|(_, n)| *n)
        .collect::<Vec<_>>()
        .join("|")
}

pub fn check(ws: &Workspace, resolver: &Resolver, opts: GraphOpts) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    for a in AUTOMATA {
        run_automaton(ws, resolver, opts, a, &mut diags);
    }
    diags
}

fn run_automaton(
    ws: &Workspace,
    resolver: &Resolver,
    opts: GraphOpts,
    a: &Automaton,
    diags: &mut Vec<Diagnostic>,
) {
    let mut in_scope: Vec<FnId> = Vec::new();
    for (id, f) in ws.fns() {
        if f.is_test || f.body.is_none() {
            continue;
        }
        if f.mutant_gated && !opts.include_mutants {
            continue;
        }
        if !a.scope.contains(&ws.file(id).crate_name.as_str()) {
            continue;
        }
        in_scope.push(id);
    }
    let scope_set: HashSet<FnId> = in_scope.iter().copied().collect();

    // Fast relevance filter: skip the whole automaton when no in-scope
    // function mentions any of its symbols.
    let relevant = in_scope.iter().any(|&id| {
        ws.fn_item(id)
            .calls
            .iter()
            .any(|c| a.syms.iter().any(|s| matches(ws.file(id), c, s)))
    });
    if !relevant {
        return;
    }

    // Functions with at least one in-scope caller (over-approximate: any
    // resolution candidate counts).
    let mut called: HashSet<FnId> = HashSet::new();
    for &id in &in_scope {
        for call in &ws.fn_item(id).calls {
            for cand in resolver.resolve(id, call) {
                if cand != id && scope_set.contains(&cand) {
                    called.insert(cand);
                }
            }
        }
    }

    let mut eval = Eval {
        ws,
        resolver,
        a,
        scope_set: &scope_set,
        cfgs: HashMap::new(),
        covered: HashSet::new(),
        stack: Vec::new(),
        diags,
    };
    for &id in &in_scope {
        if !called.contains(&id) {
            eval.eval_fn(id, start_set(a), true);
        }
    }
    // Functions never reached from a root (ambiguous call sites, trait
    // dispatch, test-only callers): permissive start, so only locally
    // impossible sequences are flagged.
    let uncovered: Vec<FnId> = in_scope
        .iter()
        .copied()
        .filter(|id| !eval.covered.contains(id))
        .collect();
    for id in uncovered {
        if !eval.covered.contains(&id) {
            eval.eval_fn(id, all_states(a), true);
        }
    }
}

fn matches(file: &crate::parser::ParsedFile, call: &crate::parser::Call, sym: &Sym) -> bool {
    sym.matchers.iter().any(|m| match m {
        Matcher::Method(name, arity) => {
            call.kind == CallKind::Method
                && call.name() == *name
                && arity.is_none_or(|n| cfg::call_arity(file, call) == n)
        }
        Matcher::PathCall(qual, name) => {
            call.kind == CallKind::Path
                && call.name() == *name
                && call.segs.len() >= 2
                && call.segs[call.segs.len() - 2] == *qual
        }
    })
}

struct Eval<'a, 'd> {
    ws: &'a Workspace,
    resolver: &'a Resolver<'a>,
    a: &'a Automaton,
    scope_set: &'a HashSet<FnId>,
    cfgs: HashMap<FnId, Block>,
    covered: HashSet<FnId>,
    stack: Vec<FnId>,
    diags: &'d mut Vec<Diagnostic>,
}

impl Eval<'_, '_> {
    /// Evaluate `id` from state set `s`. `None` means every path through
    /// the function diverges.
    fn eval_fn(&mut self, id: FnId, s: StateSet, report: bool) -> Option<StateSet> {
        if self.stack.contains(&id) || self.stack.len() >= MAX_DEPTH {
            // Cycle or depth cap: the callee's effect is unknown, so the
            // caller continues from every state — never from a guess that
            // could flag a legal downstream transition. The fn stays
            // uncovered here so the permissive fallback pass still checks
            // its own body.
            return Some(all_states(self.a));
        }
        self.covered.insert(id);
        let block = match self.cfgs.get(&id) {
            Some(b) => b.clone(),
            None => {
                let b = cfg::build(self.ws.file(id), self.ws.fn_item(id));
                self.cfgs.insert(id, b.clone());
                b
            }
        };
        self.stack.push(id);
        let out = self.eval_block(id, &block, s, report);
        self.stack.pop();
        out
    }

    fn eval_block(
        &mut self,
        id: FnId,
        block: &Block,
        mut s: StateSet,
        report: bool,
    ) -> Option<StateSet> {
        for step in &block.steps {
            match step {
                Step::Call(idx) => {
                    let file = self.ws.file(id);
                    let f = self.ws.fn_item(id);
                    let call = &f.calls[*idx];
                    if let Some(sym) = self.a.syms.iter().find(|sym| matches(file, call, sym)) {
                        let mut next: StateSet = 0;
                        for &(from, to) in sym.delta {
                            if s & (1 << from) != 0 {
                                next |= 1 << to;
                            }
                        }
                        if next == 0 {
                            if report {
                                self.diags.push(Diagnostic {
                                    rule: RULE,
                                    file: file.rel.clone(),
                                    line: call.line,
                                    func: f.qual(),
                                    msg: format!(
                                        "protocol {}: `{}` has no legal transition from \
                                         state(s) [{}]; {}",
                                        self.a.name,
                                        sym.label,
                                        set_names(self.a, s),
                                        self.a.hint
                                    ),
                                });
                            }
                            // Error recovery: continue from any state so one
                            // violation does not cascade.
                            s = all_states(self.a);
                        } else {
                            s = next;
                        }
                        continue;
                    }
                    // Not a symbol: inline when the call resolves to exactly
                    // one in-scope function.
                    if call.kind == CallKind::Macro {
                        continue;
                    }
                    let cands: Vec<FnId> = self
                        .resolver
                        .resolve(id, call)
                        .into_iter()
                        .filter(|c| self.scope_set.contains(c))
                        .collect();
                    if cands.len() == 1 && cands[0] != id {
                        match self.eval_fn(cands[0], s, report) {
                            Some(out) => s = out,
                            None => return None, // callee never returns
                        }
                    }
                }
                Step::Branch(b) => {
                    let mut out: Option<StateSet> = None;
                    for arm in &b.arms {
                        if let Some(arm_out) = self.eval_block(id, arm, s, report) {
                            out = Some(out.unwrap_or(0) | arm_out);
                        }
                    }
                    if !b.exhaustive {
                        out = Some(out.unwrap_or(0) | s);
                    }
                    match out {
                        Some(o) => s = o,
                        None => return None, // all arms diverge
                    }
                }
                Step::Loop { body, .. } => {
                    // Fixpoint over the loop body; diagnostics only on the
                    // first pass so widening does not re-report.
                    let mut fix = s;
                    for pass in 0..self.a.states.len() + 1 {
                        let out = self.eval_block(id, body, fix, report && pass == 0);
                        let merged = fix | out.unwrap_or(0);
                        if merged == fix {
                            break;
                        }
                        fix = merged;
                    }
                    s = fix;
                }
                Step::Diverge { .. } => return None,
            }
        }
        Some(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::ParsedFile;

    fn ws(files: &[(&str, &str)]) -> Workspace {
        Workspace {
            root: None,
            files: files
                .iter()
                .map(|(rel, src)| {
                    let krate = crate::classify(rel).map(|(c, _)| c).unwrap_or_default();
                    ParsedFile::parse(rel, &krate, src, false)
                })
                .collect(),
        }
    }

    fn run(files: &[(&str, &str)]) -> Vec<Diagnostic> {
        let ws = ws(files);
        let opts = GraphOpts::default();
        let resolver = Resolver::new(&ws, opts);
        check(&ws, &resolver, opts)
    }

    #[test]
    fn revoke_without_detect_is_flagged() {
        let d = run(&[(
            "crates/fenix/src/r.rs",
            "pub fn recover(comm: &Comm) {\n    comm.revoke();\n}\n",
        )]);
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].msg.contains("ulfm-recovery"));
        assert!(d[0].msg.contains("`revoke`"));
    }

    #[test]
    fn detect_revoke_agree_is_clean() {
        let d = run(&[(
            "crates/fenix/src/r.rs",
            "pub fn recover(comm: &Comm, e: &E) -> Result<(), E> {\n    \
             if e.is_recoverable() {\n        comm.revoke();\n        \
             comm.agree(1, 0)?;\n        comm.barrier()?;\n    }\n    Ok(())\n}\n",
        )]);
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn collective_on_revoked_comm_is_flagged() {
        let d = run(&[(
            "crates/fenix/src/r.rs",
            "pub fn recover(comm: &Comm, e: &E) {\n    if e.is_recoverable() {\n        \
             comm.revoke();\n        comm.barrier();\n    }\n}\n",
        )]);
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].msg.contains("`collective`"), "{}", d[0].msg);
    }

    #[test]
    fn match_guard_detection_precedes_arm_body() {
        // The fenix runtime shape: the guard call is the detection.
        let d = run(&[(
            "crates/fenix/src/r.rs",
            "pub fn run(comm: &Comm, r: Result<(), E>) {\n    match r {\n        \
             Err(e) if e.is_recoverable() => {\n            comm.revoke();\n            \
             comm.agree(1, 0);\n        }\n        _ => {}\n    }\n}\n",
        )]);
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn interprocedural_detection_covers_helper() {
        let d = run(&[(
            "crates/fenix/src/r.rs",
            "pub fn entry(comm: &Comm, e: &E) {\n    if e.is_recoverable() {\n        \
             poison(comm);\n    }\n}\n\
             fn poison(comm: &Comm) {\n    comm.revoke();\n}\n",
        )]);
        assert!(d.is_empty(), "helper inherits the detected state: {d:?}");
    }

    #[test]
    fn checkpoint_without_protect_is_flagged() {
        let d = run(&[(
            "crates/veloc/src/b.rs",
            "pub fn save(client: &Client) {\n    client.checkpoint(\"ckpt\", 3);\n}\n",
        )]);
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].msg.contains("checkpoint-lifecycle"));
    }

    #[test]
    fn protect_then_checkpoint_is_clean_and_region_call_is_ignored() {
        let d = run(&[(
            "crates/veloc/src/b.rs",
            "pub fn save(client: &Client, kr: &Ctx) {\n    client.protect(1, views);\n    \
             client.checkpoint(\"ckpt\", 3);\n    kr.checkpoint(\"loop\", i, body);\n}\n",
        )]);
        assert!(
            d.is_empty(),
            "3-arg region checkpoint is out of scope: {d:?}"
        );
    }

    #[test]
    fn clear_then_checkpoint_without_reprotect_is_flagged() {
        let d = run(&[(
            "crates/veloc/src/b.rs",
            "pub fn save(client: &Client) {\n    client.protect(1, views);\n    \
             client.clear_protected();\n    client.checkpoint(\"ckpt\", 3);\n}\n",
        )]);
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].msg.contains("unprotected"), "{}", d[0].msg);
    }

    #[test]
    fn region_capture_order_is_enforced() {
        let fire = run(&[(
            "crates/kokkos-resilience/src/c.rs",
            "pub fn go(s: &Session) {\n    s.unique_views();\n}\n",
        )]);
        assert_eq!(fire.len(), 1, "{fire:?}");
        assert!(fire[0].msg.contains("region-lifecycle"));
        let clean = run(&[(
            "crates/kokkos-resilience/src/c.rs",
            "pub fn go(views: &V) {\n    let s = CaptureSession::new(1);\n    \
             s.record(\"v\", views);\n    s.unique_views();\n}\n",
        )]);
        assert!(clean.is_empty(), "{clean:?}");
    }

    #[test]
    fn loop_fixpoint_does_not_reflag_protect_in_loop() {
        let d = run(&[(
            "crates/veloc/src/b.rs",
            "pub fn save(client: &Client) {\n    for v in views() {\n        \
             client.protect(v, 1);\n    }\n    client.checkpoint(\"ckpt\", 3);\n}\n",
        )]);
        // The zero-iteration path leaves the state unprotected, but the
        // union with the protected loop exit keeps checkpoint legal.
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn out_of_scope_crates_are_ignored() {
        let d = run(&[(
            "crates/telemetry/src/r.rs",
            "pub fn f(c: &C) {\n    c.revoke();\n    c.checkpoint(\"x\", 1);\n}\n",
        )]);
        assert!(d.is_empty(), "{d:?}");
    }
}
