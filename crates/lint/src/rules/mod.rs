//! The lint rules and their shared scope policy.
//!
//! Rules come in two generations:
//!
//! - **token rules** ([`tokens`]): `unsafe-comment`, `relaxed-sync`, and
//!   `thread-spawn`, ported from the PR 2 regex scanner onto the lossless
//!   token stream;
//! - **protocol rules**: the paper's resilience invariants, checked over
//!   the parsed items, the workspace call graph, and an intra-procedural
//!   dataflow pass — [`single_exit`], [`pairing`], [`reset_order`],
//!   [`delta_base_reset`], [`dropped_result`], [`panic_reach`],
//!   [`wildcard`].
//!
//! The old `unwrap-on-recovery-path` regex rule is gone: `panic-reach`
//! (transitive, call-graph-precise) and `dropped-result` supersede it.

pub mod collective_match;
pub mod delta_base_reset;
pub mod dropped_result;
pub mod lockorder;
pub mod pairing;
pub mod panic_reach;
pub mod reset_order;
pub mod single_exit;
pub mod tokens;
pub mod typestate;
pub mod wildcard;

use crate::callgraph::{CallGraph, GraphOpts, Resolver, Workspace};
use crate::diag::Diagnostic;

/// Crates whose recovery entry points must not reach a panic site
/// (paper layers: process = fenix, data = veloc, control-flow/data glue =
/// kokkos-resilience).
pub const RECOVERY_CRATES: &[&str] = &["fenix", "veloc", "kokkos-resilience"];

/// Crates where failure-enum matches must be exhaustive and `Result`s on
/// recovery paths must not be silently dropped (the recovery crates plus
/// the integration layer that routes their errors).
pub const STRICT_FAILURE_CRATES: &[&str] = &["fenix", "veloc", "kokkos-resilience", "resilience"];

/// The workspace's failure enums. The paper's `FenixEvent` maps to
/// `MpiError` here: Fenix surfaces process failure as ULFM error classes
/// (`ProcFailed`/`Revoked`), not a separate event enum.
pub const FAILURE_ENUMS: &[&str] = &["MpiError", "VelocError", "ImrError"];

/// Recovery entry points per crate: the functions a rank executes on the
/// re-entry path after a failure (paper Fig. 4). `panic-reach` roots its
/// traversal here.
pub const RECOVERY_ENTRY_FNS: &[(&str, &[&str])] = &[
    (
        "fenix",
        &[
            "run",
            "apply_repair",
            "repair_rendezvous",
            "fire_callbacks",
            "restore",
        ],
    ),
    (
        "veloc",
        &["restart", "restart_inner", "restart_test", "latest_version"],
    ),
    (
        "kokkos-resilience",
        &[
            "reset",
            "latest_version",
            "latest_agreed",
            "checkpoint",
            "restore",
        ],
    ),
];

/// Crates whose panic sites `panic-reach` may report. Deep-mode traversal
/// follows calls anywhere (including vendored shims), but a diagnostic is
/// only actionable where the code participates in the recovery protocol:
/// the recovery crates, the ULFM transport whose `revoke`/`agree`/`shrink`
/// *are* the recovery protocol, and the integration layer. Infrastructure
/// crates (telemetry, cluster, modelcheck) and vendored shims stay out —
/// a panic there is an internal bug, not a resilience-protocol violation.
pub const PANIC_SITE_CRATES: &[&str] = &[
    "fenix",
    "veloc",
    "kokkos-resilience",
    "simmpi",
    "resilience",
];

/// Crates whose threading must go through the loom-aware shims so the
/// model checker can explore it (`thread-spawn` scope, from PR 2).
pub const MODEL_CHECKED_CRATES: &[&str] = &["telemetry", "veloc", "simmpi"];

/// Files audited for `Ordering::Relaxed` on synchronization-adjacent
/// atomics (`relaxed-sync` rule): the seqlock ring orders via `seq`'s
/// Acquire/Release pair and uses Relaxed only where the protocol proves it.
pub const AUDITED_RELAXED: &[&str] = &["crates/telemetry/src/ring.rs"];

/// Identifier fragments that mark an atomic as synchronization-carrying.
pub const SYNC_ATOMIC_NAMES: &[&str] =
    &["seq", "head", "stop", "abort", "pending", "dead", "revoked"];

/// Metadata reads that go stale across `Context::reset(new_comm)`.
pub const STALE_METADATA_READS: &[&str] = &[
    "latest_version",
    "latest_agreed",
    "region_stats",
    "checkpoint_bytes",
];

/// Rank entry points: the code a simulated rank executes — the simmpi
/// mailbox loop, the Fenix recovery handlers, the KR region machinery,
/// and the modeled transfers they ride on. `rank-path-effects` and the
/// effects inventory root their traversal here. Patterns with `::` match
/// the qualified name exactly; bare names match only free functions.
pub const RANK_ENTRY_FNS: &[(&str, &[&str])] = &[
    ("simmpi", &["Router::send", "Router::recv"]),
    (
        "fenix",
        &[
            "run",
            "Fenix::fire_callbacks",
            "Fenix::apply_repair",
            "Fenix::repair_rendezvous",
        ],
    ),
    (
        "kokkos-resilience",
        &[
            "Context::checkpoint",
            "Context::checkpoint_wait",
            "Context::reset",
        ],
    ),
    (
        "cluster",
        &["Network::transfer", "Network::egress", "Governor::transfer"],
    ),
];

/// Reservation math and export callbacks that must never park the
/// thread: bandwidth-governor bookkeeping runs under the governor lock,
/// and the telemetry exporters run on live failure-timeline paths.
/// `blocking-in-governor` roots here.
pub const GOVERNOR_FNS: &[(&str, &[&str])] = &[
    (
        "cluster",
        &[
            "Governor::reserve",
            "Governor::service_time",
            "Network::reserve_transfer",
        ],
    ),
    (
        "telemetry",
        &[
            "event_fields",
            "to_jsonl",
            "to_chrome_trace",
            "failure_timeline",
        ],
    ),
];

/// All rule identifiers, in report order.
pub const ALL_RULES: &[&str] = &[
    "single-exit",
    "protect-pairing",
    "reset-order",
    "delta-base-reset",
    "dropped-result",
    "panic-reach",
    "wildcard-match",
    "unsafe-comment",
    "relaxed-sync",
    "thread-spawn",
    "protocol-typestate",
    "collective-match",
    "lock-order",
    "blocking-while-locked",
    "rank-path-effects",
    "blocking-in-governor",
    "effect-drift",
];

/// One-line rule descriptions, rendered as SARIF `shortDescription` and
/// kept in lockstep with [`ALL_RULES`] (a unit test enforces the pairing).
pub const RULE_META: &[(&str, &str)] = &[
    (
        "single-exit",
        "A protected region must leave through exactly one success exit",
    ),
    (
        "protect-pairing",
        "Every protect() needs its matching unprotect() on all paths",
    ),
    (
        "reset-order",
        "Context::reset must precede metadata reads after a failure",
    ),
    (
        "delta-base-reset",
        "Delta chains must re-base after a restore or membership change",
    ),
    (
        "dropped-result",
        "A Result on a recovery path must be consumed, not dropped",
    ),
    (
        "panic-reach",
        "No panic site may be reachable from a recovery entry point",
    ),
    (
        "wildcard-match",
        "Failure-enum matches must be exhaustive, no catch-all arms",
    ),
    (
        "unsafe-comment",
        "Every unsafe needs a SAFETY comment within ten lines",
    ),
    (
        "relaxed-sync",
        "Ordering::Relaxed is forbidden on synchronization-carrying atomics",
    ),
    (
        "thread-spawn",
        "Model-checked crates must spawn through the loom-aware shims",
    ),
    (
        "protocol-typestate",
        "Checkpoint/capture/ULFM call sequences must follow their automata",
    ),
    (
        "collective-match",
        "Collectives must be invoked uniformly across rank-dependent branches",
    ),
    (
        "lock-order",
        "Workspace lock acquisition order must stay acyclic",
    ),
    (
        "blocking-while-locked",
        "No blocking call while holding a lock guard",
    ),
    (
        "rank-path-effects",
        "No wall-clock, nondeterminism, or thread spawns reachable from rank entry points",
    ),
    (
        "blocking-in-governor",
        "No blocking inside bandwidth-governor math or telemetry export callbacks",
    ),
    (
        "effect-drift",
        "Unsanctioned effect sites on the rank path must match the committed inventory",
    ),
];

/// The one-line description for a rule id (`""` for unknown ids).
pub fn rule_short(id: &str) -> &'static str {
    RULE_META
        .iter()
        .find(|(r, _)| *r == id)
        .map(|(_, d)| *d)
        .unwrap_or("")
}

pub fn in_crates(krate: &str, list: &[&str]) -> bool {
    list.contains(&krate)
}

/// Run every rule over the workspace. `deep` widens method/free-call
/// resolution across crate boundaries (`LINT_DEEP=1`); `include_mutants`
/// lets the seeded `lint-mutants` violations into the call graph.
pub fn run_all(ws: &Workspace, opts: GraphOpts) -> Vec<Diagnostic> {
    run_all_timed(ws, opts).0
}

/// Like [`run_all`], but also returns per-pass wall-clock timings (one
/// entry per analysis pass; the token pass covers its three rule ids and
/// the lock pass covers `lock-order` + `blocking-while-locked`).
pub fn run_all_timed(
    ws: &Workspace,
    opts: GraphOpts,
) -> (Vec<Diagnostic>, Vec<(&'static str, std::time::Duration)>) {
    let graph = CallGraph::build(ws, opts);
    let resolver = Resolver::new(ws, opts);
    let mut diags: Vec<Diagnostic> = Vec::new();
    let mut timings: Vec<(&'static str, std::time::Duration)> = Vec::new();
    // The effect summaries are shared by three rules; the inference cost
    // gets its own timing entry so the per-rule numbers stay honest.
    let t0 = std::time::Instant::now();
    let fx = crate::effects::EffectAnalysis::run(ws, opts);
    timings.push(("effects-infer", t0.elapsed()));
    {
        let mut pass = |name: &'static str, f: &mut dyn FnMut() -> Vec<Diagnostic>| {
            let t0 = std::time::Instant::now();
            let out = f();
            timings.push((name, t0.elapsed()));
            diags.extend(out);
        };
        pass("single-exit", &mut || single_exit::check(ws, opts));
        pass("protect-pairing", &mut || pairing::check(ws, &graph));
        pass("reset-order", &mut || reset_order::check(ws));
        pass("delta-base-reset", &mut || {
            delta_base_reset::check(ws, opts)
        });
        pass("dropped-result", &mut || {
            dropped_result::check(ws, &resolver)
        });
        pass("panic-reach", &mut || panic_reach::check(ws, &graph, opts));
        pass("wildcard-match", &mut || wildcard::check(ws));
        pass("tokens", &mut || tokens::check(ws));
        pass("protocol-typestate", &mut || {
            typestate::check(ws, &resolver, opts)
        });
        pass("collective-match", &mut || {
            collective_match::check(ws, &resolver, opts)
        });
        pass("lock-order", &mut || lockorder::check(ws, &resolver, opts));
        pass("rank-path-effects", &mut || {
            crate::effects::check_rank_path(ws, &fx, opts)
        });
        pass("blocking-in-governor", &mut || {
            crate::effects::check_governor(ws, &fx, opts)
        });
        pass("effect-drift", &mut || {
            crate::effects::check_drift(ws, &fx, opts)
        });
    }
    // Stable order, then full-tuple dedupe: deep mode can re-resolve a
    // call the shallow pass already reported (same rule, site, and
    // message) — one finding must survive, not two. The key() tuple is
    // not enough here: it drops the line, and two distinct findings in
    // one function would collapse.
    diags.sort_by(|a, b| {
        (
            a.file.as_str(),
            a.line,
            a.rule,
            a.func.as_str(),
            a.msg.as_str(),
        )
            .cmp(&(
                b.file.as_str(),
                b.line,
                b.rule,
                b.func.as_str(),
                b.msg.as_str(),
            ))
    });
    diags.dedup_by(|a, b| {
        a.rule == b.rule
            && a.file == b.file
            && a.line == b.line
            && a.func == b.func
            && a.msg == b.msg
    });
    (diags, timings)
}
