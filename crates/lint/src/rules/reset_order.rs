//! `reset-order`: after a communicator repair, `Context::reset(new_comm)`
//! clears the checkpoint-metadata cache (agreed versions, region stats)
//! before the next commit. Reading that metadata *before* the reset in the
//! same recovery function consumes pre-failure state — the classic stale
//! read the paper's reset contract exists to prevent (a rank would agree
//! on a version other ranks no longer have).
//!
//! The check is intra-procedural and positional: within one non-test
//! function, any stale-metadata read (`latest_version`, `latest_agreed`,
//! `region_stats`, `checkpoint_bytes`) textually before a `.reset(comm)`
//! call is flagged. Argument-less `.reset()` calls (accumulator resets
//! etc.) are ignored — the lint targets the communicator-taking reset.

use crate::callgraph::Workspace;
use crate::diag::Diagnostic;
use crate::parser::CallKind;
use crate::rules::STALE_METADATA_READS;

pub fn check(ws: &Workspace) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for (id, f) in ws.fns() {
        if f.is_test || ws.file(id).file_is_test {
            continue;
        }
        let file = ws.file(id);
        // First `.reset(<non-empty args>)` call in the function.
        let reset_si = f
            .calls
            .iter()
            .filter(|c| c.kind == CallKind::Method && c.name() == "reset")
            .filter(|c| {
                // The token after the callee name's `(` must not be `)`.
                let mut k = c.si + 1;
                while k < file.sig.len() && file.text(k) != "(" {
                    k += 1;
                }
                k + 1 < file.sig.len() && file.text(k + 1) != ")"
            })
            .map(|c| c.si)
            .min();
        let Some(reset_si) = reset_si else { continue };
        for call in &f.calls {
            if call.kind == CallKind::Method
                && STALE_METADATA_READS.contains(&call.name())
                && call.si < reset_si
            {
                out.push(Diagnostic {
                    rule: "reset-order",
                    file: file.rel.clone(),
                    line: call.line,
                    func: f.qual(),
                    msg: format!(
                        "`{}()` reads checkpoint metadata before `reset(new_comm)` clears \
                         the cache; move the read after the reset",
                        call.name()
                    ),
                });
            }
        }
    }
    out
}
