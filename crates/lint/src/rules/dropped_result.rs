//! `dropped-result`: a `Result` produced on a recovery path and bound
//! without ever being matched, propagated, or read is a swallowed failure
//! — the error class Rocco et al. identify as the dominant fault-tolerance
//! bug (misuse of the recovery API, not the runtime). `let _ = fallible()`
//! on a recovery path silently converts a failure into success.
//!
//! Dataflow, intra-procedural: for each `let` in a non-test function of
//! the strict-failure crates, if the pattern is `_` (or a binding never
//! used later in the body), the initializer has no `?`, and some call in
//! the initializer resolves — via the workspace call graph's name
//! resolution — to a function whose return type mentions `Result`, the
//! binding is flagged.

use crate::callgraph::{Resolver, Workspace};
use crate::diag::Diagnostic;
use crate::lexer::TokKind;
use crate::parser::LetPat;
use crate::rules::{in_crates, STRICT_FAILURE_CRATES};

pub fn check(ws: &Workspace, resolver: &Resolver<'_>) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for (id, f) in ws.fns() {
        if f.is_test || ws.file(id).file_is_test {
            continue;
        }
        let file = ws.file(id);
        if !in_crates(&file.crate_name, STRICT_FAILURE_CRATES) {
            continue;
        }
        let Some((_, body_end)) = f.body else {
            continue;
        };
        for stmt in &f.lets {
            if stmt.question {
                continue;
            }
            match &stmt.pat {
                LetPat::Wild => {}
                LetPat::Ident(name) => {
                    // Used anywhere later in the body → not dropped.
                    let used = (stmt.stmt_end..body_end)
                        .any(|si| file.tok(si).kind == TokKind::Ident && file.text(si) == name);
                    if used {
                        continue;
                    }
                }
                LetPat::Other => continue,
            }
            let result_call = f.calls_in(stmt.init).find(|call| {
                resolver
                    .resolve(id, call)
                    .iter()
                    .any(|&callee| ws.fn_item(callee).ret.contains("Result"))
            });
            if let Some(call) = result_call {
                out.push(Diagnostic {
                    rule: "dropped-result",
                    file: file.rel.clone(),
                    line: stmt.line,
                    func: f.qual(),
                    msg: format!(
                        "`Result` from `{}(…)` is bound and never matched or propagated; \
                         on a recovery path a swallowed error becomes silent data loss",
                        call.name()
                    ),
                });
            }
        }
    }
    out
}
