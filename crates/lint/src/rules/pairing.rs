//! `protect-pairing`: a VeloC-style `protect(id, region)` registration
//! with no covering `checkpoint`/`restart` call, or a `restart` into a
//! file that never protects anything, is a protocol error — the paper's
//! data layer only persists regions that are both registered *and*
//! committed, and only restores into regions that were re-registered
//! after the repair (Fig. 4's "protect → restart/checkpoint" sequence).
//!
//! Granularity: the "region" is the source file, refined by the call
//! graph — a `protect` caller is also clean when a `checkpoint`/`restart`
//! call appears in one of its transitive callees. This keeps backend
//! plumbing (where protect and checkpoint live in different methods of
//! one file) and app runners (protect in a helper, checkpoint in the
//! loop) clean without type information.

use std::collections::HashSet;

use crate::callgraph::{CallGraph, FnId, Workspace};
use crate::diag::Diagnostic;
use crate::parser::CallKind;

fn method_call_named(ws: &Workspace, id: FnId, names: &[&str]) -> bool {
    ws.fn_item(id)
        .calls
        .iter()
        .any(|c| c.kind == CallKind::Method && names.contains(&c.name()))
}

fn file_has(ws: &Workspace, fi: usize, names: &[&str]) -> bool {
    ws.files[fi].fns.iter().filter(|f| !f.is_test).any(|f| {
        f.calls
            .iter()
            .any(|c| c.kind == CallKind::Method && names.contains(&c.name()))
    })
}

pub fn check(ws: &Workspace, graph: &CallGraph) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for (id, f) in ws.fns() {
        if f.is_test || ws.file(id).file_is_test {
            continue;
        }
        let has_protect = method_call_named(ws, id, &["protect"]);
        let has_restart = method_call_named(ws, id, &["restart"]);
        if !has_protect && !has_restart {
            continue;
        }
        // File-level co-occurrence first, then the call-graph closure.
        let covers = |names: &[&str]| -> bool {
            if file_has(ws, id.0, names) {
                return true;
            }
            let reach: HashSet<FnId> = graph.reachable(&[id]);
            reach.iter().any(|&r| method_call_named(ws, r, names))
        };
        if has_protect && !covers(&["checkpoint", "restart"]) {
            let site = f
                .calls
                .iter()
                .find(|c| c.kind == CallKind::Method && c.name() == "protect")
                .expect("has_protect implies a protect call");
            out.push(Diagnostic {
                rule: "protect-pairing",
                file: ws.file(id).rel.clone(),
                line: site.line,
                func: f.qual(),
                msg: "protect() registers a region but no checkpoint()/restart() covers it \
                      in this file or its callees; the region is never persisted"
                    .into(),
            });
        }
        if has_restart && !covers(&["protect"]) {
            let site = f
                .calls
                .iter()
                .find(|c| c.kind == CallKind::Method && c.name() == "restart")
                .expect("has_restart implies a restart call");
            out.push(Diagnostic {
                rule: "protect-pairing",
                file: ws.file(id).rel.clone(),
                line: site.line,
                func: f.qual(),
                msg: "restart() restores checkpoint data but nothing here protect()s a \
                      region; restore into unregistered regions fails at runtime \
                      (UnknownRegion)"
                    .into(),
            });
        }
    }
    out
}
