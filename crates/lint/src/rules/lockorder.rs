//! `lock-order` + `blocking-while-locked` — workspace-wide lock-acquisition
//! graph with cycle detection, and blocking calls under a held lock.
//!
//! The lock universe is harvested from declarations (`name: Mutex<…>`,
//! `name: RwLock<…>`, including `Arc<Mutex<…>>` wrappings and statics); an
//! acquisition is a 0-argument `.lock()`/`.read()`/`.write()` whose
//! receiver's final identifier names a harvested lock. Guard lifetimes
//! follow Rust scoping: a `let`-bound guard lives to the end of its
//! enclosing block (or an explicit `drop(guard)`), `let _ =` and inline
//! temporaries die at the end of the statement.
//!
//! Within a guard's extent, further acquisitions add `held → acquired`
//! edges — directly, or transitively through calls that resolve to exactly
//! one function whose summary acquires locks. An edge participating in a
//! cycle is reported as `lock-order`. A blocking operation (mailbox
//! `recv`, `rendezvous`, collectives, `checkpoint_wait`) inside a guard's
//! extent is reported as `blocking-while-locked` — the classic
//! router-stall shape: a receive that can only be satisfied by a peer who
//! needs the held lock. Condvar `wait` is exempt (it releases the lock by
//! design), and same-lock self-edges are skipped: distinct instances share
//! a field name (`mailboxes[a].queue` vs `mailboxes[b].queue`), which the
//! name-level graph cannot tell apart.

use std::collections::{HashMap, HashSet};

use crate::callgraph::{FnId, GraphOpts, Resolver, Workspace};
use crate::cfg;
use crate::diag::Diagnostic;
use crate::parser::{CallKind, FnItem, LetPat, ParsedFile};

pub const RULE_ORDER: &str = "lock-order";
pub const RULE_BLOCKING: &str = "blocking-while-locked";

/// Blocking method names (with a minimum arity where a common
/// non-blocking method shares the name).
const BLOCKING: &[(&str, usize)] = &[
    ("recv", 0),
    ("recv_bytes", 0),
    ("recv_into", 0),
    ("recv_vec", 0),
    ("recv_timeout", 0),
    ("sendrecv", 0),
    ("rendezvous", 0),
    ("barrier", 0),
    ("agree", 0),
    ("shrink", 0),
    ("allgather", 0),
    ("allreduce", 0),
    ("allreduce_scalar", 0),
    ("allreduce_with", 0),
    ("bcast", 0),
    ("bcast_bytes", 0),
    ("gather", 0),
    ("reduce_with", 0),
    ("reduce", 2),
    ("checkpoint_wait", 0),
];

const MAX_DEPTH: usize = 6;

/// Lock identity: (declaring crate, declared name).
type LockId = (String, String);

fn lock_label(l: &LockId) -> String {
    format!("{}::{}", l.0, l.1)
}

/// `name: …Mutex<…>` / `name: …RwLock<…>` declarations per crate. The
/// lookahead tolerates `Arc<…>`/`Box<…>`/`&` wrappings.
fn harvest_universe(ws: &Workspace) -> HashMap<String, Vec<String>> {
    let mut by_name: HashMap<String, Vec<String>> = HashMap::new();
    for file in &ws.files {
        if !file.rel.starts_with("crates/") {
            continue;
        }
        for si in 0..file.sig.len().saturating_sub(2) {
            if file.tok(si).kind != crate::lexer::TokKind::Ident {
                continue;
            }
            if file.text(si + 1) != ":" || file.is_colcol(si + 1) {
                continue;
            }
            // `:` of a path (`a::b`) — the previous check; also skip when
            // the colon closes a ternary-ish construct (none in Rust).
            let mut k = si + 2;
            let mut found = false;
            for _ in 0..10 {
                if k + 1 >= file.sig.len() {
                    break;
                }
                match file.text(k) {
                    "Mutex" | "RwLock" if file.text(k + 1) == "<" => {
                        found = true;
                        break;
                    }
                    "," | ";" | ")" | "}" | "{" | "=" | ">" => break,
                    _ => k += 1,
                }
            }
            if found {
                let name = file.text(si).to_owned();
                by_name
                    .entry(name)
                    .or_default()
                    .push(file.crate_name.clone());
            }
        }
    }
    for crates in by_name.values_mut() {
        crates.sort();
        crates.dedup();
    }
    by_name
}

/// An acquisition site with the guard's held extent `[start, end)` in
/// significant-token indices.
struct Acq {
    lock: LockId,
    si: usize,
    line: u32,
    range: (usize, usize),
}

/// Brace pairs `{open → close}` within a function body.
fn brace_pairs(file: &ParsedFile, body: (usize, usize)) -> Vec<(usize, usize)> {
    let mut pairs = Vec::new();
    let mut stack = Vec::new();
    for si in body.0..=body.1.min(file.sig.len() - 1) {
        match file.text(si) {
            "{" => stack.push(si),
            "}" => {
                if let Some(open) = stack.pop() {
                    pairs.push((open, si));
                }
            }
            _ => {}
        }
    }
    pairs
}

/// Innermost brace close enclosing `si`.
fn enclosing_close(pairs: &[(usize, usize)], si: usize) -> Option<usize> {
    pairs
        .iter()
        .filter(|(o, c)| *o < si && si < *c)
        .min_by_key(|(o, c)| c - o)
        .map(|(_, c)| *c)
}

/// End of the statement containing `si` (the `;`/`,`/closing brace at
/// relative depth 0).
fn stmt_end(file: &ParsedFile, mut si: usize, body_end: usize) -> usize {
    let mut depth = 0i64;
    let end = body_end.min(file.sig.len());
    while si < end {
        match file.text(si) {
            "(" | "[" | "{" => depth += 1,
            ")" | "]" | "}" => {
                if depth == 0 {
                    return si;
                }
                depth -= 1;
            }
            ";" | "," if depth == 0 => return si + 1,
            _ => {}
        }
        si += 1;
    }
    si
}

/// Collect the lock acquisitions of `f` with their held extents.
fn acquisitions(
    file: &ParsedFile,
    f: &FnItem,
    universe: &HashMap<String, Vec<String>>,
) -> Vec<Acq> {
    let Some(body) = f.body else {
        return Vec::new();
    };
    let pairs = brace_pairs(file, body);
    let mut out = Vec::new();
    for call in &f.calls {
        if call.kind != CallKind::Method
            || !matches!(call.name(), "lock" | "read" | "write")
            || cfg::call_arity(file, call) != 0
        {
            continue;
        }
        let Some(recv) = cfg::receiver_ident(file, call) else {
            continue;
        };
        let Some(crates) = universe.get(&recv) else {
            continue;
        };
        let krate = if crates.contains(&file.crate_name) {
            file.crate_name.clone()
        } else if crates.len() == 1 {
            crates[0].clone()
        } else {
            continue; // ambiguous cross-crate name
        };
        let lock: LockId = (krate, recv);

        // Guard extent. A chained acquisition (`x.lock().get(…)`) is a
        // temporary even inside a `let` init: the binding holds the
        // projected value, not the guard, so the guard dies with the
        // statement (Rust temporary-scope rules).
        let chained = call.si + 3 < file.sig.len() && file.text(call.si + 3) == ".";
        // Innermost covering `let`: an enclosing `if let`/outer statement
        // can also span this token range, and its extent would be wrong.
        let stmt = f
            .lets
            .iter()
            .filter(|l| l.init.0 <= call.si && call.si < l.init.1)
            .max_by_key(|l| l.init.0);
        let range = match stmt {
            Some(l) if chained || l.pat == LetPat::Wild => (call.si, l.stmt_end),
            Some(l) => {
                let start = l.stmt_end;
                let mut end =
                    enclosing_close(&pairs, l.stmt_end.saturating_sub(1)).unwrap_or(body.1);
                if let LetPat::Ident(name) = &l.pat {
                    // Explicit `drop(guard)` truncates the extent.
                    for c in f.calls.iter() {
                        if c.si >= start
                            && c.si < end
                            && c.name() == "drop"
                            && c.kind != CallKind::Method
                            && file.text(c.si + 1 + 3 * (c.segs.len() - 1)) == "("
                            && file.text(c.si + 2 + 3 * (c.segs.len() - 1)) == *name
                        {
                            end = c.si;
                            break;
                        }
                    }
                }
                (start, end)
            }
            None => (call.si, stmt_end(file, call.si + 1, body.1)),
        };
        out.push(Acq {
            lock,
            si: call.si,
            line: call.line,
            range,
        });
    }
    out
}

/// Transitive per-function summary: locks acquired anywhere inside, and
/// the first blocking call name (if any).
#[derive(Clone, Default)]
struct Summary {
    acquires: HashSet<LockId>,
    blocking: Option<String>,
}

struct Summarizer<'a> {
    ws: &'a Workspace,
    resolver: &'a Resolver<'a>,
    universe: &'a HashMap<String, Vec<String>>,
    in_scope: &'a HashSet<FnId>,
    memo: HashMap<FnId, Summary>,
    stack: Vec<FnId>,
}

impl Summarizer<'_> {
    fn summary(&mut self, id: FnId) -> Summary {
        if let Some(s) = self.memo.get(&id) {
            return s.clone();
        }
        if self.stack.contains(&id) || self.stack.len() >= MAX_DEPTH {
            return Summary::default();
        }
        self.stack.push(id);
        let file = self.ws.file(id);
        let f = self.ws.fn_item(id);
        let mut sum = Summary::default();
        for a in acquisitions(file, f, self.universe) {
            sum.acquires.insert(a.lock);
        }
        for call in &f.calls {
            if call.kind == CallKind::Macro {
                continue;
            }
            if call.kind == CallKind::Method && is_blocking(file, call) {
                sum.blocking.get_or_insert_with(|| call.name().to_owned());
                continue;
            }
            if !follow_call(file, call) {
                continue;
            }
            let cands: Vec<FnId> = self
                .resolver
                .resolve(id, call)
                .into_iter()
                .filter(|c| self.in_scope.contains(c))
                .collect();
            if cands.len() == 1 {
                let inner = self.summary(cands[0]);
                sum.acquires.extend(inner.acquires);
                if sum.blocking.is_none() {
                    sum.blocking = inner.blocking;
                }
            }
        }
        self.stack.pop();
        self.memo.insert(id, sum.clone());
        sum
    }
}

fn is_blocking(file: &ParsedFile, call: &crate::parser::Call) -> bool {
    BLOCKING
        .iter()
        .any(|(n, min)| call.name() == *n && cfg::call_arity(file, call) >= *min)
}

/// Whether a call is worth resolving for lock summaries. Free and path
/// calls always are; a method call only when its receiver is literally
/// `self` — the name-based resolver would otherwise misattribute methods
/// invoked on a guard's payload (`self.own.lock().clear()` resolving to
/// `Store::clear`) and fabricate edges.
fn follow_call(file: &ParsedFile, call: &crate::parser::Call) -> bool {
    match call.kind {
        CallKind::Macro => false,
        CallKind::Method => cfg::receiver_ident(file, call).as_deref() == Some("self"),
        _ => true,
    }
}

/// One `held → acquired` edge with its best reporting site.
struct Edge {
    held: LockId,
    acquired: LockId,
    file: String,
    line: u32,
    func: String,
    via: Option<String>,
}

pub fn check(ws: &Workspace, resolver: &Resolver, opts: GraphOpts) -> Vec<Diagnostic> {
    let universe = harvest_universe(ws);
    if universe.is_empty() {
        return Vec::new();
    }
    let mut in_scope: HashSet<FnId> = HashSet::new();
    for (id, f) in ws.fns() {
        if f.is_test || f.body.is_none() {
            continue;
        }
        if f.mutant_gated && !opts.include_mutants {
            continue;
        }
        if !ws.file(id).rel.starts_with("crates/") {
            continue;
        }
        in_scope.insert(id);
    }
    let mut sums = Summarizer {
        ws,
        resolver,
        universe: &universe,
        in_scope: &in_scope,
        memo: HashMap::new(),
        stack: Vec::new(),
    };

    let mut edges: Vec<Edge> = Vec::new();
    let mut diags: Vec<Diagnostic> = Vec::new();
    let mut ids: Vec<FnId> = in_scope.iter().copied().collect();
    ids.sort_unstable();
    for &id in &ids {
        let file = ws.file(id);
        let f = ws.fn_item(id);
        let acqs = acquisitions(file, f, &universe);
        if acqs.is_empty() {
            continue;
        }
        for a in &acqs {
            // Direct nested acquisitions.
            for b in &acqs {
                if b.si > a.si && b.si >= a.range.0 && b.si < a.range.1 && b.lock != a.lock {
                    edges.push(Edge {
                        held: a.lock.clone(),
                        acquired: b.lock.clone(),
                        file: file.rel.clone(),
                        line: b.line,
                        func: f.qual(),
                        via: None,
                    });
                }
            }
            // Calls made while the guard is held.
            for call in &f.calls {
                if call.si < a.range.0.max(a.si + 1) || call.si >= a.range.1 {
                    continue;
                }
                if call.kind == CallKind::Macro {
                    continue;
                }
                if call.kind == CallKind::Method && is_blocking(file, call) {
                    diags.push(Diagnostic {
                        rule: RULE_BLOCKING,
                        file: file.rel.clone(),
                        line: call.line,
                        func: f.qual(),
                        msg: format!(
                            "blocking `{}` while holding lock `{}` (acquired line {}); \
                             the peer that would complete it may need the same lock",
                            call.name(),
                            lock_label(&a.lock),
                            a.line
                        ),
                    });
                    continue;
                }
                if !follow_call(file, call) {
                    continue;
                }
                let cands: Vec<FnId> = resolver
                    .resolve(id, call)
                    .into_iter()
                    .filter(|c| in_scope.contains(c))
                    .collect();
                if cands.len() != 1 {
                    continue;
                }
                let sum = sums.summary(cands[0]);
                for l in &sum.acquires {
                    if *l != a.lock {
                        edges.push(Edge {
                            held: a.lock.clone(),
                            acquired: l.clone(),
                            file: file.rel.clone(),
                            line: call.line,
                            func: f.qual(),
                            via: Some(call.name().to_owned()),
                        });
                    }
                }
                if let Some(b) = &sum.blocking {
                    diags.push(Diagnostic {
                        rule: RULE_BLOCKING,
                        file: file.rel.clone(),
                        line: call.line,
                        func: f.qual(),
                        msg: format!(
                            "call `{}` blocks (transitively reaches `{b}`) while \
                             holding lock `{}` (acquired line {})",
                            call.name(),
                            lock_label(&a.lock),
                            a.line
                        ),
                    });
                }
            }
        }
    }

    // Cycle detection: an edge is reported when its target can reach its
    // source through the graph.
    let mut adj: HashMap<&LockId, HashSet<&LockId>> = HashMap::new();
    for e in &edges {
        adj.entry(&e.held).or_default().insert(&e.acquired);
    }
    let reaches = |from: &LockId, to: &LockId| -> bool {
        let mut seen: HashSet<&LockId> = HashSet::new();
        let mut stack: Vec<&LockId> = vec![from];
        while let Some(n) = stack.pop() {
            if n == to {
                return true;
            }
            if let Some(next) = adj.get(n) {
                for m in next {
                    if seen.insert(m) {
                        stack.push(m);
                    }
                }
            }
        }
        false
    };
    let mut reported: HashSet<(String, String, String)> = HashSet::new();
    for e in &edges {
        if !reaches(&e.acquired, &e.held) {
            continue;
        }
        let key = (lock_label(&e.held), lock_label(&e.acquired), e.func.clone());
        if !reported.insert(key) {
            continue;
        }
        let via = match &e.via {
            Some(v) => format!(" (via call `{v}`)"),
            None => String::new(),
        };
        diags.push(Diagnostic {
            rule: RULE_ORDER,
            file: e.file.clone(),
            line: e.line,
            func: e.func.clone(),
            msg: format!(
                "lock `{}` acquired while holding `{}`{via}, and the reverse \
                 order also occurs — cyclic lock order, potential deadlock; \
                 pick one global acquisition order",
                lock_label(&e.acquired),
                lock_label(&e.held),
            ),
        });
    }
    diags
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(files: &[(&str, &str)]) -> Vec<Diagnostic> {
        let ws = Workspace {
            root: None,
            files: files
                .iter()
                .map(|(rel, src)| {
                    let krate = crate::classify(rel).map(|(c, _)| c).unwrap_or_default();
                    ParsedFile::parse(rel, &krate, src, false)
                })
                .collect(),
        };
        let opts = GraphOpts::default();
        let resolver = Resolver::new(&ws, opts);
        check(&ws, &resolver, opts)
    }

    const DECLS: &str = "pub struct S {\n    alpha: Mutex<u64>,\n    beta: Mutex<u64>,\n}\n";

    #[test]
    fn opposite_acquisition_orders_form_a_cycle() {
        let d = run(&[(
            "crates/simmpi/src/l.rs",
            &format!(
                "{DECLS}impl S {{\n    fn ab(&self) {{\n        let a = self.alpha.lock();\n        \
                 let b = self.beta.lock();\n        *a += *b;\n    }}\n    \
                 fn ba(&self) {{\n        let b = self.beta.lock();\n        \
                 let a = self.alpha.lock();\n        *b += *a;\n    }}\n}}\n"
            ),
        )]);
        let order: Vec<_> = d.iter().filter(|d| d.rule == RULE_ORDER).collect();
        assert_eq!(order.len(), 2, "one report per edge in the cycle: {d:?}");
        assert!(order[0].msg.contains("cyclic lock order"));
    }

    #[test]
    fn consistent_order_is_clean() {
        let d = run(&[(
            "crates/simmpi/src/l.rs",
            &format!(
                "{DECLS}impl S {{\n    fn ab(&self) {{\n        let a = self.alpha.lock();\n        \
                 let b = self.beta.lock();\n        *a += *b;\n    }}\n    \
                 fn ab2(&self) {{\n        let a = self.alpha.lock();\n        \
                 let b = self.beta.lock();\n        *b += *a;\n    }}\n}}\n"
            ),
        )]);
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn transitive_cycle_through_helpers() {
        let d = run(&[(
            "crates/simmpi/src/l.rs",
            &format!(
                "{DECLS}impl S {{\n    fn ab(&self) {{\n        let a = self.alpha.lock();\n        \
                 self.grab_beta();\n        *a += 1;\n    }}\n    \
                 fn grab_beta(&self) {{\n        let b = self.beta.lock();\n        *b += 1;\n    }}\n    \
                 fn ba(&self) {{\n        let b = self.beta.lock();\n        \
                 self.grab_alpha();\n        *b += 1;\n    }}\n    \
                 fn grab_alpha(&self) {{\n        let a = self.alpha.lock();\n        *a += 1;\n    }}\n}}\n"
            ),
        )]);
        let order: Vec<_> = d.iter().filter(|d| d.rule == RULE_ORDER).collect();
        assert_eq!(order.len(), 2, "transitive edges complete the cycle: {d:?}");
        assert!(order.iter().any(|d| d.msg.contains("via call")));
    }

    #[test]
    fn blocking_recv_under_lock_is_flagged_and_drop_clears_it() {
        let d = run(&[(
            "crates/simmpi/src/l.rs",
            "pub struct M {\n    queue: Mutex<Vec<u8>>,\n}\n\
             impl M {\n    fn bad(&self, rx: &Receiver) {\n        let q = self.queue.lock();\n        \
             let v = rx.recv();\n        q.push(v);\n    }\n    \
             fn good(&self, rx: &Receiver) {\n        let q = self.queue.lock();\n        \
             drop(q);\n        let _v = rx.recv();\n    }\n}\n",
        )]);
        let bwl: Vec<_> = d.iter().filter(|d| d.rule == RULE_BLOCKING).collect();
        assert_eq!(bwl.len(), 1, "{d:?}");
        assert!(bwl[0].func.contains("bad"));
        assert!(bwl[0].msg.contains("recv"));
    }

    #[test]
    fn temporary_guard_dies_at_statement_end() {
        let d = run(&[(
            "crates/simmpi/src/l.rs",
            "pub struct M {\n    queue: Mutex<Vec<u8>>,\n}\n\
             impl M {\n    fn ok(&self, rx: &Receiver) {\n        \
             self.queue.lock().clear();\n        let _v = rx.recv();\n    }\n}\n",
        )]);
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn wild_let_guard_dies_at_statement_end() {
        let d = run(&[(
            "crates/simmpi/src/l.rs",
            "pub struct M {\n    queue: Mutex<Vec<u8>>,\n}\n\
             impl M {\n    fn ok(&self, rx: &Receiver) {\n        \
             let _ = self.queue.lock();\n        let _v = rx.recv();\n    }\n}\n",
        )]);
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn condvar_wait_is_not_blocking() {
        let d = run(&[(
            "crates/simmpi/src/l.rs",
            "pub struct M {\n    queue: Mutex<Vec<u8>>,\n}\n\
             impl M {\n    fn ok(&self, cv: &Condvar) {\n        \
             let mut q = self.queue.lock();\n        cv.wait(&mut q);\n    }\n}\n",
        )]);
        assert!(d.is_empty(), "condvar wait releases the lock: {d:?}");
    }

    #[test]
    fn transitive_blocking_is_reported() {
        let d = run(&[(
            "crates/veloc/src/l.rs",
            "pub struct P {\n    state: Mutex<u64>,\n}\n\
             impl P {\n    fn outer(&self, rx: &Receiver) {\n        \
             let s = self.state.lock();\n        self.drain(rx);\n        *s;\n    }\n    \
             fn drain(&self, rx: &Receiver) {\n        rx.recv();\n    }\n}\n",
        )]);
        let bwl: Vec<_> = d.iter().filter(|d| d.rule == RULE_BLOCKING).collect();
        assert_eq!(bwl.len(), 1, "{d:?}");
        assert!(bwl[0].msg.contains("transitively"), "{}", bwl[0].msg);
    }

    #[test]
    fn io_write_and_reader_read_are_not_acquisitions() {
        let d = run(&[(
            "crates/veloc/src/l.rs",
            "pub struct P {\n    state: Mutex<u64>,\n}\n\
             impl P {\n    fn ok(&self, f: &mut File, buf: &mut [u8]) {\n        \
             let s = self.state.lock();\n        f.write(buf);\n        f.read(buf);\n        *s;\n    }\n}\n",
        )]);
        assert!(d.is_empty(), "1-arg read/write are io, not locks: {d:?}");
    }

    #[test]
    fn rwlock_read_then_other_lock_is_an_edge_but_not_a_cycle_alone() {
        let d = run(&[(
            "crates/telemetry/src/l.rs",
            "pub struct R {\n    dead: RwLock<u64>,\n    recorders: RwLock<u64>,\n}\n\
             impl R {\n    fn f(&self) {\n        let d = self.dead.read();\n        \
             let r = self.recorders.read();\n        *d + *r;\n    }\n}\n",
        )]);
        assert!(
            d.is_empty(),
            "an edge without a reverse edge is fine: {d:?}"
        );
    }
}
