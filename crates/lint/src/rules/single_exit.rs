//! `single-exit`: the paper's single control-flow exit point (§ "Process
//! resiliency", Fig. 4). Every rank — survivor, repaired, or spare — must
//! leave the resilient region by returning through the `fenix::run` loop;
//! a `std::process::exit`/`abort` anywhere in the code the loop can reach
//! bypasses rank-state agreement and the final collective, exactly the bug
//! class Fenix's `Fenix_Init` contract exists to prevent.
//!
//! Roots are the functions that *call* `fenix::run`. The root itself is
//! exempt (exiting after the loop has returned is the harness's business);
//! everything transitively reachable from the root — which includes the
//! loop body closure's callees, since closure calls attribute to the
//! enclosing function — must be exit-free. Traversal is always deep
//! (cross-crate): a secondary exit hidden behind a crate boundary is still
//! a violation.

use crate::callgraph::{CallGraph, FnId, GraphOpts, Workspace};
use crate::diag::Diagnostic;
use crate::parser::CallKind;

pub fn check(ws: &Workspace, opts: GraphOpts) -> Vec<Diagnostic> {
    let roots: Vec<FnId> = ws
        .fns()
        .filter(|(_, f)| !f.is_test)
        .filter(|(_, f)| {
            f.calls.iter().any(|c| {
                c.kind == CallKind::Path
                    && c.name() == "run"
                    && c.segs.iter().any(|s| s == "fenix" || s == "runtime")
            })
        })
        .map(|(id, _)| id)
        .collect();
    if roots.is_empty() {
        return Vec::new();
    }
    // Always resolve cross-crate for this rule.
    let graph = CallGraph::build(
        ws,
        GraphOpts {
            deep: true,
            include_mutants: opts.include_mutants,
        },
    );
    let mut reach = graph.reachable(&roots);
    for r in &roots {
        reach.remove(r);
    }
    let mut out = Vec::new();
    for id in reach {
        let f = ws.fn_item(id);
        for call in &f.calls {
            let is_exit = call.kind == CallKind::Path
                && matches!(call.name(), "exit" | "abort" | "_exit")
                && call.segs.iter().any(|s| s == "process" || s == "libc");
            if is_exit {
                out.push(Diagnostic {
                    rule: "single-exit",
                    file: ws.file(id).rel.clone(),
                    line: call.line,
                    func: f.qual(),
                    msg: format!(
                        "`{}` is reachable from the fenix::run loop; recovery paths must \
                         return through the single exit point, not terminate the process",
                        call.segs.join("::")
                    ),
                });
            }
        }
    }
    out
}
