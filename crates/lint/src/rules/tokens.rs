//! Token-stream ports of the PR 2 regex rules. Same policy, better
//! substrate: string literals and comments can no longer fool the scan,
//! and `relaxed-sync` reasons over the enclosing *statement* instead of a
//! single source line.
//!
//! - `unsafe-comment`: every `unsafe` keyword needs a `SAFETY` comment
//!   within the ten preceding lines (mirrors the workspace-level
//!   `undocumented_unsafe_blocks` clippy deny, but also covers `unsafe
//!   impl`/`unsafe fn` in fixtures and non-clippy builds);
//! - `relaxed-sync`: `Ordering::Relaxed` in a statement that touches a
//!   synchronization-carrying atomic (`seq`, `head`, `stop`, …) outside
//!   the audited seqlock file;
//! - `thread-spawn`: raw `std::thread::{spawn, Builder}` in the
//!   model-checked crates — threads there must go through the loom-aware
//!   shims so the model checker can interleave them.

use crate::callgraph::Workspace;
use crate::diag::Diagnostic;
use crate::lexer::TokKind;
use crate::parser::ParsedFile;
use crate::rules::{in_crates, AUDITED_RELAXED, MODEL_CHECKED_CRATES, SYNC_ATOMIC_NAMES};

pub fn check(ws: &Workspace) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for file in &ws.files {
        unsafe_comment(file, &mut out);
        relaxed_sync(file, &mut out);
        thread_spawn(file, &mut out);
    }
    out
}

fn unsafe_comment(file: &ParsedFile, out: &mut Vec<Diagnostic>) {
    for si in 0..file.sig.len() {
        if file.tok(si).kind != TokKind::Ident || file.text(si) != "unsafe" {
            continue;
        }
        let line = file.line(si);
        let documented = file.lexed.toks.iter().any(|t| {
            matches!(t.kind, TokKind::LineComment | TokKind::BlockComment)
                && t.line + 10 >= line
                && t.line <= line
                && {
                    let text = &file.lexed.src[t.start..t.end];
                    text.contains("SAFETY") || text.contains("Safety")
                }
        });
        if !documented {
            let func = file.fn_at(si).map(|f| f.qual()).unwrap_or_default();
            out.push(Diagnostic {
                rule: "unsafe-comment",
                file: file.rel.clone(),
                line,
                func,
                msg: "`unsafe` without a SAFETY comment in the preceding 10 lines".into(),
            });
        }
    }
}

fn relaxed_sync(file: &ParsedFile, out: &mut Vec<Diagnostic>) {
    if AUDITED_RELAXED.contains(&file.rel.as_str()) {
        return;
    }
    for si in file.find_path_refs(&["Ordering", "Relaxed"]) {
        // Statement extent: nearest `;`/`{`/`}` on each side.
        let boundary = |t: &str| matches!(t, ";" | "{" | "}");
        let mut lo = si;
        while lo > 0 && !boundary(file.text(lo - 1)) {
            lo -= 1;
        }
        let mut hi = si;
        while hi + 1 < file.sig.len() && !boundary(file.text(hi)) {
            hi += 1;
        }
        let sync_ident = (lo..hi).find_map(|k| {
            let t = file.text(k);
            (file.tok(k).kind == TokKind::Ident && SYNC_ATOMIC_NAMES.contains(&t))
                .then(|| t.to_owned())
        });
        if let Some(name) = sync_ident {
            let func = file.fn_at(si).map(|f| f.qual()).unwrap_or_default();
            out.push(Diagnostic {
                rule: "relaxed-sync",
                file: file.rel.clone(),
                line: file.line(si),
                func,
                msg: format!(
                    "Ordering::Relaxed on synchronization-carrying atomic `{name}`; \
                     use Acquire/Release (or audit the file in AUDITED_RELAXED)"
                ),
            });
        }
    }
}

fn thread_spawn(file: &ParsedFile, out: &mut Vec<Diagnostic>) {
    if !in_crates(&file.crate_name, MODEL_CHECKED_CRATES) || file.file_is_test {
        return;
    }
    for segs in [
        &["std", "thread", "spawn"][..],
        &["std", "thread", "Builder"][..],
    ] {
        for si in file.find_path_refs(segs) {
            if file.fn_at(si).is_some_and(|f| f.is_test) {
                continue;
            }
            let func = file.fn_at(si).map(|f| f.qual()).unwrap_or_default();
            out.push(Diagnostic {
                rule: "thread-spawn",
                file: file.rel.clone(),
                line: file.line(si),
                func,
                msg: format!(
                    "raw `{}` in a model-checked crate; use the loom-aware shim so the \
                     model checker can explore this thread",
                    segs.join("::")
                ),
            });
        }
    }
}
