//! Protocol-aware static analysis for the layered-resilience workspace.
//!
//! PR 2 shipped this crate as a line-regex scanner; it is now a real
//! analysis engine:
//!
//! - [`lexer`] — a lossless in-tree Rust lexer (raw strings with arbitrary
//!   hash counts, nested block comments, lifetime vs. char-literal
//!   disambiguation, shebang lines);
//! - [`parser`] — a lightweight item/expression parser producing function
//!   items with their calls, `let` bindings, `match` arms, and panic
//!   sites;
//! - [`callgraph`] — a workspace-wide call graph with heuristic name
//!   resolution and reachability;
//! - [`rules`] — the lint rules: six protocol lints encoding the paper's
//!   resilience invariants plus the three token rules carried over from
//!   PR 2 (the regex `unwrap-on-recovery-path` rule is superseded by
//!   `panic-reach` + `dropped-result` and removed);
//! - [`diag`] — human/JSON diagnostics and the justified-baseline format.
//!
//! The binary (`cargo run -p lint`) scans the workspace and exits
//! non-zero on any non-baselined finding; `--self-check` proves every
//! rule still fires on its fixture and stays quiet on the clean twin.
//!
//! The analyzer never scans `crates/lint` itself (its sources and
//! fixtures deliberately contain every pattern the rules hunt for).

pub mod callgraph;
pub mod cfg;
pub mod diag;
pub mod effects;
pub mod lexer;
pub mod parser;
pub mod rules;
pub mod sarif;

use std::path::{Path, PathBuf};
use std::sync::Arc;

pub use callgraph::{CallGraph, GraphOpts, Resolver, Workspace};
pub use diag::{Baseline, Diagnostic};
use parser::ParsedFile;

/// Classify a workspace-relative path: `Some((crate_name, is_test_file))`
/// for files the analyzer should read, `None` for files outside its
/// scope.
pub fn classify(rel: &str) -> Option<(String, bool)> {
    if !rel.ends_with(".rs") {
        return None;
    }
    if rel
        .split('/')
        .any(|part| matches!(part, "target" | ".git" | "fixtures" | "node_modules"))
    {
        return None;
    }
    if rel.starts_with("crates/lint/") {
        return None;
    }
    let parts: Vec<&str> = rel.split('/').collect();
    match parts.as_slice() {
        ["crates", krate, kind, ..] => {
            let is_test = matches!(*kind, "tests" | "benches");
            Some(((*krate).to_owned(), is_test))
        }
        ["shims", shim, ..] => Some(((*shim).to_owned(), false)),
        ["examples", ..] => Some(("examples".to_owned(), false)),
        ["tests", ..] | ["benches", ..] => Some(("layered-resilience".to_owned(), true)),
        ["src", ..] => Some(("layered-resilience".to_owned(), false)),
        _ => None,
    }
}

fn collect_rs(dir: &Path, root: &Path, out: &mut Vec<(String, PathBuf)>) {
    let entries = match std::fs::read_dir(dir) {
        Ok(e) => e,
        Err(_) => return,
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if matches!(
                name.as_ref(),
                "target" | ".git" | "fixtures" | "node_modules"
            ) {
                continue;
            }
            collect_rs(&path, root, out);
        } else if name.ends_with(".rs") {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .to_string_lossy()
                .replace('\\', "/");
            out.push((rel, path));
        }
    }
}

/// Read and parse every in-scope `.rs` file under `root`.
pub fn load_workspace(root: &Path) -> std::io::Result<Workspace> {
    let mut paths = Vec::new();
    collect_rs(root, root, &mut paths);
    paths.sort();
    let mut files = Vec::new();
    for (rel, path) in paths {
        let Some((krate, is_test)) = classify(&rel) else {
            continue;
        };
        let src = std::fs::read_to_string(&path)?;
        files.push(ParsedFile::parse(&rel, &krate, &src, is_test));
    }
    Ok(Workspace {
        root: Some(root.to_path_buf()),
        files,
    })
}

/// Run every rule over an already-loaded workspace.
pub fn analyze(ws: &Workspace, opts: GraphOpts) -> Vec<Diagnostic> {
    rules::run_all(ws, opts)
}

/// Like [`analyze`], but also returns per-pass wall-clock timings for
/// `--timings` / CI summaries.
pub fn analyze_timed(
    ws: &Workspace,
    opts: GraphOpts,
) -> (Vec<Diagnostic>, Vec<(&'static str, std::time::Duration)>) {
    rules::run_all_timed(ws, opts)
}

/// Pseudo-path a rule's fixtures are analyzed under, placing them in a
/// crate where the rule's scope applies.
fn fixture_rel(rule: &str) -> &'static str {
    match rule {
        "dropped-result" => "crates/veloc/src/__fixture__.rs",
        "panic-reach" | "wildcard-match" => "crates/fenix/src/__fixture__.rs",
        "relaxed-sync" => "crates/telemetry/src/__fixture__.rs",
        "thread-spawn" => "crates/simmpi/src/__fixture__.rs",
        "protocol-typestate" | "collective-match" => "crates/fenix/src/__fixture__.rs",
        "lock-order" | "blocking-while-locked" => "crates/simmpi/src/__fixture__.rs",
        "rank-path-effects" | "effect-drift" => "crates/simmpi/src/__fixture__.rs",
        "blocking-in-governor" => "crates/cluster/src/__fixture__.rs",
        // single-exit, protect-pairing, reset-order, unsafe-comment.
        _ => "crates/resilience/src/__fixture__.rs",
    }
}

/// Analyze one fixture file as a single-file workspace under `rule`'s
/// scope.
pub fn analyze_fixture(rule: &str, src: &str) -> Vec<Diagnostic> {
    let rel = fixture_rel(rule);
    let krate = classify(rel).map(|(c, _)| c).unwrap_or_default();
    let ws = Workspace {
        root: None,
        files: vec![ParsedFile::parse(rel, &krate, src, false)],
    };
    analyze(&ws, GraphOpts::default())
}

/// Verify every rule against its checked-in fixtures: `fire.rs` must
/// trigger the rule, `clean.rs` must produce no findings at all. Returns
/// per-rule fire counts.
///
/// The fixture tree is also *discovered*: a fixture directory with no
/// registered rule is an error (a rule was removed or renamed without its
/// fixtures), just as a registered rule without its fire/clean pair is —
/// so a new rule can never silently ship uncovered in either direction.
pub fn self_check(fixture_root: &Path) -> Result<Vec<(&'static str, usize)>, String> {
    if !fixture_root.is_dir() {
        return Err(format!(
            "fixture directory {} does not exist",
            fixture_root.display()
        ));
    }
    let entries = std::fs::read_dir(fixture_root)
        .map_err(|e| format!("cannot list {}: {e}", fixture_root.display()))?;
    for entry in entries.flatten() {
        if !entry.path().is_dir() {
            continue;
        }
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if !rules::ALL_RULES.contains(&name.as_ref()) {
            return Err(format!(
                "{name}: orphan fixture directory — no registered rule with this id"
            ));
        }
    }
    let mut counts = Vec::new();
    for &rule in rules::ALL_RULES {
        let dir = fixture_root.join(rule);
        let fire = std::fs::read_to_string(dir.join("fire.rs"))
            .map_err(|e| format!("{rule}: missing fire fixture: {e}"))?;
        let clean = std::fs::read_to_string(dir.join("clean.rs"))
            .map_err(|e| format!("{rule}: missing clean fixture: {e}"))?;
        let fire_diags = analyze_fixture(rule, &fire);
        let hits = fire_diags.iter().filter(|d| d.rule == rule).count();
        if hits == 0 {
            return Err(format!(
                "{rule}: fire fixture produced no `{rule}` finding (got: {:?})",
                fire_diags.iter().map(|d| d.rule).collect::<Vec<_>>()
            ));
        }
        let clean_diags = analyze_fixture(rule, &clean);
        if !clean_diags.is_empty() {
            return Err(format!(
                "{rule}: clean fixture is not clean: {}",
                clean_diags
                    .iter()
                    .map(|d| d.render_human())
                    .collect::<Vec<_>>()
                    .join("; ")
            ));
        }
        counts.push((rule, hits));
    }
    Ok(counts)
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum OutFormat {
    Human,
    Json,
    Sarif,
}

struct CliOpts {
    root: PathBuf,
    format: OutFormat,
    report: Option<PathBuf>,
    sarif: Option<PathBuf>,
    timings: Option<PathBuf>,
    baseline: Option<PathBuf>,
    trace: Option<PathBuf>,
    effects: Option<PathBuf>,
    deep: bool,
    mutants: bool,
    self_check: bool,
}

fn parse_args() -> Result<CliOpts, String> {
    let mut opts = CliOpts {
        root: PathBuf::from("."),
        format: OutFormat::Human,
        report: None,
        sarif: None,
        timings: None,
        baseline: None,
        trace: None,
        effects: None,
        deep: std::env::var("LINT_DEEP")
            .map(|v| v == "1")
            .unwrap_or(false),
        mutants: false,
        self_check: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        match a.as_str() {
            "--root" => opts.root = PathBuf::from(value("--root")?),
            "--format" => {
                opts.format = match value("--format")?.as_str() {
                    "json" => OutFormat::Json,
                    "human" => OutFormat::Human,
                    "sarif" => OutFormat::Sarif,
                    other => return Err(format!("unknown format `{other}`")),
                }
            }
            "--report" => opts.report = Some(PathBuf::from(value("--report")?)),
            "--sarif" => opts.sarif = Some(PathBuf::from(value("--sarif")?)),
            "--timings" => opts.timings = Some(PathBuf::from(value("--timings")?)),
            "--baseline" => opts.baseline = Some(PathBuf::from(value("--baseline")?)),
            "--trace" => opts.trace = Some(PathBuf::from(value("--trace")?)),
            "--effects" => opts.effects = Some(PathBuf::from(value("--effects")?)),
            "--deep" => opts.deep = true,
            "--mutants" => opts.mutants = true,
            "--self-check" => opts.self_check = true,
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(opts)
}

/// Render per-pass timings as a small JSON object (seconds, 6 decimals).
fn render_timings(timings: &[(&'static str, std::time::Duration)]) -> String {
    use std::fmt::Write as _;
    let mut out = String::from("{\n  \"passes\": {\n");
    for (i, (name, dur)) in timings.iter().enumerate() {
        let _ = write!(
            out,
            "    {}: {:.6}",
            diag::json_str(name),
            dur.as_secs_f64()
        );
        out.push_str(if i + 1 < timings.len() { ",\n" } else { "\n" });
    }
    let total: f64 = timings.iter().map(|(_, d)| d.as_secs_f64()).sum();
    let _ = write!(out, "  }},\n  \"total_seconds\": {total:.6}\n}}\n");
    out
}

/// Entry point for the `lint` binary. Exit codes: 0 clean, 1 findings or
/// self-check failure, 2 usage/IO error.
pub fn cli_main() {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("lint: {e}");
            eprintln!(
                "usage: lint [--root DIR] [--format human|json|sarif] [--report PATH] \
                 [--sarif PATH] [--timings PATH] [--baseline PATH] [--trace PATH] \
                 [--effects PATH] [--deep] [--mutants] [--self-check]"
            );
            std::process::exit(2);
        }
    };

    if opts.self_check {
        let fixtures = opts.root.join("crates/lint/fixtures");
        match self_check(&fixtures) {
            Ok(counts) => {
                for (rule, n) in counts {
                    println!("self-check: {rule} fires ({n} finding(s)), clean twin passes");
                }
                println!("self-check: all {} rules verified", rules::ALL_RULES.len());
            }
            Err(e) => {
                eprintln!("self-check FAILED: {e}");
                std::process::exit(1);
            }
        }
        return;
    }

    // Telemetry: the analysis runs under a StaticAnalysis span and books
    // per-rule finding counts, so lint cost shows up in the same trace
    // tooling as the runtime layers.
    let tel = telemetry::Telemetry::new(telemetry::TelemetryConfig::default());
    let acc = Arc::new(telemetry::PhaseAccumulator::new());
    let rec = tel.recorder(0, Arc::clone(&acc));

    let graph_opts = GraphOpts {
        deep: opts.deep,
        include_mutants: opts.mutants,
    };
    let outcome = rec.time(telemetry::Phase::StaticAnalysis, || {
        let ws = load_workspace(&opts.root)?;
        let (diags, timings) = analyze_timed(&ws, graph_opts);
        Ok::<_, std::io::Error>((ws, diags, timings))
    });
    let (ws, diags, timings) = match outcome {
        Ok(v) => v,
        Err(e) => {
            eprintln!("lint: failed to read workspace: {e}");
            std::process::exit(2);
        }
    };
    let files_scanned = ws.files.len();
    for &rule in rules::ALL_RULES {
        let n = diags.iter().filter(|d| d.rule == rule).count() as u64;
        tel.metrics().counter(&format!("lint.{rule}")).add(n);
    }
    tel.metrics()
        .counter("lint.files_scanned")
        .add(files_scanned as u64);

    let baseline_path = opts
        .baseline
        .clone()
        .unwrap_or_else(|| opts.root.join("lint-baseline.txt"));
    let baseline = if baseline_path.is_file() {
        match std::fs::read_to_string(&baseline_path) {
            Ok(text) => match Baseline::parse(&text) {
                Ok(b) => b,
                Err(e) => {
                    eprintln!("lint: bad baseline {}: {e}", baseline_path.display());
                    std::process::exit(2);
                }
            },
            Err(e) => {
                eprintln!("lint: cannot read baseline: {e}");
                std::process::exit(2);
            }
        }
    } else {
        Baseline::default()
    };

    let (baselined, active): (Vec<_>, Vec<_>) =
        diags.into_iter().partition(|d| baseline.contains(d));
    // A stale baseline entry is an error, not a warning: either the
    // finding was fixed (delete the entry) or the code moved (re-key it).
    // Letting stale entries linger would silently accept a future
    // regression at the old key.
    let stale_entries: Vec<String> = baseline
        .stale(&baselined)
        .into_iter()
        .map(str::to_owned)
        .collect();
    for stale in &stale_entries {
        eprintln!("lint: error: stale baseline entry (remove it): {stale}");
    }

    let write_out = |path: &PathBuf, what: &str, content: String| {
        if let Some(parent) = path.parent() {
            let _unused = std::fs::create_dir_all(parent);
        }
        if let Err(e) = std::fs::write(path, content) {
            eprintln!("lint: cannot write {what} {}: {e}", path.display());
            std::process::exit(2);
        }
        println!("lint: {what} written to {}", path.display());
    };
    if let Some(report) = &opts.report {
        write_out(
            report,
            "report",
            diag::render_json(&active, baselined.len()),
        );
    }
    if let Some(path) = &opts.sarif {
        write_out(path, "sarif log", sarif::render(&active));
    }
    if let Some(path) = &opts.timings {
        write_out(path, "timings", render_timings(&timings));
    }
    if let Some(path) = &opts.effects {
        let fx = effects::EffectAnalysis::run(&ws, graph_opts);
        let inventory = fx.inventory(&ws, graph_opts);
        write_out(
            path,
            "effects inventory",
            effects::render_inventory(&inventory),
        );
    }
    if let Some(trace) = &opts.trace {
        let snap = tel.snapshot();
        if let Err(e) = telemetry::export::write_jsonl(trace, &snap) {
            eprintln!("lint: cannot write trace {}: {e}", trace.display());
        }
    }

    match opts.format {
        OutFormat::Json => print!("{}", diag::render_json(&active, baselined.len())),
        OutFormat::Sarif => print!("{}", sarif::render(&active)),
        OutFormat::Human => {
            for d in &active {
                println!("{}", d.render_human());
            }
            let spent = acc.get(telemetry::Phase::StaticAnalysis);
            println!(
                "lint: {} finding(s), {} baselined, {} files scanned in {:?}{}{}",
                active.len(),
                baselined.len(),
                files_scanned,
                spent,
                if opts.deep { " [deep]" } else { "" },
                if opts.mutants { " [mutants]" } else { "" },
            );
        }
    }
    if !active.is_empty() || !stale_entries.is_empty() {
        std::process::exit(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classify_scopes_paths() {
        assert_eq!(
            classify("crates/fenix/src/runtime.rs"),
            Some(("fenix".into(), false))
        );
        assert_eq!(
            classify("crates/fenix/tests/run_loop.rs"),
            Some(("fenix".into(), true))
        );
        assert_eq!(
            classify("crates/bench/benches/fig5_heatdis.rs"),
            Some(("bench".into(), true))
        );
        assert_eq!(
            classify("shims/loom/src/thread.rs"),
            Some(("loom".into(), false))
        );
        assert_eq!(
            classify("examples/quickstart.rs"),
            Some(("examples".into(), false))
        );
        assert_eq!(
            classify("tests/integration.rs"),
            Some(("layered-resilience".into(), true))
        );
        assert_eq!(
            classify("src/lib.rs"),
            Some(("layered-resilience".into(), false))
        );
        // Out of scope: the lint crate itself, fixtures, non-Rust files.
        assert_eq!(classify("crates/lint/src/lib.rs"), None);
        assert_eq!(classify("crates/lint/fixtures/panic-reach/fire.rs"), None);
        assert_eq!(classify("scripts/ci.sh"), None);
    }

    #[test]
    fn fixture_dir_exists_for_every_rule() {
        // The fixture-dedupe satellite: exactly one canonical fixture
        // tree, and the binary's --self-check path must really exist.
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures");
        assert!(root.is_dir(), "canonical fixture dir missing: {root:?}");
        for &rule in rules::ALL_RULES {
            for file in ["fire.rs", "clean.rs"] {
                let p = root.join(rule).join(file);
                assert!(p.is_file(), "missing fixture {p:?}");
            }
        }
        // The old duplicate location must stay gone.
        let dup = Path::new(env!("CARGO_MANIFEST_DIR")).join("src/fixtures");
        assert!(!dup.exists(), "duplicate fixture dir resurrected: {dup:?}");
    }

    #[test]
    fn self_check_passes_on_checked_in_fixtures() {
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures");
        let counts = self_check(&root).expect("self-check must pass");
        assert_eq!(counts.len(), rules::ALL_RULES.len());
    }
}
