//! Resilience-invariant lints for the workspace's lock-free/multi-threaded
//! core. These are project-specific rules that `clippy` cannot express:
//!
//! - **R1 `unsafe-needs-safety-comment`** — every `unsafe` token (block,
//!   fn, trait, impl) must have a `SAFETY:` (or `# Safety`) comment within
//!   the preceding ten lines. Complements the workspace-wide
//!   `clippy::undocumented_unsafe_blocks` deny, which only covers blocks.
//! - **R2 `relaxed-on-sync-atomic`** — `Ordering::Relaxed` may not appear
//!   on a line naming a synchronization-critical atomic (`seq`, `head`,
//!   `stop`, `abort`, `pending`, `dead`, `revoked`) outside the audited
//!   modules listed in [`AUDITED_RELAXED`]. Those modules carry per-site
//!   "Relaxed is sufficient (audited)" justifications and are covered by
//!   the modelcheck suite.
//! - **R3 `unwrap-on-cross-thread-result`** — recovery-path code (the
//!   veloc / simmpi / fenix / resilience crates) may not `.unwrap()` or
//!   `.expect(...)` the result of a cross-thread handoff (`.send(...)`,
//!   `.recv()`, `.join()`): a dead peer must degrade, not panic. Test code
//!   is exempt.
//! - **R4 `raw-thread-spawn`** — the model-checked crates (telemetry,
//!   veloc, simmpi) must spawn threads through the loom shim
//!   (`loom::thread::spawn`), never `std::thread::spawn` or
//!   `std::thread::Builder`, so the modelcheck explorer can intercept
//!   them. `std::thread::scope` is allowed (structured, join-on-exit).
//!   Test code is exempt.
//!
//! Run as `cargo run -p lint` from the workspace root (exit 1 on any
//! violation), or `cargo run -p lint -- --self-check` to verify every rule
//! still fires on the fixtures under `crates/lint/fixtures/`.
//!
//! Implementation notes: the scanner is a line-oriented lexer that strips
//! comments and string literals before matching (so prose about, say, a
//! relaxed ordering never trips a rule), and tracks `#[cfg(test)]` regions
//! by brace depth so inline test modules are classified as test code.
//! Pattern strings are assembled by concatenation so this file would not
//! flag itself even if it were in scope (it is excluded from the walk).

use std::fs;
use std::path::{Path, PathBuf};

/// Files allowed to use `Ordering::Relaxed` on sync-critical atomic names.
/// Every entry must justify each Relaxed site in a comment and be covered
/// by the modelcheck suite.
pub const AUDITED_RELAXED: &[&str] = &["crates/telemetry/src/ring.rs"];

/// Atomic names that participate in cross-thread synchronization protocols
/// somewhere in the workspace; a Relaxed access to one of these is almost
/// always a bug (or needs an audit entry).
pub const SYNC_ATOMIC_NAMES: &[&str] =
    &["seq", "head", "stop", "abort", "pending", "dead", "revoked"];

/// Crates whose `src/` trees are recovery-path code for rule R3.
pub const RECOVERY_PATH_SCOPES: &[&str] = &[
    "crates/veloc/src/",
    "crates/simmpi/src/",
    "crates/fenix/src/",
    "crates/resilience/src/",
];

/// Crates whose `src/` trees are model-checked and must use the loom shim
/// for thread spawning (rule R4).
pub const MODEL_CHECKED_SCOPES: &[&str] = &[
    "crates/telemetry/src/",
    "crates/veloc/src/",
    "crates/simmpi/src/",
];

/// How many preceding lines rule R1 searches for a SAFETY comment.
const SAFETY_LOOKBACK: usize = 10;

#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    pub path: String,
    pub line: usize,
    pub rule: &'static str,
    pub msg: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path, self.line, self.rule, self.msg
        )
    }
}

/// Carry-over lexer state between lines of one file.
#[derive(Default)]
struct StripState {
    in_block_comment: bool,
    in_string: bool,
}

/// Return `raw` with comments removed and string-literal contents blanked,
/// updating `st` for constructs that span lines.
fn strip_line(raw: &str, st: &mut StripState) -> String {
    let b: Vec<char> = raw.chars().collect();
    let mut out = String::with_capacity(raw.len());
    let mut i = 0;
    while i < b.len() {
        if st.in_block_comment {
            if b[i] == '*' && i + 1 < b.len() && b[i + 1] == '/' {
                st.in_block_comment = false;
                i += 2;
            } else {
                i += 1;
            }
            continue;
        }
        if st.in_string {
            if b[i] == '\\' {
                i += 2;
            } else if b[i] == '"' {
                st.in_string = false;
                i += 1;
            } else {
                i += 1;
            }
            continue;
        }
        match b[i] {
            '/' if i + 1 < b.len() && b[i + 1] == '/' => break,
            '/' if i + 1 < b.len() && b[i + 1] == '*' => {
                st.in_block_comment = true;
                i += 2;
            }
            '"' => {
                out.push(' ');
                st.in_string = true;
                i += 1;
            }
            c => {
                out.push(c);
                i += 1;
            }
        }
    }
    out
}

fn is_ident(c: u8) -> bool {
    c == b'_' || c.is_ascii_alphanumeric()
}

/// `hay` contains `word` delimited by non-identifier characters.
fn contains_word(hay: &str, word: &str) -> bool {
    let bytes = hay.as_bytes();
    let mut start = 0;
    while let Some(pos) = hay[start..].find(word) {
        let i = start + pos;
        let j = i + word.len();
        let before_ok = i == 0 || !is_ident(bytes[i - 1]);
        let after_ok = j >= bytes.len() || !is_ident(bytes[j]);
        if before_ok && after_ok {
            return true;
        }
        start = i + 1;
    }
    false
}

struct Patterns {
    unsafe_kw: String,
    safety_upper: String,
    safety_doc: String,
    relaxed: String,
    send: String,
    recv: String,
    join: String,
    unwrap: String,
    expect: String,
    std_spawn: String,
    std_builder: String,
}

impl Patterns {
    fn new() -> Self {
        // Concatenation keeps the literal patterns out of this source file.
        Patterns {
            unsafe_kw: ["un", "safe"].concat(),
            safety_upper: ["SAF", "ETY"].concat(),
            safety_doc: ["# Saf", "ety"].concat(),
            relaxed: ["Ordering::", "Relaxed"].concat(),
            send: [".se", "nd("].concat(),
            recv: [".re", "cv("].concat(),
            join: [".jo", "in()"].concat(),
            unwrap: [".unw", "rap()"].concat(),
            expect: [".exp", "ect("].concat(),
            std_spawn: ["std::thread::", "spawn"].concat(),
            std_builder: ["std::thread::", "Builder"].concat(),
        }
    }
}

/// Per-file rule applicability, derived from the workspace-relative path
/// (or forced wholesale for fixture self-checks).
#[derive(Clone, Copy)]
struct Scope {
    relaxed_audited: bool,
    recovery_path: bool,
    model_checked: bool,
    whole_file_is_test: bool,
}

impl Scope {
    fn for_path(rel: &str) -> Self {
        Scope {
            relaxed_audited: AUDITED_RELAXED.contains(&rel),
            recovery_path: RECOVERY_PATH_SCOPES.iter().any(|p| rel.starts_with(p)),
            model_checked: MODEL_CHECKED_SCOPES.iter().any(|p| rel.starts_with(p)),
            whole_file_is_test: rel.contains("/tests/")
                || rel.starts_with("tests/")
                || rel.contains("/benches/"),
        }
    }

    fn forced() -> Self {
        Scope {
            relaxed_audited: false,
            recovery_path: true,
            model_checked: true,
            whole_file_is_test: false,
        }
    }
}

/// Scan one file's contents and return every rule violation in it.
fn scan_file(rel: &str, content: &str, scope: Scope, pats: &Patterns) -> Vec<Finding> {
    let mut findings = Vec::new();
    let mut strip = StripState::default();
    let raw_lines: Vec<&str> = content.lines().collect();

    // #[cfg(test)] region tracking: `armed` after the attribute, a region
    // starts at the next opening brace and ends when depth returns to the
    // level it started at.
    let mut depth: i64 = 0;
    let mut armed = false;
    let mut test_region_floor: Vec<i64> = Vec::new();

    for (idx, raw) in raw_lines.iter().enumerate() {
        let line_no = idx + 1;
        let stripped = strip_line(raw, &mut strip);
        let in_test = scope.whole_file_is_test || !test_region_floor.is_empty();

        // R1: unsafe needs a nearby SAFETY comment. Applies everywhere,
        // test code included — tests reach into unsafe code too.
        if contains_word(&stripped, &pats.unsafe_kw) {
            let from = idx.saturating_sub(SAFETY_LOOKBACK);
            let documented = raw_lines[from..=idx]
                .iter()
                .any(|l| l.contains(&pats.safety_upper) || l.contains(&pats.safety_doc));
            if !documented {
                findings.push(Finding {
                    path: rel.to_string(),
                    line: line_no,
                    rule: "unsafe-needs-safety-comment",
                    msg: format!(
                        "`unsafe` without a SAFETY comment in the previous {SAFETY_LOOKBACK} lines"
                    ),
                });
            }
        }

        // R2: Relaxed ordering on a sync-critical atomic name, outside the
        // audited modules. Applies in test code too — a test that reads a
        // protocol atomic with Relaxed is asserting on unsynchronized data.
        if !scope.relaxed_audited && stripped.contains(&pats.relaxed) {
            if let Some(name) = SYNC_ATOMIC_NAMES
                .iter()
                .find(|n| contains_word(&stripped, n))
            {
                findings.push(Finding {
                    path: rel.to_string(),
                    line: line_no,
                    rule: "relaxed-on-sync-atomic",
                    msg: format!(
                        "Ordering::Relaxed on sync-critical atomic `{name}` \
                         (audit the module in lint::AUDITED_RELAXED or strengthen the ordering)"
                    ),
                });
            }
        }

        // R3: unwrap/expect on a cross-thread handoff in recovery-path
        // production code.
        if scope.recovery_path && !in_test {
            let handoff = stripped.contains(&pats.send)
                || stripped.contains(&pats.recv)
                || stripped.contains(&pats.join);
            let panics = stripped.contains(&pats.unwrap) || stripped.contains(&pats.expect);
            if handoff && panics {
                findings.push(Finding {
                    path: rel.to_string(),
                    line: line_no,
                    rule: "unwrap-on-cross-thread-result",
                    msg: "panicking on a cross-thread send/recv/join result in \
                          recovery-path code; a dead peer must degrade, not panic"
                        .to_string(),
                });
            }
        }

        // R4: raw std::thread spawn in a model-checked crate's production
        // code (invisible to the modelcheck explorer).
        if scope.model_checked
            && !in_test
            && (stripped.contains(&pats.std_spawn) || stripped.contains(&pats.std_builder))
        {
            findings.push(Finding {
                path: rel.to_string(),
                line: line_no,
                rule: "raw-thread-spawn",
                msg: "std::thread spawn in a model-checked crate; use \
                      loom::thread so the modelcheck explorer can intercept it"
                    .to_string(),
            });
        }

        // Maintain the cfg(test) region state *after* classifying this
        // line, so the `mod tests {` line itself is production code.
        if stripped.contains("#[cfg(test)]") {
            armed = true;
        } else if armed && stripped.contains('{') {
            test_region_floor.push(depth);
            armed = false;
        }
        for c in stripped.chars() {
            match c {
                '{' => depth += 1,
                '}' => depth -= 1,
                _ => {}
            }
        }
        while matches!(test_region_floor.last(), Some(&f) if depth <= f) {
            test_region_floor.pop();
        }
    }
    findings
}

/// Recursively collect `.rs` files under `dir`, skipping build output, VCS
/// metadata, and lint fixtures.
fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    let entries = match fs::read_dir(dir) {
        Ok(e) => e,
        Err(_) => return,
    };
    for entry in entries.flatten() {
        let p = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if p.is_dir() {
            if name == "target" || name == ".git" || name == "fixtures" {
                continue;
            }
            collect_rs(&p, out);
        } else if name.ends_with(".rs") {
            out.push(p);
        }
    }
}

fn rel_path(root: &Path, p: &Path) -> String {
    p.strip_prefix(root)
        .unwrap_or(p)
        .to_string_lossy()
        .replace('\\', "/")
}

/// Lint every Rust source file under `root` (a workspace checkout).
/// Returns the findings plus the number of files scanned.
pub fn lint_workspace(root: &Path) -> (Vec<Finding>, usize) {
    let pats = Patterns::new();
    let mut files = Vec::new();
    collect_rs(root, &mut files);
    files.sort();
    let mut findings = Vec::new();
    let mut scanned = 0;
    for p in &files {
        let rel = rel_path(root, p);
        // The linter does not lint itself: its source necessarily names
        // the very patterns it hunts for.
        if rel.starts_with("crates/lint/") {
            continue;
        }
        let Ok(content) = fs::read_to_string(p) else {
            continue;
        };
        scanned += 1;
        findings.extend(scan_file(&rel, &content, Scope::for_path(&rel), &pats));
    }
    (findings, scanned)
}

/// Run every rule over the fixtures: each rule must fire on `bad.rs` and
/// nothing may fire on `clean.rs`. Returns human-readable failures.
pub fn self_check(fixtures: &Path) -> Result<(), Vec<String>> {
    let pats = Patterns::new();
    let mut errors = Vec::new();

    let read = |name: &str| -> Option<String> { fs::read_to_string(fixtures.join(name)).ok() };

    match read("bad.rs") {
        Some(bad) => {
            let findings = scan_file("fixtures/bad.rs", &bad, Scope::forced(), &pats);
            for rule in [
                "unsafe-needs-safety-comment",
                "relaxed-on-sync-atomic",
                "unwrap-on-cross-thread-result",
                "raw-thread-spawn",
            ] {
                if !findings.iter().any(|f| f.rule == rule) {
                    errors.push(format!("rule `{rule}` did not fire on fixtures/bad.rs"));
                }
            }
        }
        None => errors.push("missing fixture fixtures/bad.rs".to_string()),
    }

    match read("clean.rs") {
        Some(clean) => {
            for f in scan_file("fixtures/clean.rs", &clean, Scope::forced(), &pats) {
                errors.push(format!("false positive on clean fixture: {f}"));
            }
        }
        None => errors.push("missing fixture fixtures/clean.rs".to_string()),
    }

    if errors.is_empty() {
        Ok(())
    } else {
        Err(errors)
    }
}

/// CLI entry point: `lint [--root <dir>] [--self-check]`.
pub fn cli_main() {
    let args: Vec<String> = std::env::args().skip(1).collect();

    if args.iter().any(|a| a == "--self-check") {
        let fixtures = Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures");
        match self_check(&fixtures) {
            Ok(()) => {
                println!("lint self-check: all rules fire on fixtures, clean fixture passes");
            }
            Err(errors) => {
                for e in &errors {
                    eprintln!("lint self-check: {e}");
                }
                std::process::exit(1);
            }
        }
        return;
    }

    let root = args
        .iter()
        .position(|a| a == "--root")
        .and_then(|i| args.get(i + 1))
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("."));

    let (findings, scanned) = lint_workspace(&root);
    if findings.is_empty() {
        println!("lint: OK ({scanned} files scanned, 0 violations)");
        return;
    }
    for f in &findings {
        eprintln!("{f}");
    }
    eprintln!("lint: {} violation(s) in {scanned} files", findings.len());
    std::process::exit(1);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scan(rel: &str, src: &str) -> Vec<Finding> {
        scan_file(rel, src, Scope::for_path(rel), &Patterns::new())
    }

    #[test]
    fn undocumented_unsafe_is_flagged_and_documented_is_not() {
        let bad = "fn f(p: *const u8) -> u8 {\n    unsafe { *p }\n}\n";
        let fs = scan("crates/x/src/lib.rs", bad);
        assert_eq!(fs.len(), 1);
        assert_eq!(fs[0].rule, "unsafe-needs-safety-comment");
        assert_eq!(fs[0].line, 2);

        let good =
            "fn f(p: *const u8) -> u8 {\n    // SAFETY: caller guarantees validity.\n    unsafe { *p }\n}\n";
        assert!(scan("crates/x/src/lib.rs", good).is_empty());
    }

    #[test]
    fn unsafe_in_comments_and_strings_is_ignored() {
        let src = "// this mentions unsafe code\nlet s = \"unsafe\";\n";
        assert!(scan("crates/x/src/lib.rs", src).is_empty());
    }

    #[test]
    fn relaxed_on_sync_name_flagged_outside_audit() {
        let src = "let v = self.seq.load(Ordering::Relaxed);\n";
        let fs = scan("crates/x/src/lib.rs", src);
        assert_eq!(fs.len(), 1);
        assert_eq!(fs[0].rule, "relaxed-on-sync-atomic");
        assert!(scan("crates/telemetry/src/ring.rs", src).is_empty());
        // Non-sync names are fine anywhere.
        let counter = "self.hits.fetch_add(1, Ordering::Relaxed);\n";
        assert!(scan("crates/x/src/lib.rs", counter).is_empty());
        // Word boundaries: `stop_requested` is not `stop`.
        let near = "self.stop_requested.load(Ordering::Relaxed);\n";
        assert!(scan("crates/x/src/lib.rs", near).is_empty());
    }

    #[test]
    fn cross_thread_unwrap_flagged_only_in_recovery_production_code() {
        let src = "tx.send(job).unwrap();\n";
        let fs = scan("crates/veloc/src/backend.rs", src);
        assert_eq!(fs.len(), 1);
        assert_eq!(fs[0].rule, "unwrap-on-cross-thread-result");
        // Out-of-scope crate: allowed.
        assert!(scan("crates/cluster/src/net.rs", src).is_empty());
        // Test module in scope: allowed.
        let tested =
            "#[cfg(test)]\nmod tests {\n    fn t() {\n        tx.send(1).unwrap();\n    }\n}\n";
        assert!(scan("crates/veloc/src/backend.rs", tested).is_empty());
        // Integration test dir: allowed.
        assert!(scan("crates/simmpi/tests/failures.rs", src).is_empty());
        // Path joins don't look like thread joins.
        let path_join = "let p = dir.join(\"ck\").to_str().unwrap();\n";
        assert!(scan("crates/veloc/src/client.rs", path_join).is_empty());
    }

    #[test]
    fn raw_spawn_flagged_in_model_checked_crates() {
        let src = "let h = std::thread::spawn(move || run());\n";
        let fs = scan("crates/telemetry/src/ring.rs", src);
        assert_eq!(fs.len(), 1);
        assert_eq!(fs[0].rule, "raw-thread-spawn");
        // The loom shim itself may use std::thread.
        assert!(scan("shims/loom/src/thread.rs", src).is_empty());
        // scoped threads are fine.
        let scoped = "std::thread::scope(|s| { s.spawn(|| {}); });\n";
        assert!(scan("crates/telemetry/src/ring.rs", scoped).is_empty());
    }

    #[test]
    fn cfg_test_region_tracking_handles_nesting_and_exit() {
        let src = concat!(
            "fn prod() {\n",
            "    tx.send(1).unwrap();\n",
            "}\n",
            "#[cfg(test)]\n",
            "mod tests {\n",
            "    fn inner() {\n",
            "        tx.send(1).unwrap();\n",
            "    }\n",
            "}\n",
            "fn prod2() {\n",
            "    rx.recv().expect(\"peer\");\n",
            "}\n",
        );
        let fs = scan("crates/fenix/src/lib.rs", src);
        assert_eq!(fs.len(), 2, "{fs:?}");
        assert_eq!(fs[0].line, 2);
        assert_eq!(fs[1].line, 11);
    }

    #[test]
    fn block_comments_span_lines() {
        let src = "/* start\n   unsafe mention inside\n*/\nlet x = 1;\n";
        assert!(scan("crates/x/src/lib.rs", src).is_empty());
    }

    #[test]
    fn self_check_passes_on_shipped_fixtures() {
        let fixtures = Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures");
        if let Err(errors) = self_check(&fixtures) {
            panic!("self-check failed: {errors:?}");
        }
    }
}
