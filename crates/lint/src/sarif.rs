//! SARIF 2.1.0 output.
//!
//! A minimal, dependency-free serializer for the Static Analysis Results
//! Interchange Format so CI systems and editors that speak SARIF can
//! ingest lint findings (`--format sarif` on stdout, or `--sarif PATH`
//! alongside any other format). Only active (non-baselined) findings are
//! emitted; every rule id from [`rules::ALL_RULES`] is declared in the
//! tool metadata so result `ruleIndex` references stay valid even for
//! rules with zero findings.

use std::fmt::Write as _;

use crate::diag::{json_str, Diagnostic};
use crate::rules;

/// Render active findings as a single-run SARIF 2.1.0 log.
pub fn render(diags: &[Diagnostic]) -> String {
    let mut out = String::from(
        "{\n  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n  \
         \"version\": \"2.1.0\",\n  \"runs\": [\n    {\n      \"tool\": {\n        \
         \"driver\": {\n          \"name\": \"lint\",\n          \
         \"informationUri\": \"https://example.invalid/layered-resilience/crates/lint\",\n          \
         \"rules\": [\n",
    );
    for (i, rule) in rules::ALL_RULES.iter().enumerate() {
        let _ = write!(
            out,
            "            {{\"id\": {}, \"name\": {}, \"shortDescription\": {{\"text\": {}}}, \
             \"helpUri\": {}}}",
            json_str(rule),
            json_str(&rule_name(rule)),
            json_str(rules::rule_short(rule)),
            json_str(&format!(
                "https://example.invalid/layered-resilience/crates/lint/rules#{rule}"
            ))
        );
        out.push_str(if i + 1 < rules::ALL_RULES.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    out.push_str("          ]\n        }\n      },\n      \"results\": [\n");
    for (i, d) in diags.iter().enumerate() {
        let rule_index = rules::ALL_RULES
            .iter()
            .position(|r| *r == d.rule)
            .unwrap_or(0);
        let text = if d.func.is_empty() {
            d.msg.clone()
        } else {
            format!("{}: {}", d.func, d.msg)
        };
        let _ = write!(
            out,
            "        {{\"ruleId\": {}, \"ruleIndex\": {rule_index}, \"level\": \"error\", \
             \"message\": {{\"text\": {}}}, \"locations\": [{{\"physicalLocation\": \
             {{\"artifactLocation\": {{\"uri\": {}, \"uriBaseId\": \"SRCROOT\"}}, \
             \"region\": {{\"startLine\": {}}}}}}}]}}",
            json_str(d.rule),
            json_str(&text),
            json_str(&d.file),
            d.line.max(1)
        );
        out.push_str(if i + 1 < diags.len() { ",\n" } else { "\n" });
    }
    out.push_str(
        "      ],\n      \"originalUriBaseIds\": {\"SRCROOT\": {\"uri\": \"file:///./\"}},\n      \
         \"columnKind\": \"utf16CodeUnits\"\n    }\n  ]\n}\n",
    );
    out
}

/// SARIF rule `name` is PascalCase by convention.
fn rule_name(id: &str) -> String {
    id.split('-')
        .map(|w| {
            let mut c = w.chars();
            match c.next() {
                Some(f) => f.to_uppercase().chain(c).collect::<String>(),
                None => String::new(),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sarif_log_has_schema_rules_and_located_results() {
        let d = Diagnostic {
            rule: "lock-order",
            file: "crates/simmpi/src/router.rs".into(),
            line: 42,
            func: "Router::deliver".into(),
            msg: "say \"hi\"".into(),
        };
        let s = render(&[d]);
        assert!(s.contains("\"version\": \"2.1.0\""));
        assert!(s.contains("sarif-2.1.0.json"));
        // Every rule id is declared even with no findings.
        for rule in rules::ALL_RULES {
            assert!(s.contains(&format!("\"id\": \"{rule}\"")), "{rule} missing");
        }
        assert!(s.contains("\"ruleId\": \"lock-order\""));
        assert!(s.contains("\"uri\": \"crates/simmpi/src/router.rs\""));
        assert!(s.contains("\"startLine\": 42"));
        assert!(s.contains("\\\"hi\\\""), "message must be escaped");
        assert!(s.contains("\"name\": \"LockOrder\""));
    }

    #[test]
    fn empty_run_is_still_a_valid_log() {
        let s = render(&[]);
        assert!(s.contains("\"results\": [\n      ]"));
    }

    #[test]
    fn rules_array_matches_registry_with_full_metadata() {
        // Satellite: the SARIF `rules` array length must equal the
        // registered-rule count, and every entry carries the full
        // metadata (shortDescription + helpUri).
        let s = render(&[]);
        let driver = s
            .split("\"results\"")
            .next()
            .expect("driver section precedes results");
        let ids = driver.matches("\"id\": ").count();
        let shorts = driver.matches("\"shortDescription\"").count();
        let uris = driver.matches("\"helpUri\"").count();
        assert_eq!(ids, rules::ALL_RULES.len());
        assert_eq!(shorts, rules::ALL_RULES.len());
        assert_eq!(uris, rules::ALL_RULES.len());
        // And every description is non-empty — RULE_META covers the
        // registry exactly.
        assert_eq!(rules::RULE_META.len(), rules::ALL_RULES.len());
        for rule in rules::ALL_RULES {
            assert!(
                !rules::rule_short(rule).is_empty(),
                "{rule} has no shortDescription"
            );
        }
        for (rule, _) in rules::RULE_META {
            assert!(rules::ALL_RULES.contains(rule), "{rule} not registered");
        }
    }
}
