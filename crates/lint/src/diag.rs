//! Diagnostics: findings, human/JSON rendering, and the audited baseline.
//!
//! A baseline file lists findings that have been audited and accepted.
//! Each entry must carry a justification comment — the loader rejects a
//! baseline entry with no preceding `#` comment, so exceptions cannot be
//! silently accumulated. Keys are `rule-id @ path # function` (no line
//! numbers, so entries survive unrelated edits).

use std::collections::HashMap;
use std::fmt::Write as _;

/// One finding from one rule.
#[derive(Clone, Debug)]
pub struct Diagnostic {
    /// Stable rule identifier, e.g. `panic-reach`.
    pub rule: &'static str,
    /// Workspace-relative path with forward slashes.
    pub file: String,
    pub line: u32,
    /// Qualified function name the finding is in (`""` for file-level).
    pub func: String,
    pub msg: String,
}

impl Diagnostic {
    /// Baseline key: stable across unrelated line churn.
    pub fn key(&self) -> String {
        format!("{} @ {} # {}", self.rule, self.file, self.func)
    }

    pub fn render_human(&self) -> String {
        format!(
            "[{}] {}:{} ({}) {}",
            self.rule,
            self.file,
            self.line,
            if self.func.is_empty() {
                "-"
            } else {
                &self.func
            },
            self.msg
        )
    }
}

/// Render all diagnostics plus per-rule counts as a JSON report.
pub fn render_json(diags: &[Diagnostic], baselined: usize) -> String {
    let mut counts: HashMap<&str, usize> = HashMap::new();
    for d in diags {
        *counts.entry(d.rule).or_insert(0) += 1;
    }
    let mut counts: Vec<(&str, usize)> = counts.into_iter().collect();
    counts.sort_unstable();

    let mut out = String::from("{\n  \"findings\": [\n");
    for (i, d) in diags.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"rule\": {}, \"file\": {}, \"line\": {}, \"function\": {}, \"message\": {}}}",
            json_str(d.rule),
            json_str(&d.file),
            d.line,
            json_str(&d.func),
            json_str(&d.msg)
        );
        out.push_str(if i + 1 < diags.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ],\n  \"counts\": {");
    for (i, (rule, n)) in counts.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let _ = write!(out, "{}: {}", json_str(rule), n);
    }
    let _ = write!(
        out,
        "}},\n  \"total\": {},\n  \"baselined\": {}\n}}\n",
        diags.len(),
        baselined
    );
    out
}

/// Minimal JSON string escaping (ASCII control chars, quote, backslash).
pub(crate) fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// A parsed baseline: audited finding keys with justifications.
#[derive(Default)]
pub struct Baseline {
    entries: HashMap<String, String>,
}

impl Baseline {
    /// Parse baseline text. Returns an error for an entry with no
    /// justification comment directly above it.
    pub fn parse(text: &str) -> Result<Baseline, String> {
        let mut entries = HashMap::new();
        let mut pending_comment: Vec<String> = Vec::new();
        for (ln, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() {
                pending_comment.clear();
                continue;
            }
            if let Some(c) = line.strip_prefix('#') {
                pending_comment.push(c.trim().to_owned());
                continue;
            }
            if pending_comment.is_empty() {
                return Err(format!(
                    "baseline line {}: entry `{line}` has no justification comment above it",
                    ln + 1
                ));
            }
            entries.insert(line.to_owned(), pending_comment.join(" "));
            pending_comment.clear();
        }
        Ok(Baseline { entries })
    }

    pub fn contains(&self, d: &Diagnostic) -> bool {
        self.entries.contains_key(&d.key())
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Entries that matched no finding (stale — should be removed).
    pub fn stale<'a>(&'a self, diags: &[Diagnostic]) -> Vec<&'a str> {
        let seen: std::collections::HashSet<String> = diags.iter().map(|d| d.key()).collect();
        let mut out: Vec<&str> = self
            .entries
            .keys()
            .filter(|k| !seen.contains(*k))
            .map(String::as_str)
            .collect();
        out.sort_unstable();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diag() -> Diagnostic {
        Diagnostic {
            rule: "panic-reach",
            file: "crates/x/src/lib.rs".into(),
            line: 7,
            func: "X::go".into(),
            msg: "reachable unwrap".into(),
        }
    }

    #[test]
    fn baseline_requires_justification() {
        let ok = Baseline::parse(
            "# audited 2026-08: cold path, covered by test_x\npanic-reach @ crates/x/src/lib.rs # X::go\n",
        )
        .unwrap();
        assert!(ok.contains(&diag()));
        let err = Baseline::parse("panic-reach @ crates/x/src/lib.rs # X::go\n");
        assert!(err.is_err(), "entry without comment must be rejected");
    }

    #[test]
    fn baseline_key_ignores_lines() {
        let mut d = diag();
        let b = Baseline::parse(&format!("# why\n{}\n", d.key())).unwrap();
        d.line = 99;
        assert!(b.contains(&d), "key is line-independent");
    }

    #[test]
    fn stale_entries_are_reported() {
        let b = Baseline::parse("# old\npanic-reach @ crates/gone.rs # f\n").unwrap();
        let stale = b.stale(&[diag()]);
        assert_eq!(stale, vec!["panic-reach @ crates/gone.rs # f"]);
    }

    #[test]
    fn baseline_key_round_trips_through_parse() {
        // A key produced by `Diagnostic::key()` written into a baseline
        // (with justification) must come back as a matching, non-stale
        // entry — the exact flow `scripts/ci.sh` relies on.
        let d = diag();
        let text = format!("# audited: round-trip test\n{}\n", d.key());
        let b = Baseline::parse(&text).unwrap();
        assert_eq!(b.len(), 1);
        assert!(b.contains(&d));
        assert!(b.stale(&[d]).is_empty(), "a matched entry is not stale");
    }

    #[test]
    fn baseline_parses_multiple_entries_each_needing_a_comment() {
        let text = "# first\nrule-a @ f.rs # f\n\n# second\nrule-b @ g.rs # g\n";
        let b = Baseline::parse(text).unwrap();
        assert_eq!(b.len(), 2);
        // A blank line clears the pending comment: the entry after it
        // must bring its own justification.
        let bad = "# only one comment\nrule-a @ f.rs # f\n\nrule-b @ g.rs # g\n";
        assert!(Baseline::parse(bad).is_err());
    }

    #[test]
    fn json_report_escapes_and_counts() {
        let d = Diagnostic {
            msg: "say \"hi\"\nline2".into(),
            ..diag()
        };
        let j = render_json(&[d.clone(), diag()], 1);
        assert!(j.contains("\\\"hi\\\""));
        assert!(j.contains("\\n"));
        assert!(j.contains("\"panic-reach\": 2"));
        assert!(j.contains("\"total\": 2"));
        assert!(j.contains("\"baselined\": 1"));
    }
}
