//! The Jacobi relaxation kernel.

/// Outcome of one sweep.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SweepResult {
    /// Largest absolute cell change in this sweep.
    pub max_delta: f64,
}

/// One Jacobi sweep over the owned rows `1..=rows` of a `(rows+2) × cols`
/// buffer (rows 0 and `rows+1` are halo). Writes into `dst`, reads `src`.
/// Left/right edges use one-sided (insulated) neighborhoods.
pub fn jacobi_sweep(src: &[f64], dst: &mut [f64], rows: usize, cols: usize) -> SweepResult {
    assert_eq!(src.len(), (rows + 2) * cols, "src shape");
    assert_eq!(dst.len(), (rows + 2) * cols, "dst shape");
    let mut max_delta: f64 = 0.0;
    for r in 1..=rows {
        let base = r * cols;
        for c in 0..cols {
            let left = if c == 0 {
                src[base + c]
            } else {
                src[base + c - 1]
            };
            let right = if c == cols - 1 {
                src[base + c]
            } else {
                src[base + c + 1]
            };
            let up = src[base - cols + c];
            let down = src[base + cols + c];
            let new = 0.25 * (left + right + up + down);
            max_delta = max_delta.max((new - src[base + c]).abs());
            dst[base + c] = new;
        }
    }
    SweepResult { max_delta }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid(rows: usize, cols: usize, v: f64) -> Vec<f64> {
        vec![v; (rows + 2) * cols]
    }

    #[test]
    fn uniform_grid_is_fixed_point() {
        let src = grid(4, 8, 3.5);
        let mut dst = grid(4, 8, 0.0);
        let r = jacobi_sweep(&src, &mut dst, 4, 8);
        assert_eq!(r.max_delta, 0.0);
        for c in 0..8 {
            for row in 1..=4 {
                assert_eq!(dst[row * 8 + c], 3.5);
            }
        }
    }

    #[test]
    fn hot_halo_diffuses_in() {
        let cols = 4;
        let mut src = grid(2, cols, 0.0);
        src[..cols].fill(100.0); // hot upper halo
        let mut dst = grid(2, cols, 0.0);
        let r = jacobi_sweep(&src, &mut dst, 2, cols);
        assert_eq!(r.max_delta, 25.0);
        for c in 0..cols {
            assert_eq!(dst[cols + c], 25.0, "first owned row heated");
            assert_eq!(dst[2 * cols + c], 0.0, "second row untouched in one sweep");
        }
    }

    #[test]
    fn average_conserves_between_bounds() {
        let cols = 3;
        let mut src = grid(1, cols, 0.0);
        for (i, x) in src.iter_mut().enumerate() {
            *x = i as f64;
        }
        let mut dst = grid(1, cols, 0.0);
        jacobi_sweep(&src, &mut dst, 1, cols);
        let (min, max) = src
            .iter()
            .fold((f64::MAX, f64::MIN), |(a, b), &x| (a.min(x), b.max(x)));
        for c in 0..cols {
            let v = dst[cols + c];
            assert!(v >= min && v <= max, "averaging stays within bounds");
        }
    }

    #[test]
    #[should_panic(expected = "src shape")]
    fn shape_mismatch_panics() {
        let src = vec![0.0; 10];
        let mut dst = vec![0.0; 12];
        jacobi_sweep(&src, &mut dst, 2, 3);
    }
}
