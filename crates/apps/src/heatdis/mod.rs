//! Heatdis: the VeloC heat-distribution benchmark on Kokkos views.
//!
//! A 2-D grid with a hot strip along the top boundary relaxes by Jacobi
//! iteration. Rows are block-distributed across ranks; every iteration
//! exchanges one halo row with each neighbor and sweeps the local block.
//! Two full-size buffers are used (`heat_primary`, `heat_scratch`); only the
//! primary is checkpointed, so — like the paper's configuration — each
//! checkpoint is half the application's data. The scratch buffer is declared
//! a Kokkos Resilience *alias* so automatic capture excludes it.

mod stencil;

use std::sync::Arc;

use kokkos::capture::Checkpointable;
use kokkos::View;
use resilience::{Bookkeeper, IterativeApp, RankApp, RunMode};
use simmpi::{Comm, MpiResult, Phase, RankCtx, ReduceOp};

pub use stencil::{jacobi_sweep, SweepResult};

/// Temperature of the heat source along the global top edge.
pub const SOURCE_TEMP: f64 = 100.0;

/// Heatdis application descriptor.
#[derive(Clone, Debug)]
pub struct Heatdis {
    /// Application data per rank, in bytes (both buffers together), like
    /// the paper's "configurable per-node application data size".
    pub per_rank_bytes: usize,
    /// Grid columns (row length). Rows are derived from the data size.
    pub cols: usize,
    pub mode: RunMode,
    /// Convergence threshold on the global max cell change (converging
    /// variant only).
    pub eps: f64,
}

impl Heatdis {
    /// Fixed-iteration variant (the paper's default Heatdis).
    pub fn fixed(per_rank_bytes: usize, cols: usize, iterations: u64) -> Self {
        Heatdis {
            per_rank_bytes,
            cols,
            mode: RunMode::FixedIterations(iterations),
            eps: 5e-2,
        }
    }

    /// Converge-until-threshold variant ("modified … to run until data
    /// convergence", used for partial rollback).
    pub fn converging(per_rank_bytes: usize, cols: usize, max_iterations: u64) -> Self {
        Heatdis {
            per_rank_bytes,
            cols,
            mode: RunMode::Converge {
                check_every: 8,
                max_iterations,
            },
            eps: 5e-2,
        }
    }

    /// Adjust the convergence threshold.
    pub fn with_eps(mut self, eps: f64) -> Self {
        self.eps = eps;
        self
    }

    /// Rows each rank owns (excluding halo rows).
    pub fn rows_per_rank(&self) -> usize {
        // Two f64 buffers of rows×cols must fit in per_rank_bytes.
        (self.per_rank_bytes / (2 * 8 * self.cols)).max(2)
    }
}

impl IterativeApp for Heatdis {
    fn name(&self) -> &str {
        "heatdis"
    }

    fn mode(&self) -> RunMode {
        self.mode
    }

    fn alias_labels(&self) -> Vec<String> {
        // The swap buffer holds no independent state; checkpoints stay at
        // half the application data under automatic capture too.
        vec!["heat_scratch".into()]
    }

    fn init_rank(&self, _ctx: &RankCtx, comm: &Comm) -> Box<dyn RankApp> {
        Box::new(self.state_for(comm))
    }
}

impl Heatdis {
    /// Build one rank's concrete state (tests and harness use this
    /// directly; `init_rank` wraps it as a trait object).
    pub fn state_for(&self, comm: &Comm) -> HeatdisState {
        let rows = self.rows_per_rank();
        let cols = self.cols;
        // Owned rows plus one halo row on each side.
        let primary: View<f64> = View::new_2d("heat_primary", rows + 2, cols);
        let scratch: View<f64> = View::new_2d("heat_scratch", rows + 2, cols);
        let state = HeatdisState {
            primary,
            scratch,
            rows,
            cols,
            rank: comm.rank(),
            size: comm.size(),
            last_delta: f64::INFINITY,
            eps: self.eps,
        };
        state.apply_boundary();
        state
    }
}

/// Per-rank Heatdis state.
pub struct HeatdisState {
    /// Checkpointed temperature field (with halo rows 0 and rows+1).
    primary: View<f64>,
    /// Swap buffer — declared as an alias, never checkpointed.
    scratch: View<f64>,
    rows: usize,
    cols: usize,
    rank: usize,
    size: usize,
    last_delta: f64,
    eps: f64,
}

impl HeatdisState {
    /// The first global row this rank owns.
    fn first_global_row(&self) -> usize {
        self.rank * self.rows
    }

    /// Impose the heat source: the first two global rows are held at
    /// `SOURCE_TEMP` (matching the VeloC benchmark's hot strip).
    fn apply_boundary(&self) {
        if self.first_global_row() < 2 {
            let local_hot_rows = (2 - self.first_global_row()).min(self.rows);
            let mut p = self.primary.write_uncaptured();
            for r in 1..=local_hot_rows {
                for c in 0..self.cols {
                    p[r * self.cols + c] = SOURCE_TEMP;
                }
            }
        }
    }

    pub fn last_delta(&self) -> f64 {
        self.last_delta
    }

    /// This rank's owned rows (halo rows excluded), row-major.
    pub fn owned_field(&self) -> Vec<f64> {
        let p = self.primary.read_uncaptured();
        p[self.cols..(self.rows + 1) * self.cols].to_vec()
    }

    /// Exchange halo rows with the neighbor above and below.
    fn halo_exchange(&self, comm: &Comm) -> MpiResult<()> {
        let cols = self.cols;
        let up = self.rank.checked_sub(1);
        let down = (self.rank + 1 < self.size).then_some(self.rank + 1);

        let (top_row, bottom_row) = {
            let p = self.primary.read();
            (
                p[cols..2 * cols].to_vec(),
                p[self.rows * cols..(self.rows + 1) * cols].to_vec(),
            )
        };

        // Two phases ordered so matching sends/recvs pair up: first send
        // down / receive from up, then send up / receive from down.
        let mut from_up = vec![0.0f64; cols];
        let mut from_down = vec![0.0f64; cols];
        if let Some(d) = down {
            comm.send(d, 11, &bottom_row)?;
        }
        if let Some(u) = up {
            comm.recv_into(Some(u), 11, &mut from_up)?;
            comm.send(u, 12, &top_row)?;
        }
        if let Some(d) = down {
            comm.recv_into(Some(d), 12, &mut from_down)?;
        }

        let mut p = self.primary.write();
        if up.is_some() {
            p[0..cols].copy_from_slice(&from_up);
        } else {
            // Physical boundary: mirror (insulated edge).
            let row1: Vec<f64> = p[cols..2 * cols].to_vec();
            p[0..cols].copy_from_slice(&row1);
        }
        if down.is_some() {
            p[(self.rows + 1) * cols..(self.rows + 2) * cols].copy_from_slice(&from_down);
        } else {
            let last: Vec<f64> = p[self.rows * cols..(self.rows + 1) * cols].to_vec();
            p[(self.rows + 1) * cols..(self.rows + 2) * cols].copy_from_slice(&last);
        }
        Ok(())
    }
}

impl RankApp for HeatdisState {
    fn step(&mut self, comm: &Comm, _iteration: u64, bk: &Bookkeeper) -> MpiResult<()> {
        bk.book(Phase::AppMpi, || self.halo_exchange(comm))?;

        let delta = bk.book(Phase::AppCompute, || {
            let result = {
                let p = self.primary.read();
                let mut s = self.scratch.write();
                jacobi_sweep(&p, &mut s, self.rows, self.cols)
            };
            // Copy back (scratch is pure swap space, like the benchmark's
            // second buffer).
            {
                let s = self.scratch.read();
                let mut p = self.primary.write();
                p[self.cols..(self.rows + 1) * self.cols]
                    .copy_from_slice(&s[self.cols..(self.rows + 1) * self.cols]);
            }
            self.apply_boundary();
            result.max_delta
        });
        self.last_delta = delta;
        Ok(())
    }

    fn checkpoint_views(&self) -> Vec<Arc<dyn Checkpointable>> {
        // Only the primary buffer: checkpoints are half the app data.
        vec![Arc::new(self.primary.clone())]
    }

    fn converged(&mut self, comm: &Comm, bk: &Bookkeeper) -> MpiResult<bool> {
        let global = bk.book(Phase::AppMpi, || {
            comm.allreduce_scalar(self.last_delta, ReduceOp::Max)
        })?;
        Ok(global < self.eps)
    }

    fn digest(&self) -> u64 {
        self.primary.read_uncaptured().iter().fold(0u64, |acc, x| {
            acc.wrapping_mul(1099511628211).wrapping_add(x.to_bits())
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_per_rank_from_bytes() {
        let app = Heatdis::fixed(2 * 8 * 128 * 50, 128, 10);
        assert_eq!(app.rows_per_rank(), 50);
    }

    #[test]
    fn rows_per_rank_has_floor() {
        let app = Heatdis::fixed(16, 128, 10);
        assert_eq!(app.rows_per_rank(), 2);
    }

    #[test]
    fn converging_mode_bounds() {
        let app = Heatdis::converging(1 << 16, 64, 500);
        assert_eq!(app.mode().max_iterations(), 500);
    }
}
