//! Slab-decomposition communication (MiniMD's "Communicator" phase):
//! atom migration, border/ghost setup, and per-step ghost position updates.

use simmpi::{Comm, MpiResult};

use crate::minimd::atoms::Slab;

const TAG_MIGRATE_ID: u64 = 0x40;
const TAG_MIGRATE_DATA: u64 = 0x41;
const TAG_BORDER: u64 = 0x42;
const TAG_COMM: u64 = 0x44;

/// Ghost-exchange plan, rebuilt at every neighboring step and reused by
/// [`communicate`] on the steps between.
#[derive(Clone, Debug, Default)]
pub struct CommPlan {
    /// Owned-atom indices sent to the left neighbor (as its ghosts).
    pub send_left: Vec<u32>,
    /// Owned-atom indices sent to the right neighbor.
    pub send_right: Vec<u32>,
    /// Position shift applied to atoms sent left (± global Lx across the
    /// periodic boundary, else 0).
    pub shift_left: f64,
    pub shift_right: f64,
    /// Ghosts received from the left / right neighbor.
    pub nghost_left: usize,
    pub nghost_right: usize,
}

impl CommPlan {
    pub fn nghost(&self) -> usize {
        self.nghost_left + self.nghost_right
    }
}

fn left_of(comm: &Comm) -> usize {
    (comm.rank() + comm.size() - 1) % comm.size()
}

fn right_of(comm: &Comm) -> usize {
    (comm.rank() + 1) % comm.size()
}

/// Wrap all owned positions into the global periodic box.
pub fn pbc(slab: &Slab, x: &mut [f64], nlocal: usize) {
    for i in 0..nlocal {
        let mut p = [x[3 * i], x[3 * i + 1], x[3 * i + 2]];
        slab.wrap(&mut p);
        x[3 * i..3 * i + 3].copy_from_slice(&p);
    }
}

/// Migrate atoms that left this slab to the owning neighbor (assumes at
/// most one slab of travel per rebuild interval — asserted). Atom arrays
/// are then sorted by id so ownership changes never perturb float
/// summation order. Returns the new `nlocal`.
pub fn exchange_atoms(
    comm: &Comm,
    slab: &Slab,
    x: &mut [f64],
    v: &mut [f64],
    id: &mut [u64],
    nlocal: usize,
) -> MpiResult<usize> {
    let me = comm.rank();
    let n_ranks = comm.size();
    let width = slab.width();

    // Partition: keep / go-left / go-right.
    let mut keep: Vec<usize> = Vec::with_capacity(nlocal);
    let mut go_left: Vec<usize> = Vec::new();
    let mut go_right: Vec<usize> = Vec::new();
    for i in 0..nlocal {
        let target = ((x[3 * i] / width) as usize).min(n_ranks - 1);
        if target == me || n_ranks == 1 {
            keep.push(i);
        } else if target == left_of(comm) {
            go_left.push(i);
        } else if target == right_of(comm) {
            go_right.push(i);
        } else {
            panic!(
                "atom {} moved more than one slab (x={}, target {target}, me {me})",
                id[i],
                x[3 * i]
            );
        }
    }

    let pack = |idxs: &[usize]| -> (Vec<u64>, Vec<f64>) {
        let ids: Vec<u64> = idxs.iter().map(|&i| id[i]).collect();
        let mut data = Vec::with_capacity(idxs.len() * 6);
        for &i in idxs {
            data.extend_from_slice(&x[3 * i..3 * i + 3]);
            data.extend_from_slice(&v[3 * i..3 * i + 3]);
        }
        (ids, data)
    };

    let (ids_l, data_l) = pack(&go_left);
    let (ids_r, data_r) = pack(&go_right);
    comm.send(left_of(comm), TAG_MIGRATE_ID, &ids_l)?;
    comm.send(left_of(comm), TAG_MIGRATE_DATA, &data_l)?;
    comm.send(right_of(comm), TAG_MIGRATE_ID + 0x10, &ids_r)?;
    comm.send(right_of(comm), TAG_MIGRATE_DATA + 0x10, &data_r)?;

    // Receive: from right (their go-left) and from left (their go-right).
    let (in_ids_r, _) = comm.recv_vec::<u64>(Some(right_of(comm)), TAG_MIGRATE_ID)?;
    let (in_data_r, _) = comm.recv_vec::<f64>(Some(right_of(comm)), TAG_MIGRATE_DATA)?;
    let (in_ids_l, _) = comm.recv_vec::<u64>(Some(left_of(comm)), TAG_MIGRATE_ID + 0x10)?;
    let (in_data_l, _) = comm.recv_vec::<f64>(Some(left_of(comm)), TAG_MIGRATE_DATA + 0x10)?;

    // Rebuild owned arrays: kept atoms first, then arrivals.
    let mut new_ids: Vec<u64> = keep.iter().map(|&i| id[i]).collect();
    let mut new_x: Vec<f64> = Vec::with_capacity((keep.len() + 8) * 3);
    let mut new_v: Vec<f64> = Vec::with_capacity(new_x.capacity());
    for &i in &keep {
        new_x.extend_from_slice(&x[3 * i..3 * i + 3]);
        new_v.extend_from_slice(&v[3 * i..3 * i + 3]);
    }
    for (ids, data) in [(in_ids_r, in_data_r), (in_ids_l, in_data_l)] {
        for (k, aid) in ids.iter().enumerate() {
            new_ids.push(*aid);
            new_x.extend_from_slice(&data[6 * k..6 * k + 3]);
            new_v.extend_from_slice(&data[6 * k + 3..6 * k + 6]);
        }
    }

    // Deterministic order: sort by id.
    let n_new = new_ids.len();
    let mut order: Vec<usize> = (0..n_new).collect();
    order.sort_by_key(|&k| new_ids[k]);
    assert!(
        3 * n_new <= x.len(),
        "atom capacity exceeded after exchange"
    );
    for (slot, &k) in order.iter().enumerate() {
        id[slot] = new_ids[k];
        x[3 * slot..3 * slot + 3].copy_from_slice(&new_x[3 * k..3 * k + 3]);
        v[3 * slot..3 * slot + 3].copy_from_slice(&new_v[3 * k..3 * k + 3]);
    }
    Ok(n_new)
}

/// Select border atoms, exchange them as ghosts, and record the plan.
/// Ghost positions are appended at `x[3*nlocal..]` and ghost ids at
/// `id[nlocal..]` — left neighbor's ghosts first, then the right's.
pub fn setup_borders(
    comm: &Comm,
    slab: &Slab,
    cutneigh: f64,
    x: &mut [f64],
    id: &mut [u64],
    nlocal: usize,
) -> MpiResult<CommPlan> {
    let me = comm.rank();
    let n_ranks = comm.size();
    let lx = slab.global[0];

    let mut plan = CommPlan {
        // Crossing the global boundary requires an image shift.
        shift_left: if me == 0 { lx } else { 0.0 },
        shift_right: if me == n_ranks - 1 { -lx } else { 0.0 },
        ..CommPlan::default()
    };
    for i in 0..nlocal {
        let px = x[3 * i];
        if px < slab.xlo + cutneigh {
            plan.send_left.push(i as u32);
        }
        if px >= slab.xhi - cutneigh {
            plan.send_right.push(i as u32);
        }
    }

    let pack = |idxs: &[u32], shift: f64| -> Vec<f64> {
        let mut out = Vec::with_capacity(idxs.len() * 3);
        for &i in idxs {
            let i = i as usize;
            out.push(x[3 * i] + shift);
            out.push(x[3 * i + 1]);
            out.push(x[3 * i + 2]);
        }
        out
    };

    let ids_of = |idxs: &[u32]| -> Vec<u64> { idxs.iter().map(|&i| id[i as usize]).collect() };

    comm.send(
        left_of(comm),
        TAG_BORDER,
        &pack(&plan.send_left, plan.shift_left),
    )?;
    comm.send(left_of(comm), TAG_BORDER + 1, &ids_of(&plan.send_left))?;
    comm.send(
        right_of(comm),
        TAG_BORDER + 0x10,
        &pack(&plan.send_right, plan.shift_right),
    )?;
    comm.send(right_of(comm), TAG_BORDER + 0x11, &ids_of(&plan.send_right))?;
    // My left ghosts come from my left neighbor's send_right.
    let (from_left, _) = comm.recv_vec::<f64>(Some(left_of(comm)), TAG_BORDER + 0x10)?;
    let (ids_left, _) = comm.recv_vec::<u64>(Some(left_of(comm)), TAG_BORDER + 0x11)?;
    let (from_right, _) = comm.recv_vec::<f64>(Some(right_of(comm)), TAG_BORDER)?;
    let (ids_right, _) = comm.recv_vec::<u64>(Some(right_of(comm)), TAG_BORDER + 1)?;
    plan.nghost_left = from_left.len() / 3;
    plan.nghost_right = from_right.len() / 3;

    let base = 3 * nlocal;
    assert!(
        base + from_left.len() + from_right.len() <= x.len(),
        "ghost capacity exceeded"
    );
    assert!(nlocal + ids_left.len() + ids_right.len() <= id.len());
    x[base..base + from_left.len()].copy_from_slice(&from_left);
    x[base + from_left.len()..base + from_left.len() + from_right.len()]
        .copy_from_slice(&from_right);
    id[nlocal..nlocal + ids_left.len()].copy_from_slice(&ids_left);
    id[nlocal + ids_left.len()..nlocal + ids_left.len() + ids_right.len()]
        .copy_from_slice(&ids_right);
    Ok(plan)
}

/// Per-step ghost position refresh: resend the planned border atoms'
/// current positions and overwrite the ghost slots.
pub fn communicate(comm: &Comm, plan: &CommPlan, x: &mut [f64], nlocal: usize) -> MpiResult<()> {
    let pack = |idxs: &[u32], shift: f64| -> Vec<f64> {
        let mut out = Vec::with_capacity(idxs.len() * 3);
        for &i in idxs {
            let i = i as usize;
            out.push(x[3 * i] + shift);
            out.push(x[3 * i + 1]);
            out.push(x[3 * i + 2]);
        }
        out
    };
    comm.send(
        left_of(comm),
        TAG_COMM,
        &pack(&plan.send_left, plan.shift_left),
    )?;
    comm.send(
        right_of(comm),
        TAG_COMM + 0x10,
        &pack(&plan.send_right, plan.shift_right),
    )?;
    let base = 3 * nlocal;
    let nl = 3 * plan.nghost_left;
    let nr = 3 * plan.nghost_right;
    comm.recv_into(
        Some(left_of(comm)),
        TAG_COMM + 0x10,
        &mut x[base..base + nl],
    )?;
    comm.recv_into(
        Some(right_of(comm)),
        TAG_COMM,
        &mut x[base + nl..base + nl + nr],
    )?;
    Ok(())
}
