//! MiniMD: a miniature of Sandia's molecular-dynamics mini-app.
//!
//! Lennard-Jones atoms on an FCC lattice, velocity-Verlet integration,
//! binned neighbor lists rebuilt every `neigh_every` steps, and 1-D slab
//! decomposition with atom migration and ghost halos. The timestep is
//! instrumented into the paper's Figure 6 phases:
//!
//! * **Force Compute** — LJ forces + integrator halves (compute-bound);
//! * **Neighboring** — binning and neighbor-list builds (mostly local);
//! * **Communicator** — ghost updates, atom exchange, border setup
//!   (communication-bound).
//!
//! All state lives in the [`views::ViewSet`] inventory (61 view objects: 39
//! checkpointed allocations, 3 swap-space aliases, 19 per-module duplicate
//! handles), reproducing the paper's Figure 7 statistics. Neighbor lists are
//! kept in canonical (atom-id) order so recovered runs are bitwise-identical
//! to uninterrupted ones.

pub mod atoms;
pub mod exchange;
pub mod force;
pub mod neighbor;
pub mod views;

use std::sync::Arc;

use kokkos::capture::Checkpointable;
use resilience::{Bookkeeper, IterativeApp, RankApp, RunMode};
use simmpi::{Comm, MpiResult, Phase, RankCtx};

use atoms::{generate_slab_atoms, lattice_constant, Slab, DENSITY};
use exchange::CommPlan;
use neighbor::BinGrid;
use views::{Capacities, ViewSet, ALIAS_LABELS};

/// MiniMD problem description.
#[derive(Clone, Debug)]
pub struct MiniMd {
    /// FCC unit cells per rank: `[x-layers, y, z]` (weak scaling keeps this
    /// fixed and adds ranks).
    pub cells: [usize; 3],
    /// Neighbor-list rebuild interval (MiniMD default: 20).
    pub neigh_every: u64,
    pub dt: f64,
    pub mode: RunMode,
}

impl MiniMd {
    pub fn new(cells: [usize; 3], iterations: u64) -> Self {
        MiniMd {
            cells,
            neigh_every: 5,
            dt: 0.005,
            mode: RunMode::FixedIterations(iterations),
        }
    }

    /// Atoms each rank owns initially.
    pub fn atoms_per_rank(&self) -> usize {
        4 * self.cells[0] * self.cells[1] * self.cells[2]
    }
}

impl IterativeApp for MiniMd {
    fn name(&self) -> &str {
        "minimd"
    }

    fn mode(&self) -> RunMode {
        self.mode
    }

    fn alias_labels(&self) -> Vec<String> {
        ALIAS_LABELS.iter().map(|s| s.to_string()).collect()
    }

    /// Checkpoints must land so that the resume step (`version + 1`) is a
    /// neighbor-rebuild step: the rebuild reconstructs ghosts and the
    /// communication plan collectively, which is what makes the detection
    /// re-execution after a restore well-defined (message sizes are
    /// state-dependent between rebuilds). Production MD codes write restart
    /// files at reneighboring boundaries for the same reason.
    fn checkpoint_filter(&self, checkpoints: u64) -> kokkos_resilience::CheckpointFilter {
        let iters = self.mode.max_iterations();
        let raw = (iters / checkpoints.max(1)).max(1);
        let ne = self.neigh_every.max(1);
        // Round the interval up to a multiple of neigh_every; EveryN(k·ne)
        // fires at i with (i+1) divisible by ne.
        let aligned = raw.div_ceil(ne) * ne;
        kokkos_resilience::CheckpointFilter::EveryN(aligned)
    }

    fn init_rank(&self, _ctx: &RankCtx, comm: &Comm) -> Box<dyn RankApp> {
        Box::new(self.state_for(comm))
    }
}

impl MiniMd {
    /// Build one rank's concrete state (used directly by tests and the
    /// harness; `init_rank` wraps it as a trait object).
    pub fn state_for(&self, comm: &Comm) -> MiniMdState {
        let slab = Slab::new(comm.rank(), comm.size(), self.cells);
        let cutforce = 2.5f64;
        let skin = 0.3f64;
        let cutneigh = cutforce + skin;
        let grid = BinGrid::new(&slab, cutneigh);
        let bin_cap = grid.suggested_bin_cap(DENSITY) * 2; // ghosts double local density at edges
        let caps = Capacities::for_problem(self.atoms_per_rank(), grid.total_bins(), bin_cap);
        let vs = ViewSet::new(&caps);

        // Physical parameters.
        {
            vs.dt.write_uncaptured()[0] = self.dt;
            vs.cutsq_force.write_uncaptured()[0] = cutforce * cutforce;
            vs.cutsq_neigh.write_uncaptured()[0] = cutneigh * cutneigh;
            vs.skin.write_uncaptured()[0] = skin;
            vs.lattice.write_uncaptured()[0] = lattice_constant();
            vs.density.write_uncaptured()[0] = DENSITY;
            vs.mass.write_uncaptured()[0] = 1.0;
            vs.epsilon.write_uncaptured()[0] = 1.0;
            vs.sigma.write_uncaptured()[0] = 1.0;
            vs.lj1.write_uncaptured()[0] = 48.0;
            vs.lj2.write_uncaptured()[0] = 24.0;
            vs.temp_init.write_uncaptured()[0] = 1.44;
            vs.cut_buffer.write_uncaptured()[0] = skin * 0.5;
            vs.seed.write_uncaptured()[0] = 87_287;
            vs.neigh_every.write_uncaptured()[0] = self.neigh_every;
            vs.thermo_every.write_uncaptured()[0] = 10;
            {
                let mut lim = vs.limits.write_uncaptured();
                lim[0] = caps.maxneigh as u64;
                lim[1] = caps.bin_cap as u64;
            }
            {
                let mut nb = vs.nbins_dims.write_uncaptured();
                nb[0] = grid.nbx as u64;
                nb[1] = grid.nby as u64;
                nb[2] = grid.nbz as u64;
            }
            vs.natoms_global.write_uncaptured()[0] = (self.atoms_per_rank() * comm.size()) as u64;
            {
                let mut bb = vs.box_bounds.write_uncaptured();
                bb.copy_from_slice(&[
                    0.0,
                    slab.global[0],
                    0.0,
                    slab.global[1],
                    0.0,
                    slab.global[2],
                ]);
            }
        }

        // Atoms.
        let init = generate_slab_atoms(comm.rank(), comm.size(), self.cells);
        {
            let mut x = vs.x.write_uncaptured();
            let mut v = vs.v.write_uncaptured();
            let mut id = vs.id.write_uncaptured();
            for (i, a) in init.iter().enumerate() {
                x[3 * i..3 * i + 3].copy_from_slice(&a.pos);
                v[3 * i..3 * i + 3].copy_from_slice(&a.vel);
                id[i] = a.id;
            }
            vs.counts.write_uncaptured()[0] = init.len() as u64;
        }

        MiniMdState {
            vs,
            caps,
            slab,
            grid,
            cutneigh,
        }
    }
}

/// Per-rank MiniMD state.
pub struct MiniMdState {
    vs: ViewSet,
    caps: Capacities,
    slab: Slab,
    grid: BinGrid,
    cutneigh: f64,
}

impl MiniMdState {
    fn nlocal(&self) -> usize {
        self.vs.counts.read_uncaptured()[0] as usize
    }

    /// Public access to the view inventory (harness statistics).
    pub fn views(&self) -> &ViewSet {
        &self.vs
    }

    /// Acquire every view handle once, modelling the captures the C++
    /// compiler copies into the checkpoint lambda. This is what makes the
    /// full 61-object inventory visible to automatic detection, whichever
    /// iteration the detection pass lands on.
    fn capture_footprint(&self) {
        let vs = &self.vs;
        let _ = vs.x.read();
        let _ = vs.v.read();
        let _ = vs.f.read();
        let _ = vs.id.read();
        let _ = vs.counts.read();
        let _ = vs.x_swap.read();
        let _ = vs.v_swap.read();
        let _ = vs.f_swap.read();
        let _ = vs.bin_count.read();
        let _ = vs.bin_atoms.read();
        let _ = vs.neigh_count.read();
        let _ = vs.neigh_list.read();
        let _ = vs.border_left.read();
        let _ = vs.border_right.read();
        let _ = vs.border_counts.read();
        let _ = vs.shifts.read();
        let _ = vs.box_bounds.read();
        let _ = vs.dt.read();
        let _ = vs.cutsq_force.read();
        let _ = vs.cutsq_neigh.read();
        let _ = vs.skin.read();
        let _ = vs.lattice.read();
        let _ = vs.density.read();
        let _ = vs.mass.read();
        let _ = vs.epsilon.read();
        let _ = vs.sigma.read();
        let _ = vs.lj1.read();
        let _ = vs.lj2.read();
        let _ = vs.temp_init.read();
        let _ = vs.cut_buffer.read();
        let _ = vs.seed.read();
        let _ = vs.neigh_every.read();
        let _ = vs.thermo_every.read();
        let _ = vs.limits.read();
        let _ = vs.nbins_dims.read();
        let _ = vs.natoms_global.read();
        let _ = vs.timestep_count.read();
        let _ = vs.pe.read();
        let _ = vs.ke.read();
        let _ = vs.temp.read();
        let _ = vs.virial.read();
        let _ = vs.pressure.read();
        // Module-held duplicates.
        let _ = vs.force_x.read();
        let _ = vs.force_f.read();
        let _ = vs.force_neigh_count.read();
        let _ = vs.force_neigh_list.read();
        let _ = vs.force_cutsq.read();
        let _ = vs.force_lj1.read();
        let _ = vs.force_lj2.read();
        let _ = vs.neigh_x.read();
        let _ = vs.neigh_bin_count.read();
        let _ = vs.neigh_bin_atoms.read();
        let _ = vs.neigh_ncount.read();
        let _ = vs.neigh_nlist.read();
        let _ = vs.neigh_cutsq.read();
        let _ = vs.comm_x.read();
        let _ = vs.comm_border_left.read();
        let _ = vs.comm_border_right.read();
        let _ = vs.comm_border_counts.read();
        let _ = vs.comm_shifts.read();
        let _ = vs.integ_v.read();
    }

    /// Load the communication plan from its views.
    fn load_plan(&self) -> CommPlan {
        let counts = self.vs.comm_border_counts.read();
        let shifts = self.vs.comm_shifts.read();
        let bl = self.vs.comm_border_left.read();
        let br = self.vs.comm_border_right.read();
        CommPlan {
            send_left: bl[..counts[0] as usize].to_vec(),
            send_right: br[..counts[1] as usize].to_vec(),
            shift_left: shifts[0],
            shift_right: shifts[1],
            nghost_left: counts[2] as usize,
            nghost_right: counts[3] as usize,
        }
    }

    /// Store a freshly built plan into its views.
    fn store_plan(&self, plan: &CommPlan) {
        {
            let mut bl = self.vs.comm_border_left.write();
            bl[..plan.send_left.len()].copy_from_slice(&plan.send_left);
        }
        {
            let mut br = self.vs.comm_border_right.write();
            br[..plan.send_right.len()].copy_from_slice(&plan.send_right);
        }
        {
            let mut c = self.vs.comm_border_counts.write();
            c[0] = plan.send_left.len() as u64;
            c[1] = plan.send_right.len() as u64;
            c[2] = plan.nghost_left as u64;
            c[3] = plan.nghost_right as u64;
        }
        {
            let mut s = self.vs.comm_shifts.write();
            s[0] = plan.shift_left;
            s[1] = plan.shift_right;
        }
    }

    /// Rebuild step: migrate atoms, set up borders, rebuild neighbor lists.
    fn rebuild(&mut self, comm: &Comm, step: u64, bk: &Bookkeeper) -> MpiResult<()> {
        let nlocal = self.nlocal();
        bk.book(Phase::Communicator, || -> MpiResult<()> {
            // Stage into the swap space (the temporary buffers the paper's
            // alias views accommodate).
            {
                let x = self.vs.x.read();
                let mut xs = self.vs.x_swap.write();
                xs.copy_from_slice(&x);
            }
            {
                let v = self.vs.v.read();
                let mut vsw = self.vs.v_swap.write();
                vsw.copy_from_slice(&v);
            }
            {
                let f = self.vs.f.read();
                let mut fs = self.vs.f_swap.write();
                fs.copy_from_slice(&f);
            }

            let mut x = self.vs.comm_x.write();
            let mut v = self.vs.v.write();
            let mut id = self.vs.id.write();
            exchange::pbc(&self.slab, &mut x, nlocal);
            let new_nlocal =
                exchange::exchange_atoms(comm, &self.slab, &mut x, &mut v, &mut id, nlocal)?;
            assert!(new_nlocal <= self.caps.nmax, "owned capacity exceeded");
            let plan = exchange::setup_borders(
                comm,
                &self.slab,
                self.cutneigh,
                &mut x,
                &mut id,
                new_nlocal,
            )?;
            drop((x, v, id));
            self.store_plan(&plan);
            let mut counts = self.vs.counts.write();
            counts[0] = new_nlocal as u64;
            counts[1] = plan.nghost_left as u64;
            counts[2] = plan.nghost_right as u64;
            counts[3] = step;
            Ok(())
        })?;

        bk.book(Phase::Neighboring, || self.rebuild_neighbors());
        Ok(())
    }

    /// Re-bin all atoms and rebuild the neighbor lists from the current
    /// positions and communication plan.
    fn rebuild_neighbors(&mut self) {
        let nlocal = self.nlocal();
        let plan = self.load_plan();
        let nall = nlocal + plan.nghost();
        let x = self.vs.neigh_x.read();
        let id = self.vs.id.read();
        let cutsq = self.vs.neigh_cutsq.read()[0];
        let mut bc = self.vs.neigh_bin_count.write();
        let mut ba = self.vs.neigh_bin_atoms.write();
        neighbor::build_bins(&self.grid, &x, nall, &mut bc, &mut ba, self.caps.bin_cap);
        let mut ncount = self.vs.neigh_ncount.write();
        let mut nlist = self.vs.neigh_nlist.write();
        neighbor::build_neighbors(
            &self.grid,
            &self.slab,
            &x,
            &id,
            nlocal,
            &bc,
            &ba,
            self.caps.bin_cap,
            cutsq,
            &mut ncount,
            &mut nlist,
            self.caps.maxneigh,
        );
    }

    /// Recompute forces from current positions and neighbor lists.
    /// Does not touch velocities — also used to re-derive `f` after a
    /// checkpoint restore.
    fn compute_forces(&mut self) -> f64 {
        let nlocal = self.nlocal();
        let x = self.vs.force_x.read();
        let nc = self.vs.force_neigh_count.read();
        let nl = self.vs.force_neigh_list.read();
        let cutsq = self.vs.force_cutsq.read()[0];
        let _lj1 = self.vs.force_lj1.read()[0];
        let _lj2 = self.vs.force_lj2.read()[0];
        let mut f = self.vs.force_f.write();
        let pe = force::compute_lj(
            &self.slab,
            &x,
            nlocal,
            &nc,
            &nl,
            self.caps.maxneigh,
            cutsq,
            &mut f,
        );
        drop((x, nc, nl, f));
        self.vs.pe.write()[0] = pe;
        pe
    }

    /// Force computation + second Verlet half + thermo bookkeeping.
    fn forces(&mut self, step: u64, bk: &Bookkeeper) {
        bk.book(Phase::ForceCompute, || {
            let pe = self.compute_forces();
            let nlocal = self.nlocal();
            let dt = self.vs.dt.read()[0];
            let f = self.vs.f.read();
            let mut v = self.vs.integ_v.write();
            force::final_integrate(&mut v, &f, nlocal, dt);

            let thermo_every = self.vs.thermo_every.read()[0].max(1);
            if step.is_multiple_of(thermo_every) {
                let ke = force::kinetic_energy(&v, nlocal);
                self.vs.ke.write()[0] = ke;
                self.vs.temp.write()[0] = 2.0 * ke / (3.0 * nlocal.max(1) as f64);
                self.vs.virial.write()[0] = pe; // proxy diagnostic
                self.vs.pressure.write()[0] =
                    DENSITY * (2.0 * ke / (3.0 * nlocal.max(1) as f64)) + pe / 3.0;
            }
            self.vs.timestep_count.write()[0] = step + 1;
        });
    }
}

impl RankApp for MiniMdState {
    fn step(&mut self, comm: &Comm, iteration: u64, bk: &Bookkeeper) -> MpiResult<()> {
        self.capture_footprint();
        let dt = self.vs.dt.read()[0];
        let neigh_every = self.vs.neigh_every.read()[0].max(1);
        let nlocal = self.nlocal();

        // First Verlet half.
        bk.book(Phase::ForceCompute, || {
            let mut x = self.vs.x.write();
            let mut v = self.vs.integ_v.write();
            let f = self.vs.f.read();
            force::initial_integrate(&mut x, &mut v, &f, nlocal, dt);
        });

        if iteration.is_multiple_of(neigh_every) {
            self.rebuild(comm, iteration, bk)?;
        } else {
            bk.book(Phase::Communicator, || -> MpiResult<()> {
                let plan = self.load_plan();
                let mut x = self.vs.comm_x.write();
                exchange::communicate(comm, &plan, &mut x, self.nlocal())
            })?;
        }

        self.forces(iteration, bk);
        Ok(())
    }

    fn checkpoint_views(&self) -> Vec<Arc<dyn Checkpointable>> {
        vec![
            Arc::new(self.vs.x.clone()),
            Arc::new(self.vs.v.clone()),
            Arc::new(self.vs.id.clone()),
            Arc::new(self.vs.counts.clone()),
        ]
    }

    fn post_restore(&mut self, comm: &Comm, bk: &Bookkeeper) -> MpiResult<()> {
        // Manual-strategy restores reinstate x/v/id/counts only; ghosts,
        // neighbor lists, and forces are derived state rebuilt here.
        //
        // Positions are used exactly as restored — no wrapping and no atom
        // migration, because the reference timeline performs those only at
        // rebuild steps and early wrapping perturbs float bits. Checkpoints
        // are aligned so the *next* step is a rebuild step (like production
        // MD restart files, written at reneighboring boundaries); the skin
        // guarantees the fresh ghost shell and neighbor lists cover every
        // pair within the force cutoff. The restored velocities already
        // include both Verlet halves, so forces are recomputed *without*
        // integrating. All of it is recovery work.
        bk.set_phase_override(Some(Phase::DataRecovery));
        let result = (|| -> MpiResult<()> {
            let nlocal = self.nlocal();
            let plan = {
                let mut x = self.vs.comm_x.write();
                let mut id = self.vs.id.write();
                exchange::setup_borders(comm, &self.slab, self.cutneigh, &mut x, &mut id, nlocal)?
            };
            self.store_plan(&plan);
            {
                let mut counts = self.vs.counts.write();
                counts[1] = plan.nghost_left as u64;
                counts[2] = plan.nghost_right as u64;
            }
            self.rebuild_neighbors();
            self.compute_forces();
            Ok(())
        })();
        bk.set_phase_override(None);
        result
    }

    fn digest(&self) -> u64 {
        let nlocal = self.nlocal();
        let x = self.vs.x.read_uncaptured();
        let v = self.vs.v.read_uncaptured();
        let id = self.vs.id.read_uncaptured();
        let mut acc = 0u64;
        for i in 0..nlocal {
            let mut h = id[i].wrapping_mul(0x9e37_79b9_7f4a_7c15);
            for k in 0..3 {
                h = h
                    .wrapping_mul(31)
                    .wrapping_add(x[3 * i + k].to_bits())
                    .wrapping_mul(31)
                    .wrapping_add(v[3 * i + k].to_bits());
            }
            acc = acc.wrapping_add(h); // order-independent
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn atoms_per_rank_counts_fcc() {
        let app = MiniMd::new([2, 3, 4], 10);
        assert_eq!(app.atoms_per_rank(), 96);
    }

    #[test]
    fn alias_labels_match_viewset() {
        let app = MiniMd::new([2, 2, 2], 10);
        assert_eq!(app.alias_labels().len(), 3);
    }
}
