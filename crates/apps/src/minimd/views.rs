//! The MiniMD view inventory — the data behind the paper's Figure 7 and
//! §VI.E complexity statistics.
//!
//! The real MiniMD holds 61 Kokkos view objects: 39 distinct checkpointed
//! allocations, 3 user-declared aliases (temporary swap space), and 19
//! duplicate view objects "copied into the checkpoint lambda by the
//! compiler" — each application module keeps its own handle to shared
//! arrays. This module reproduces that inventory exactly: the per-module
//! duplicate handles below are what the capture layer must detect and skip
//! so no allocation is checkpointed twice.

use kokkos::View;

/// Labels of the swap-space views the user declares as aliases.
pub const ALIAS_LABELS: [&str; 3] = ["x_swap", "v_swap", "f_swap"];

/// All views of one rank's MiniMD state.
pub struct ViewSet {
    // --- per-atom arrays (owned + ghost capacity) -------------------------
    pub x: View<f64>,
    pub v: View<f64>,
    pub f: View<f64>,
    pub id: View<u64>,
    /// `[nlocal, nghost_left, nghost_right, last_rebuild_step]`.
    pub counts: View<u64>,

    // --- swap space (aliases; never checkpointed) -------------------------
    pub x_swap: View<f64>,
    pub v_swap: View<f64>,
    pub f_swap: View<f64>,

    // --- neighbor structures ----------------------------------------------
    pub bin_count: View<u32>,
    pub bin_atoms: View<u32>,
    pub neigh_count: View<u32>,
    pub neigh_list: View<u32>,

    // --- communication plan -----------------------------------------------
    pub border_left: View<u32>,
    pub border_right: View<u32>,
    /// `[n_send_left, n_send_right, nghost_left, nghost_right]`.
    pub border_counts: View<u64>,
    /// `[shift_left, shift_right]`.
    pub shifts: View<f64>,

    // --- physical / numerical parameters -----------------------------------
    pub box_bounds: View<f64>,
    pub dt: View<f64>,
    pub cutsq_force: View<f64>,
    pub cutsq_neigh: View<f64>,
    pub skin: View<f64>,
    pub lattice: View<f64>,
    pub density: View<f64>,
    pub mass: View<f64>,
    pub epsilon: View<f64>,
    pub sigma: View<f64>,
    pub lj1: View<f64>,
    pub lj2: View<f64>,
    pub temp_init: View<f64>,
    pub cut_buffer: View<f64>,
    pub seed: View<u64>,
    pub neigh_every: View<u64>,
    pub thermo_every: View<u64>,
    /// `[maxneigh, bin_cap]`.
    pub limits: View<u64>,
    /// `[nbx, nby, nbz]`.
    pub nbins_dims: View<u64>,
    pub natoms_global: View<u64>,
    pub timestep_count: View<u64>,

    // --- thermodynamic accumulators ----------------------------------------
    pub pe: View<f64>,
    pub ke: View<f64>,
    pub temp: View<f64>,
    pub virial: View<f64>,
    pub pressure: View<f64>,

    // --- per-module duplicate handles (the "skipped" views) -----------------
    pub force_x: View<f64>,
    pub force_f: View<f64>,
    pub force_neigh_count: View<u32>,
    pub force_neigh_list: View<u32>,
    pub force_cutsq: View<f64>,
    pub force_lj1: View<f64>,
    pub force_lj2: View<f64>,
    pub neigh_x: View<f64>,
    pub neigh_bin_count: View<u32>,
    pub neigh_bin_atoms: View<u32>,
    pub neigh_ncount: View<u32>,
    pub neigh_nlist: View<u32>,
    pub neigh_cutsq: View<f64>,
    pub comm_x: View<f64>,
    pub comm_border_left: View<u32>,
    pub comm_border_right: View<u32>,
    pub comm_border_counts: View<u64>,
    pub comm_shifts: View<f64>,
    pub integ_v: View<f64>,
}

/// Capacity plan derived from the per-rank problem size.
#[derive(Clone, Copy, Debug)]
pub struct Capacities {
    /// Owned-atom slots.
    pub nmax: usize,
    /// Ghost-atom slots (beyond `nmax` in the shared arrays).
    pub gmax: usize,
    pub maxneigh: usize,
    pub bin_cap: usize,
    pub total_bins: usize,
}

impl Capacities {
    pub fn for_problem(atoms_per_rank: usize, total_bins: usize, bin_cap: usize) -> Self {
        Capacities {
            nmax: atoms_per_rank * 2,
            // Narrow slabs can ghost every atom from both directions, twice
            // (two periodic images at 2 ranks).
            gmax: atoms_per_rank * 4,
            maxneigh: 192,
            bin_cap,
            total_bins,
        }
    }

    pub fn nall_max(&self) -> usize {
        self.nmax + self.gmax
    }
}

impl ViewSet {
    pub fn new(caps: &Capacities) -> Self {
        let nall = caps.nall_max();
        let x: View<f64> = View::new_2d("x", nall, 3);
        let v: View<f64> = View::new_2d("v", caps.nmax, 3);
        let f: View<f64> = View::new_2d("f", caps.nmax, 3);
        let id: View<u64> = View::new_1d("id", nall);
        let bin_count: View<u32> = View::new_1d("bin_count", caps.total_bins);
        let bin_atoms: View<u32> = View::new_2d("bin_atoms", caps.total_bins, caps.bin_cap);
        let neigh_count: View<u32> = View::new_1d("neigh_count", caps.nmax);
        let neigh_list: View<u32> = View::new_2d("neigh_list", caps.nmax, caps.maxneigh);
        let border_left: View<u32> = View::new_1d("border_left", caps.nmax);
        let border_right: View<u32> = View::new_1d("border_right", caps.nmax);
        let border_counts: View<u64> = View::new_1d("border_counts", 4);
        let shifts: View<f64> = View::new_1d("shifts", 2);
        let cutsq_force: View<f64> = View::new_1d("cutsq_force", 1);
        let cutsq_neigh: View<f64> = View::new_1d("cutsq_neigh", 1);
        let lj1: View<f64> = View::new_1d("lj1", 1);
        let lj2: View<f64> = View::new_1d("lj2", 1);

        ViewSet {
            force_x: x.duplicate_handle("x@force"),
            force_f: f.duplicate_handle("f@force"),
            force_neigh_count: neigh_count.duplicate_handle("neigh_count@force"),
            force_neigh_list: neigh_list.duplicate_handle("neigh_list@force"),
            neigh_x: x.duplicate_handle("x@neighbor"),
            neigh_bin_count: bin_count.duplicate_handle("bin_count@neighbor"),
            neigh_bin_atoms: bin_atoms.duplicate_handle("bin_atoms@neighbor"),
            neigh_ncount: neigh_count.duplicate_handle("neigh_count@neighbor"),
            neigh_nlist: neigh_list.duplicate_handle("neigh_list@neighbor"),
            comm_x: x.duplicate_handle("x@comm"),
            comm_border_left: border_left.duplicate_handle("border_left@comm"),
            comm_border_right: border_right.duplicate_handle("border_right@comm"),
            comm_border_counts: border_counts.duplicate_handle("border_counts@comm"),
            comm_shifts: shifts.duplicate_handle("shifts@comm"),
            integ_v: v.duplicate_handle("v@integrate"),

            x_swap: View::new_2d("x_swap", nall, 3),
            v_swap: View::new_2d("v_swap", caps.nmax, 3),
            f_swap: View::new_2d("f_swap", caps.nmax, 3),

            counts: View::new_1d("counts", 4),
            box_bounds: View::new_1d("box_bounds", 6),
            dt: View::new_1d("dt", 1),
            skin: View::new_1d("skin", 1),
            lattice: View::new_1d("lattice", 1),
            density: View::new_1d("density", 1),
            mass: View::new_1d("mass", 1),
            epsilon: View::new_1d("epsilon", 1),
            sigma: View::new_1d("sigma", 1),
            temp_init: View::new_1d("temp_init", 1),
            cut_buffer: View::new_1d("cut_buffer", 1),
            seed: View::new_1d("seed", 1),
            neigh_every: View::new_1d("neigh_every", 1),
            thermo_every: View::new_1d("thermo_every", 1),
            limits: View::new_1d("limits", 2),
            nbins_dims: View::new_1d("nbins_dims", 3),
            natoms_global: View::new_1d("natoms_global", 1),
            timestep_count: View::new_1d("timestep_count", 1),
            pe: View::new_1d("pe", 1),
            ke: View::new_1d("ke", 1),
            temp: View::new_1d("temp", 1),
            virial: View::new_1d("virial", 1),
            pressure: View::new_1d("pressure", 1),

            force_cutsq: cutsq_force.duplicate_handle("cutsq_force@force"),
            force_lj1: lj1.duplicate_handle("lj1@force"),
            force_lj2: lj2.duplicate_handle("lj2@force"),
            neigh_cutsq: cutsq_neigh.duplicate_handle("cutsq_neigh@neighbor"),

            cutsq_force,
            cutsq_neigh,
            lj1,
            lj2,
            x,
            v,
            f,
            id,
            bin_count,
            bin_atoms,
            neigh_count,
            neigh_list,
            border_left,
            border_right,
            border_counts,
            shifts,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set() -> ViewSet {
        ViewSet::new(&Capacities::for_problem(256, 64, 96))
    }

    #[test]
    fn duplicates_share_allocations() {
        let s = set();
        assert_eq!(s.force_x.alloc_id(), s.x.alloc_id());
        assert_ne!(s.force_x.view_id(), s.x.view_id());
        assert_eq!(s.neigh_nlist.alloc_id(), s.neigh_list.alloc_id());
        assert_eq!(s.integ_v.alloc_id(), s.v.alloc_id());
    }

    #[test]
    fn aliases_are_distinct_allocations() {
        let s = set();
        assert_ne!(s.x_swap.alloc_id(), s.x.alloc_id());
        assert_eq!(s.x_swap.len(), s.x.len());
    }

    #[test]
    fn x_dominates_memory() {
        // Figure 7: "a single view contains the majority of the data".
        let s = set();
        let others = s.v.byte_len() + s.f.byte_len() + s.counts.byte_len();
        assert!(s.x.byte_len() + s.neigh_list.byte_len() > others);
    }

    #[test]
    fn capacity_plan_scales() {
        let c = Capacities::for_problem(100, 27, 64);
        assert_eq!(c.nmax, 200);
        assert_eq!(c.nall_max(), 200 + 400);
    }
}
