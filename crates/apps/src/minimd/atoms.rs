//! FCC lattice setup and simulation-box geometry.
//!
//! MiniMD initializes a face-centered-cubic lattice of Lennard-Jones atoms
//! at reduced density 0.8442 and assigns deterministic initial velocities.
//! The domain is slab-decomposed along x: each rank owns a fixed number of
//! unit-cell layers (weak scaling adds ranks, not per-rank work).

/// Reduced density (MiniMD default).
pub const DENSITY: f64 = 0.8442;

/// FCC basis offsets in units of the lattice constant.
pub const FCC_BASIS: [[f64; 3]; 4] = [
    [0.0, 0.0, 0.0],
    [0.5, 0.5, 0.0],
    [0.5, 0.0, 0.5],
    [0.0, 0.5, 0.5],
];

/// Lattice constant for the configured density.
pub fn lattice_constant() -> f64 {
    (4.0 / DENSITY).cbrt()
}

/// Simulation box geometry for one rank's slab.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Slab {
    /// Global box extents.
    pub global: [f64; 3],
    /// This rank's slab bounds along x: `[xlo, xhi)`.
    pub xlo: f64,
    pub xhi: f64,
}

impl Slab {
    /// Build the slab for `rank` of `size` ranks, each owning
    /// `cells_x` unit-cell layers of a `cells_y × cells_z` cross-section.
    pub fn new(rank: usize, size: usize, cells: [usize; 3]) -> Self {
        let a = lattice_constant();
        let lx = size as f64 * cells[0] as f64 * a;
        let ly = cells[1] as f64 * a;
        let lz = cells[2] as f64 * a;
        let per = cells[0] as f64 * a;
        Slab {
            global: [lx, ly, lz],
            xlo: rank as f64 * per,
            xhi: (rank + 1) as f64 * per,
        }
    }

    pub fn width(&self) -> f64 {
        self.xhi - self.xlo
    }

    /// Wrap a position into the global periodic box.
    pub fn wrap(&self, p: &mut [f64; 3]) {
        for (x, &l) in p.iter_mut().zip(&self.global) {
            if *x < 0.0 {
                *x += l;
            }
            if *x >= l {
                *x -= l;
            }
        }
    }

    /// Minimum-image displacement component for periodic dimensions y/z.
    #[inline]
    pub fn min_image(&self, mut d: f64, dim: usize) -> f64 {
        let l = self.global[dim];
        if d > 0.5 * l {
            d -= l;
        } else if d < -0.5 * l {
            d += l;
        }
        d
    }
}

/// Deterministic per-atom pseudo-random value (splitmix64).
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Uniform in [-0.5, 0.5) from a seed.
fn uniform(seed: u64) -> f64 {
    (splitmix64(seed) >> 11) as f64 / (1u64 << 53) as f64 - 0.5
}

/// One initialized atom.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AtomInit {
    pub id: u64,
    pub pos: [f64; 3],
    pub vel: [f64; 3],
}

/// Generate this rank's owned atoms: the FCC sites whose cells lie in
/// `[rank*cells_x, (rank+1)*cells_x)`. Atom ids are global lattice-site
/// indices, so the same atom gets the same id and velocity regardless of
/// decomposition.
pub fn generate_slab_atoms(rank: usize, size: usize, cells: [usize; 3]) -> Vec<AtomInit> {
    let a = lattice_constant();
    let total_cx = size * cells[0];
    let (cy, cz) = (cells[1], cells[2]);
    let mut atoms = Vec::with_capacity(4 * cells[0] * cy * cz);
    for ix in rank * cells[0]..(rank + 1) * cells[0] {
        for iy in 0..cy {
            for iz in 0..cz {
                let cell_index = ((ix * cy) + iy) * cz + iz;
                for (b, basis) in FCC_BASIS.iter().enumerate() {
                    let id = (cell_index * 4 + b) as u64;
                    let pos = [
                        (ix as f64 + basis[0]) * a,
                        (iy as f64 + basis[1]) * a,
                        (iz as f64 + basis[2]) * a,
                    ];
                    let vel = [
                        uniform(id.wrapping_mul(3)),
                        uniform(id.wrapping_mul(3) + 1),
                        uniform(id.wrapping_mul(3) + 2),
                    ];
                    atoms.push(AtomInit { id, pos, vel });
                }
            }
        }
    }
    debug_assert!(atoms.len() == 4 * cells[0] * cy * cz);
    let _ = total_cx;
    atoms
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lattice_constant_matches_density() {
        let a = lattice_constant();
        let rho = 4.0 / (a * a * a);
        assert!((rho - DENSITY).abs() < 1e-12);
    }

    #[test]
    fn slab_partitions_global_box() {
        let cells = [3, 4, 5];
        let size = 4;
        let mut covered = 0.0;
        for r in 0..size {
            let s = Slab::new(r, size, cells);
            covered += s.width();
            assert!((s.global[0] - 4.0 * 3.0 * lattice_constant()).abs() < 1e-12);
        }
        let s0 = Slab::new(0, size, cells);
        assert!((covered - s0.global[0]).abs() < 1e-9);
    }

    #[test]
    fn atom_count_is_four_per_cell() {
        let atoms = generate_slab_atoms(1, 3, [2, 3, 4]);
        assert_eq!(atoms.len(), 4 * 2 * 3 * 4);
    }

    #[test]
    fn atoms_lie_within_slab() {
        let cells = [2, 2, 2];
        for rank in 0..3 {
            let s = Slab::new(rank, 3, cells);
            for at in generate_slab_atoms(rank, 3, cells) {
                assert!(at.pos[0] >= s.xlo - 1e-12 && at.pos[0] < s.xhi);
                assert!(at.pos[1] >= 0.0 && at.pos[1] < s.global[1]);
            }
        }
    }

    #[test]
    fn ids_globally_unique_and_decomposition_invariant() {
        let cells = [2, 2, 2];
        let mut all: Vec<AtomInit> = (0..2)
            .flat_map(|r| generate_slab_atoms(r, 2, cells))
            .collect();
        all.sort_by_key(|a| a.id);
        let mut ids: Vec<u64> = all.iter().map(|a| a.id).collect();
        ids.dedup();
        assert_eq!(ids.len(), all.len(), "ids unique");
        // The same sites generated in a single-rank run (double cells_x)
        // carry identical velocities for matching ids where the lattice
        // indexing coincides.
        let single = generate_slab_atoms(0, 1, [4, 2, 2]);
        for a in &single {
            let twin = all.iter().find(|b| b.id == a.id).unwrap();
            assert_eq!(a.vel, twin.vel);
            assert_eq!(a.pos, twin.pos);
        }
    }

    #[test]
    fn wrap_and_min_image() {
        let s = Slab::new(0, 2, [2, 2, 2]);
        let l = s.global[0];
        let mut p = [-0.1, 0.0, 0.0];
        s.wrap(&mut p);
        assert!((p[0] - (l - 0.1)).abs() < 1e-12);
        let d = s.min_image(s.global[1] * 0.9, 1);
        assert!(d < 0.0, "wrapped to negative image");
    }

    #[test]
    fn velocities_are_deterministic() {
        let a1 = generate_slab_atoms(0, 2, [2, 2, 2]);
        let a2 = generate_slab_atoms(0, 2, [2, 2, 2]);
        assert_eq!(a1, a2);
    }
}
