//! Lennard-Jones force kernel (MiniMD's "Force Compute" phase) and the
//! velocity-Verlet integrator halves.

use crate::minimd::atoms::Slab;

/// Compute LJ forces on the `nlocal` owned atoms from full neighbor lists.
///
/// `x` holds owned + ghost positions; ghosts are already shifted in x, so
/// only y/z need minimum-image. Returns the potential energy of the owned
/// atoms (each pair counted half, standard for full lists).
#[allow(clippy::too_many_arguments)]
pub fn compute_lj(
    slab: &Slab,
    x: &[f64],
    nlocal: usize,
    neigh_count: &[u32],
    neigh_list: &[u32],
    maxneigh: usize,
    cutforce_sq: f64,
    f: &mut [f64],
) -> f64 {
    let mut pe = 0.0f64;
    for i in 0..nlocal {
        let xi = x[3 * i];
        let yi = x[3 * i + 1];
        let zi = x[3 * i + 2];
        let mut fx = 0.0;
        let mut fy = 0.0;
        let mut fz = 0.0;
        for k in 0..neigh_count[i] as usize {
            let j = neigh_list[i * maxneigh + k] as usize;
            let dx = xi - x[3 * j];
            let dy = slab.min_image(yi - x[3 * j + 1], 1);
            let dz = slab.min_image(zi - x[3 * j + 2], 2);
            let r2 = dx * dx + dy * dy + dz * dz;
            if r2 < cutforce_sq {
                let sr2 = 1.0 / r2;
                let sr6 = sr2 * sr2 * sr2;
                let fpair = 48.0 * sr6 * (sr6 - 0.5) * sr2;
                fx += dx * fpair;
                fy += dy * fpair;
                fz += dz * fpair;
                pe += 2.0 * sr6 * (sr6 - 1.0); // 0.5 * 4ε(…): half per pair
            }
        }
        f[3 * i] = fx;
        f[3 * i + 1] = fy;
        f[3 * i + 2] = fz;
    }
    pe
}

/// First velocity-Verlet half: `v += dt/2 · f`, `x += dt · v` (unit mass).
pub fn initial_integrate(x: &mut [f64], v: &mut [f64], f: &[f64], nlocal: usize, dt: f64) {
    let dtf = 0.5 * dt;
    for i in 0..3 * nlocal {
        v[i] += dtf * f[i];
        x[i] += dt * v[i];
    }
}

/// Second velocity-Verlet half: `v += dt/2 · f`.
pub fn final_integrate(v: &mut [f64], f: &[f64], nlocal: usize, dt: f64) {
    let dtf = 0.5 * dt;
    for i in 0..3 * nlocal {
        v[i] += dtf * f[i];
    }
}

/// Kinetic energy of the owned atoms (unit mass).
pub fn kinetic_energy(v: &[f64], nlocal: usize) -> f64 {
    let mut ke = 0.0;
    for &vi in &v[..3 * nlocal] {
        ke += vi * vi;
    }
    0.5 * ke
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::minimd::atoms::Slab;

    fn pair_setup(r: f64) -> (Slab, Vec<f64>, Vec<u32>, Vec<u32>) {
        // Two atoms on the x axis, far from any periodic image.
        let slab = Slab::new(0, 1, [8, 8, 8]);
        let x = vec![3.0, 5.0, 5.0, 3.0 + r, 5.0, 5.0];
        let neigh_count = vec![1u32, 1];
        let neigh_list = vec![1u32, 0];
        (slab, x, neigh_count, neigh_list)
    }

    #[test]
    fn force_is_zero_at_lj_minimum() {
        let rmin = 2.0f64.powf(1.0 / 6.0);
        let (slab, x, nc, nl) = pair_setup(rmin);
        let mut f = vec![0.0; 6];
        compute_lj(&slab, &x, 2, &nc, &nl, 1, 6.25, &mut f);
        assert!(f[0].abs() < 1e-10, "fx at minimum: {}", f[0]);
    }

    #[test]
    fn close_pair_repels_symmetrically() {
        let (slab, x, nc, nl) = pair_setup(0.9);
        let mut f = vec![0.0; 6];
        let pe = compute_lj(&slab, &x, 2, &nc, &nl, 1, 6.25, &mut f);
        assert!(f[0] < 0.0, "atom 0 pushed toward -x");
        assert!(f[3] > 0.0, "atom 1 pushed toward +x");
        assert!((f[0] + f[3]).abs() < 1e-10, "Newton's third law");
        assert!(pe > 0.0, "repulsive region has positive energy");
        assert_eq!(f[1], 0.0);
    }

    #[test]
    fn attractive_region_pulls_together() {
        let (slab, x, nc, nl) = pair_setup(1.5);
        let mut f = vec![0.0; 6];
        let pe = compute_lj(&slab, &x, 2, &nc, &nl, 1, 6.25, &mut f);
        assert!(f[0] > 0.0, "atom 0 pulled toward +x");
        assert!(pe < 0.0, "attractive well");
    }

    #[test]
    fn beyond_cutoff_is_ignored() {
        let (slab, x, nc, nl) = pair_setup(2.6);
        let mut f = vec![0.0; 6];
        let pe = compute_lj(&slab, &x, 2, &nc, &nl, 1, 6.25, &mut f);
        assert_eq!(f, vec![0.0; 6]);
        assert_eq!(pe, 0.0);
    }

    #[test]
    fn min_image_applies_in_y() {
        // Atoms separated by nearly the whole box in y are close through
        // the periodic image.
        let slab = Slab::new(0, 1, [4, 4, 4]);
        let ly = slab.global[1];
        let x = vec![3.0, 0.2, 3.0, 3.0, ly - 0.2, 3.0];
        let nc = vec![1u32, 1];
        let nl = vec![1u32, 0];
        let mut f = vec![0.0; 6];
        compute_lj(&slab, &x, 2, &nc, &nl, 1, 6.25, &mut f);
        assert!(f[1] != 0.0, "periodic pair must interact");
    }

    #[test]
    fn verlet_roundtrip_conserves_energy_shortterm() {
        // Single LJ pair integrated briefly: energy drift must be small.
        let (slab, mut x, nc, nl) = pair_setup(1.3);
        let mut v = vec![0.0; 6];
        let mut f = vec![0.0; 6];
        let dt = 0.001;
        let pe0 = compute_lj(&slab, &x, 2, &nc, &nl, 1, 6.25, &mut f);
        let e0 = pe0 + kinetic_energy(&v, 2);
        for _ in 0..200 {
            initial_integrate(&mut x, &mut v, &f, 2, dt);
            let _ = compute_lj(&slab, &x, 2, &nc, &nl, 1, 6.25, &mut f);
            final_integrate(&mut v, &f, 2, dt);
        }
        let pe = compute_lj(&slab, &x, 2, &nc, &nl, 1, 6.25, &mut f);
        let e1 = pe + kinetic_energy(&v, 2);
        assert!(
            (e1 - e0).abs() < 1e-4 * e0.abs().max(1.0),
            "energy drift: {e0} -> {e1}"
        );
    }
}
