//! Binned neighbor-list construction (MiniMD's "Neighboring" phase).
//!
//! Owned and ghost atoms are sorted into spatial bins; each owned atom then
//! scans its 27 surrounding bins for partners within the neighbor cutoff.
//! Bins wrap periodically in y/z (ghosts only exist along the decomposed x
//! dimension); pair distances use minimum-image in y/z.

use crate::minimd::atoms::Slab;

/// Bin-grid geometry for one rank's slab plus its x ghost shell.
#[derive(Clone, Copy, Debug)]
pub struct BinGrid {
    pub nbx: usize,
    pub nby: usize,
    pub nbz: usize,
    pub origin_x: f64,
    pub size_x: f64,
    pub size_y: f64,
    pub size_z: f64,
}

impl BinGrid {
    /// Cover `[slab.xlo - cutneigh, slab.xhi + cutneigh]` in x and the full
    /// periodic box in y/z, with bins at least `cutneigh` wide.
    pub fn new(slab: &Slab, cutneigh: f64) -> Self {
        let span_x = slab.width() + 2.0 * cutneigh;
        let nbx = (span_x / cutneigh).floor().max(1.0) as usize;
        let nby = (slab.global[1] / cutneigh).floor().max(1.0) as usize;
        let nbz = (slab.global[2] / cutneigh).floor().max(1.0) as usize;
        BinGrid {
            nbx,
            nby,
            nbz,
            origin_x: slab.xlo - cutneigh,
            size_x: span_x / nbx as f64,
            size_y: slab.global[1] / nby as f64,
            size_z: slab.global[2] / nbz as f64,
        }
    }

    pub fn total_bins(&self) -> usize {
        self.nbx * self.nby * self.nbz
    }

    /// A safe per-bin atom capacity for the given number density: small
    /// boxes produce few, large bins, so capacity must follow bin volume.
    pub fn suggested_bin_cap(&self, density: f64) -> usize {
        let vol = self.size_x * self.size_y * self.size_z;
        ((vol * density * 3.0) as usize).max(32)
    }

    /// Bin coordinates of a position (x clamped, y/z wrapped).
    #[inline]
    pub fn coords_of(&self, p: &[f64]) -> (usize, usize, usize) {
        let bx = (((p[0] - self.origin_x) / self.size_x) as isize).clamp(0, self.nbx as isize - 1)
            as usize;
        let by = ((p[1] / self.size_y) as isize).rem_euclid(self.nby as isize) as usize;
        let bz = ((p[2] / self.size_z) as isize).rem_euclid(self.nbz as isize) as usize;
        (bx, by, bz)
    }

    #[inline]
    pub fn index(&self, bx: usize, by: usize, bz: usize) -> usize {
        (bx * self.nby + by) * self.nbz + bz
    }

    /// Distinct wrapped indices for `{c-1, c, c+1}` in a periodic dimension
    /// of `n` bins (deduplicated so small boxes don't double-count).
    fn periodic_span(c: usize, n: usize) -> impl Iterator<Item = usize> {
        let mut out = [usize::MAX; 3];
        let mut len = 0;
        for d in -1i64..=1 {
            let w = (c as i64 + d).rem_euclid(n as i64) as usize;
            if !out[..len].contains(&w) {
                out[len] = w;
                len += 1;
            }
        }
        out.into_iter().take(len)
    }

    /// Clamped (non-periodic) x-span.
    fn clamped_span(c: usize, n: usize) -> impl Iterator<Item = usize> {
        let lo = c.saturating_sub(1);
        let hi = (c + 1).min(n - 1);
        lo..=hi
    }
}

/// Sort all `nall` atoms (owned + ghosts) into bins.
///
/// `bin_count[b]` receives the number of atoms in bin `b`; `bin_atoms` is a
/// `total_bins × bin_cap` table of atom indices. Panics if a bin overflows —
/// sizing bins for the configured density is the caller's responsibility.
pub fn build_bins(
    grid: &BinGrid,
    x: &[f64],
    nall: usize,
    bin_count: &mut [u32],
    bin_atoms: &mut [u32],
    bin_cap: usize,
) {
    assert!(bin_count.len() >= grid.total_bins(), "bin_count too small");
    assert!(
        bin_atoms.len() >= grid.total_bins() * bin_cap,
        "bin_atoms too small"
    );
    bin_count[..grid.total_bins()].fill(0);
    for i in 0..nall {
        let p = &x[3 * i..3 * i + 3];
        let (bx, by, bz) = grid.coords_of(p);
        let b = grid.index(bx, by, bz);
        let c = bin_count[b] as usize;
        assert!(c < bin_cap, "bin {b} overflow (cap {bin_cap})");
        bin_atoms[b * bin_cap + c] = i as u32;
        bin_count[b] += 1;
    }
}

/// Build full neighbor lists for the `nlocal` owned atoms.
///
/// `neigh_list` is an `nlocal × maxneigh` table; `neigh_count[i]` is atom
/// `i`'s neighbor count. Each list is sorted by the partner's *global atom
/// id* (position bits break ties between periodic images of the same atom),
/// so force summation order — and therefore the floating-point trajectory —
/// is independent of bin traversal and ghost arrival order. This is what
/// makes a restored run bitwise-identical to an uninterrupted one.
/// Returns the total number of pairs (for tests).
#[allow(clippy::too_many_arguments)]
pub fn build_neighbors(
    grid: &BinGrid,
    slab: &Slab,
    x: &[f64],
    ids: &[u64],
    nlocal: usize,
    bin_count: &[u32],
    bin_atoms: &[u32],
    bin_cap: usize,
    cutneigh_sq: f64,
    neigh_count: &mut [u32],
    neigh_list: &mut [u32],
    maxneigh: usize,
) -> usize {
    let mut total = 0usize;
    for i in 0..nlocal {
        let pi = &x[3 * i..3 * i + 3];
        let (bx, by, bz) = grid.coords_of(pi);
        let mut n = 0u32;
        for wx in BinGrid::clamped_span(bx, grid.nbx) {
            for wy in BinGrid::periodic_span(by, grid.nby) {
                for wz in BinGrid::periodic_span(bz, grid.nbz) {
                    let b = grid.index(wx, wy, wz);
                    for k in 0..bin_count[b] as usize {
                        let j = bin_atoms[b * bin_cap + k] as usize;
                        if j == i {
                            continue;
                        }
                        let dx = pi[0] - x[3 * j];
                        let dy = slab.min_image(pi[1] - x[3 * j + 1], 1);
                        let dz = slab.min_image(pi[2] - x[3 * j + 2], 2);
                        let r2 = dx * dx + dy * dy + dz * dz;
                        if r2 <= cutneigh_sq {
                            assert!(
                                (n as usize) < maxneigh,
                                "neighbor overflow for atom {i} (cap {maxneigh})"
                            );
                            neigh_list[i * maxneigh + n as usize] = j as u32;
                            n += 1;
                        }
                    }
                }
            }
        }
        // Canonical order: ascending (partner id, partner x bits).
        let list = &mut neigh_list[i * maxneigh..i * maxneigh + n as usize];
        list.sort_unstable_by_key(|&j| (ids[j as usize], x[3 * j as usize].to_bits()));
        neigh_count[i] = n;
        total += n as usize;
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::minimd::atoms::{generate_slab_atoms, lattice_constant, Slab};

    fn flat_positions(cells: [usize; 3]) -> (Slab, Vec<f64>, usize) {
        let slab = Slab::new(0, 1, cells);
        let atoms = generate_slab_atoms(0, 1, cells);
        let n = atoms.len();
        let mut x = vec![0.0; 3 * n];
        for (i, a) in atoms.iter().enumerate() {
            x[3 * i..3 * i + 3].copy_from_slice(&a.pos);
        }
        (slab, x, n)
    }

    #[test]
    fn bins_cover_all_atoms() {
        let (slab, x, n) = flat_positions([3, 3, 3]);
        let grid = BinGrid::new(&slab, 2.8);
        let cap = grid.suggested_bin_cap(crate::minimd::atoms::DENSITY);
        let mut bc = vec![0u32; grid.total_bins()];
        let mut ba = vec![0u32; grid.total_bins() * cap];
        build_bins(&grid, &x, n, &mut bc, &mut ba, cap);
        let binned: u32 = bc.iter().sum();
        assert_eq!(binned as usize, n);
    }

    #[test]
    fn neighbor_counts_match_brute_force() {
        let (slab, x, n) = flat_positions([3, 3, 3]);
        let cut = 2.8f64;
        let grid = BinGrid::new(&slab, cut);
        let cap = grid.suggested_bin_cap(crate::minimd::atoms::DENSITY);
        let maxneigh = 160;
        let mut bc = vec![0u32; grid.total_bins()];
        let mut ba = vec![0u32; grid.total_bins() * cap];
        build_bins(&grid, &x, n, &mut bc, &mut ba, cap);
        let mut ncount = vec![0u32; n];
        let mut nlist = vec![0u32; n * maxneigh];
        let ids: Vec<u64> = (0..n as u64).collect();
        build_neighbors(
            &grid,
            &slab,
            &x,
            &ids,
            n,
            &bc,
            &ba,
            cap,
            cut * cut,
            &mut ncount,
            &mut nlist,
            maxneigh,
        );

        // Brute force with y/z minimum image (single rank: x is NOT
        // periodic through ghosts here, so restrict check to central atoms
        // away from the x boundary).
        let a = lattice_constant();
        for i in 0..n {
            let px = x[3 * i];
            if px < cut || px > slab.global[0] - cut {
                continue;
            }
            let mut brute = 0u32;
            for j in 0..n {
                if i == j {
                    continue;
                }
                let dx = x[3 * i] - x[3 * j];
                let dy = slab.min_image(x[3 * i + 1] - x[3 * j + 1], 1);
                let dz = slab.min_image(x[3 * i + 2] - x[3 * j + 2], 2);
                if dx * dx + dy * dy + dz * dz <= cut * cut {
                    brute += 1;
                }
            }
            assert_eq!(ncount[i], brute, "atom {i} at x={px:.2} (lattice a={a:.3})");
        }
    }

    #[test]
    fn neighbor_lists_are_symmetric_for_interior() {
        let (slab, x, n) = flat_positions([3, 3, 3]);
        let cut = 2.8f64;
        let grid = BinGrid::new(&slab, cut);
        let cap = grid.suggested_bin_cap(crate::minimd::atoms::DENSITY);
        let maxneigh = 160;
        let mut bc = vec![0u32; grid.total_bins()];
        let mut ba = vec![0u32; grid.total_bins() * cap];
        build_bins(&grid, &x, n, &mut bc, &mut ba, cap);
        let mut ncount = vec![0u32; n];
        let mut nlist = vec![0u32; n * maxneigh];
        let ids: Vec<u64> = (0..n as u64).collect();
        build_neighbors(
            &grid,
            &slab,
            &x,
            &ids,
            n,
            &bc,
            &ba,
            cap,
            cut * cut,
            &mut ncount,
            &mut nlist,
            maxneigh,
        );
        let has = |i: usize, j: usize| {
            nlist[i * maxneigh..i * maxneigh + ncount[i] as usize].contains(&(j as u32))
        };
        for i in 0..n {
            if x[3 * i] < cut || x[3 * i] > slab.global[0] - cut {
                continue;
            }
            for k in 0..ncount[i] as usize {
                let j = nlist[i * maxneigh + k] as usize;
                if x[3 * j] < cut || x[3 * j] > slab.global[0] - cut {
                    continue;
                }
                assert!(has(j, i), "pair ({i},{j}) not symmetric");
            }
        }
    }

    #[test]
    fn small_periodic_dims_do_not_double_count() {
        // 2 bins in y/z: the ±1 spans overlap and must be deduplicated.
        let (slab, x, n) = flat_positions([3, 2, 2]);
        let cut = 2.8f64;
        let grid = BinGrid::new(&slab, cut);
        assert!(grid.nby <= 2 && grid.nbz <= 2);
        let cap = grid.suggested_bin_cap(crate::minimd::atoms::DENSITY);
        let maxneigh = 256;
        let mut bc = vec![0u32; grid.total_bins()];
        let mut ba = vec![0u32; grid.total_bins() * cap];
        build_bins(&grid, &x, n, &mut bc, &mut ba, cap);
        let mut ncount = vec![0u32; n];
        let mut nlist = vec![0u32; n * maxneigh];
        let ids: Vec<u64> = (0..n as u64).collect();
        build_neighbors(
            &grid,
            &slab,
            &x,
            &ids,
            n,
            &bc,
            &ba,
            cap,
            cut * cut,
            &mut ncount,
            &mut nlist,
            maxneigh,
        );
        // No duplicate entries in any list.
        for i in 0..n {
            let mut l: Vec<u32> = nlist[i * maxneigh..i * maxneigh + ncount[i] as usize].to_vec();
            let before = l.len();
            l.sort_unstable();
            l.dedup();
            assert_eq!(l.len(), before, "atom {i} has duplicate neighbors");
        }
    }
}
