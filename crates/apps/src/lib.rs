//! The paper's two evaluation applications.
//!
//! * [`heatdis`] — the VeloC heat-distribution benchmark, "modified to use
//!   Kokkos for parallelism control": a 2-D Jacobi stencil with row-block
//!   decomposition and halo exchange, in a fixed-iteration variant and a
//!   converge-until-threshold variant (for the partial-rollback
//!   demonstration). Checkpoints contain only the primary grid — half of
//!   the application's data, matching the paper's setup.
//! * [`minimd`] — a faithful miniature of Sandia's MiniMD molecular
//!   dynamics mini-app: FCC-lattice Lennard-Jones atoms, binned neighbor
//!   lists, velocity-Verlet integration, slab decomposition with atom
//!   exchange and ghost halos, instrumented into the paper's three phases
//!   (Force Compute / Neighboring / Communicator), plus the view inventory
//!   (checkpointed / alias / skipped) behind Figure 7.
//!
//! Both implement [`resilience::IterativeApp`], so they run unmodified under
//! every strategy in the matrix.

pub mod heatdis;
pub mod minimd;

pub use heatdis::Heatdis;
pub use minimd::MiniMd;
