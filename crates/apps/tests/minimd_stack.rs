//! MiniMD over the full stack: physics sanity, recovery exactness, and the
//! Figure 7 view-classification statistics.

use std::sync::Arc;

use apps::MiniMd;
use cluster::{Cluster, ClusterConfig, RelaunchModel, TimeScale};
use kokkos_resilience::{BackendKind, CheckpointFilter, Context, ContextConfig, ViewClass};
use resilience::{run_experiment, Bookkeeper, ExperimentConfig, IterativeApp, Strategy};
use simmpi::{FaultPlan, MpiResult, Profile, Universe, UniverseConfig};

fn cluster(n: usize) -> Cluster {
    let cfg = ClusterConfig {
        nodes: n,
        ranks_per_node: 1,
        time_scale: TimeScale::instant(),
        relaunch: RelaunchModel::free(),
        ..ClusterConfig::default()
    };
    Cluster::new(cfg)
}

fn cfg(strategy: Strategy, spares: usize) -> ExperimentConfig {
    ExperimentConfig {
        backend: Default::default(),
        strategy,
        spares,
        checkpoints: 4,
        max_relaunches: 4,
        imr_policy: None,
        redundancy: None,
        fresh_storage: true,
        telemetry: None,
    }
}

const CELLS: [usize; 3] = [3, 3, 3];
const ITERS: u64 = 20;

#[test]
fn minimd_runs_and_conserves_energy_roughly() {
    // Total energy (pe + ke summed over ranks) must not blow up over a
    // short NVE run — a strong end-to-end physics check.
    use resilience::RankApp;
    use simmpi::ReduceOp;

    let c = cluster(2);
    let report = Universe::launch(
        &c,
        UniverseConfig::default(),
        Arc::new(FaultPlan::none()),
        |ctx| {
            let app = MiniMd::new(CELLS, 40);
            let comm = ctx.world().clone();
            let bk = Bookkeeper::new(Arc::new(Profile::new()));
            let mut st = app.state_for(&comm);
            let mut energies = Vec::new();
            for i in 0..40u64 {
                st.step(&comm, i, &bk)?;
                let local = st.views().pe.read_uncaptured()[0] + st.views().ke.read_uncaptured()[0];
                // ke is refreshed every thermo_every steps; sample there.
                if (i % 10) == 0 {
                    let total = comm.allreduce_scalar(local, ReduceOp::Sum)?;
                    energies.push(total);
                }
            }
            let e0 = energies[1];
            let e1 = *energies.last().unwrap();
            assert!(
                (e1 - e0).abs() < 0.05 * e0.abs().max(1.0),
                "energy drift too large: {e0} -> {e1}"
            );
            Ok(())
        },
    );
    assert!(report.all_ok(), "{:?}", report.outcomes);
}

#[test]
fn minimd_failure_free_equivalence() {
    let reference = run_experiment(
        &cluster(4),
        &MiniMd::new(CELLS, ITERS),
        &cfg(Strategy::Unprotected, 0),
        Arc::new(FaultPlan::none()),
    )
    .digest;
    for strategy in [Strategy::KokkosResilience, Strategy::FenixKokkosResilience] {
        let (nodes, spares) = if strategy.uses_fenix() {
            (5, 1)
        } else {
            (4, 0)
        };
        let rec = run_experiment(
            &cluster(nodes),
            &MiniMd::new(CELLS, ITERS),
            &cfg(strategy, spares),
            Arc::new(FaultPlan::none()),
        );
        assert_eq!(rec.digest, reference, "{strategy}");
    }
}

#[test]
fn minimd_recovery_is_bitwise_exact() {
    let reference = run_experiment(
        &cluster(4),
        &MiniMd::new(CELLS, ITERS),
        &cfg(Strategy::Unprotected, 0),
        Arc::new(FaultPlan::none()),
    )
    .digest;
    for strategy in [
        Strategy::FenixKokkosResilience,
        Strategy::FenixVeloc,
        Strategy::FenixImr,
    ] {
        let rec = run_experiment(
            &cluster(5),
            &MiniMd::new(CELLS, ITERS),
            &cfg(strategy, 1),
            // Checkpoints at 4,9,14,19; die at 13 (~95% of 10..14).
            Arc::new(FaultPlan::kill_at(2, "iter", 13)),
        );
        assert!(rec.repairs >= 1, "{strategy}");
        assert_eq!(
            rec.digest, reference,
            "{strategy} trajectory diverged after recovery"
        );
    }
}

#[test]
fn minimd_view_inventory_matches_paper_figure7() {
    // The §VI.E statistics: 61 view objects — 39 checkpointed, 3 aliases,
    // 19 skipped duplicates — with one view holding the bulk of the data.
    let c = cluster(2);
    let report = Universe::launch(
        &c,
        UniverseConfig::default(),
        Arc::new(FaultPlan::none()),
        |ctx| -> MpiResult<()> {
            let app = MiniMd::new(CELLS, 4);
            let comm = ctx.world().clone();
            let bk = Bookkeeper::new(Arc::new(Profile::new()));
            let mut st = app.init_rank(ctx, &comm);
            let kr = Context::new(
                ctx.cluster(),
                comm.clone(),
                ContextConfig {
                    name: "fig7".into(),
                    filter: CheckpointFilter::Never,
                    backend: BackendKind::VelocSingle,
                    aliases: app.alias_labels(),
                },
            );
            kr.checkpoint("loop", 0, || st.step(&comm, 0, &bk))?;
            let stats = kr.region_stats("loop").expect("region detected");

            assert_eq!(stats.total_views(), 61, "total view objects");
            assert_eq!(stats.count(ViewClass::Checkpointed), 39);
            assert_eq!(stats.count(ViewClass::Alias), 3);
            assert_eq!(stats.count(ViewClass::Skipped), 19);

            // "A single view contains the majority of the data" — the
            // largest checkpointed view dominates the checkpointed bytes.
            let max_view = stats
                .views
                .iter()
                .filter(|v| v.class == ViewClass::Checkpointed)
                .map(|v| v.meta.bytes)
                .max()
                .unwrap();
            assert!(
                max_view as f64 > 0.3 * stats.bytes(ViewClass::Checkpointed) as f64,
                "largest view should dominate"
            );
            // Skipped views represent real memory (duplicated big arrays).
            assert!(stats.bytes(ViewClass::Skipped) > stats.bytes(ViewClass::Alias) / 2);
            Ok(())
        },
    );
    assert!(report.all_ok(), "{:?}", report.outcomes);
}
