//! Heatdis over the full resilience stack: strategy equivalence, recovery
//! correctness, and the partial-rollback speedup the paper reports.

use std::sync::Arc;

use apps::Heatdis;
use cluster::{Cluster, ClusterConfig, RelaunchModel, TimeScale};
use resilience::{run_experiment, ExperimentConfig, Strategy};
use simmpi::FaultPlan;

fn cluster(n: usize) -> Cluster {
    let cfg = ClusterConfig {
        nodes: n,
        ranks_per_node: 1,
        time_scale: TimeScale::instant(),
        relaunch: RelaunchModel::free(),
        ..ClusterConfig::default()
    };
    Cluster::new(cfg)
}

fn cfg(strategy: Strategy, spares: usize) -> ExperimentConfig {
    ExperimentConfig {
        backend: Default::default(),
        strategy,
        spares,
        checkpoints: 6,
        max_relaunches: 4,
        imr_policy: None,
        redundancy: None,
        fresh_storage: true,
        telemetry: None,
    }
}

const BYTES: usize = 2 * 8 * 64 * 24; // 24 rows × 64 cols × 2 buffers
const ITERS: u64 = 30;

fn reference_digest(ranks: usize) -> u64 {
    let rec = run_experiment(
        &cluster(ranks),
        &Heatdis::fixed(BYTES, 64, ITERS),
        &cfg(Strategy::Unprotected, 0),
        Arc::new(FaultPlan::none()),
    );
    rec.digest
}

#[test]
fn heatdis_failure_free_equivalence() {
    let reference = reference_digest(4);
    for strategy in [
        Strategy::VelocOnly,
        Strategy::KokkosResilience,
        Strategy::FenixVeloc,
        Strategy::FenixKokkosResilience,
        Strategy::FenixImr,
    ] {
        let (nodes, spares) = if strategy.uses_fenix() {
            (5, 1)
        } else {
            (4, 0)
        };
        let rec = run_experiment(
            &cluster(nodes),
            &Heatdis::fixed(BYTES, 64, ITERS),
            &cfg(strategy, spares),
            Arc::new(FaultPlan::none()),
        );
        assert_eq!(rec.digest, reference, "{strategy}");
        assert_eq!(rec.iterations, ITERS, "{strategy}");
    }
}

#[test]
fn heatdis_recovery_is_bitwise_exact() {
    let reference = reference_digest(4);
    // Failure at iteration 23 — ~95% of the 20..24 checkpoint interval.
    for strategy in [
        Strategy::KokkosResilience,
        Strategy::FenixKokkosResilience,
        Strategy::FenixImr,
    ] {
        let (nodes, spares) = if strategy.uses_fenix() {
            (5, 1)
        } else {
            (4, 0)
        };
        let rec = run_experiment(
            &cluster(nodes),
            &Heatdis::fixed(BYTES, 64, ITERS),
            &cfg(strategy, spares),
            Arc::new(FaultPlan::kill_at(2, "iter", 23)),
        );
        assert_eq!(rec.digest, reference, "{strategy} diverged after recovery");
        if strategy.uses_fenix() {
            assert_eq!(rec.relaunches, 0, "{strategy}");
            assert!(rec.repairs >= 1, "{strategy}");
        } else {
            assert_eq!(rec.relaunches, 1, "{strategy}");
        }
    }
}

#[test]
fn heatdis_converges_under_partial_rollback() {
    // Small grid: Jacobi needs O(N²) sweeps, so convergence tests use a
    // 32×16 global grid (8 rows × 16 cols per rank across 4 ranks).
    let app = Heatdis::converging(2 * 8 * 16 * 8, 16, 3000).with_eps(0.5);
    let c = cluster(5);
    let free = run_experiment(
        &c,
        &app,
        &cfg(Strategy::FenixKokkosResilience, 1),
        Arc::new(FaultPlan::none()),
    );
    assert!(
        free.iterations > 10 && free.iterations < 3000,
        "failure-free run converged in {} iterations",
        free.iterations
    );

    let kill_at = free.iterations * 3 / 4;
    let partial = run_experiment(
        &c,
        &app,
        &cfg(Strategy::PartialRollback, 1),
        Arc::new(FaultPlan::kill_at(1, "iter", kill_at)),
    );
    assert!(partial.repairs >= 1);
    assert!(partial.iterations < 3000, "partial rollback converged");

    let full = run_experiment(
        &c,
        &app,
        &cfg(Strategy::FenixKokkosResilience, 1),
        Arc::new(FaultPlan::kill_at(1, "iter", kill_at)),
    );
    assert!(full.repairs >= 1);
    assert!(full.iterations < 3000, "full rollback converged");

    // The paper's §VI.D.2: survivors keeping in-progress data cuts the
    // post-failure work — partial rollback needs no more total iterations
    // than full rollback.
    assert!(
        partial.iterations <= full.iterations,
        "partial ({}) should not exceed full ({})",
        partial.iterations,
        full.iterations
    );
}

#[test]
fn heatdis_checkpoint_is_half_app_data() {
    // The checkpointed view (primary buffer) is half of per-rank app data.
    let app = Heatdis::fixed(BYTES, 64, 4);
    let rows = app.rows_per_rank();
    let ckpt_bytes = (rows + 2) * 64 * 8;
    assert!((ckpt_bytes as f64) / (BYTES as f64) > 0.4);
    assert!((ckpt_bytes as f64) / (BYTES as f64) < 0.6);
}

#[test]
fn heatdis_is_decomposition_invariant() {
    // The same global grid computed on 1 rank and on 4 ranks must produce
    // bitwise-identical fields: halo exchange is exact communication, not
    // an approximation.
    use resilience::{Bookkeeper, RankApp};
    use simmpi::{Profile, Universe, UniverseConfig};
    use std::sync::Mutex;

    let cols = 32;
    let rows_per_rank = 8;
    let iters = 25u64;

    let run = |ranks: usize| -> Vec<f64> {
        let app = Heatdis::fixed(2 * 8 * cols * rows_per_rank * 4 / ranks, cols, iters);
        let field = Mutex::new(vec![Vec::new(); ranks]);
        let report = Universe::launch(
            &cluster(ranks),
            UniverseConfig::default(),
            Arc::new(FaultPlan::none()),
            |ctx| {
                let comm = ctx.world().clone();
                let bk = Bookkeeper::new(Arc::new(Profile::new()));
                let mut st = app.state_for(&comm);
                for i in 0..iters {
                    st.step(&comm, i, &bk)?;
                }
                field.lock().unwrap()[comm.rank()] = st.owned_field();
                Ok(())
            },
        );
        assert!(report.all_ok());
        field.into_inner().unwrap().concat()
    };

    let serial = run(1);
    let parallel = run(4);
    assert_eq!(serial.len(), parallel.len());
    for (i, (a, b)) in serial.iter().zip(&parallel).enumerate() {
        assert_eq!(a.to_bits(), b.to_bits(), "cell {i}: {a} vs {b}");
    }
}
