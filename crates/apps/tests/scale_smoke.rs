//! 1,024-rank weak-scaling smoke on the DES backend (ISSUE 9 satellite):
//! a full Heatdis + Fenix/KR run with one injected failure at four-digit
//! rank counts, on virtual time. The thread-per-rank backend at this scale
//! would contend 1k OS threads against a handful of cores; under the
//! deterministic scheduler exactly one rank runs at a time, so the run
//! completes in tier-1 time and its schedule is a pure function of the
//! seed.
//!
//! `SCALE_RANKS` overrides the rank count for deeper sweeps, e.g.
//! `SCALE_RANKS=4096 cargo test -q -p apps --release --test scale_smoke`.

use std::sync::Arc;

use apps::Heatdis;
use cluster::{Cluster, ClusterConfig, RelaunchModel};
use resilience::{run_experiment, ExperimentConfig, Strategy};
use simmpi::{Backend, FaultPlan};

fn ranks() -> usize {
    std::env::var("SCALE_RANKS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1024)
}

/// 8 ranks per node, virtual time: node topology (buddy placement, NIC
/// sharing) is exercised at scale, not just flat rank counts.
fn virtual_cluster(total_ranks: usize) -> Cluster {
    Cluster::new(ClusterConfig {
        nodes: total_ranks.div_ceil(8),
        ranks_per_node: 8,
        virtual_time: true,
        relaunch: RelaunchModel::free(),
        ..ClusterConfig::default()
    })
}

#[test]
fn heatdis_1k_ranks_with_failure_completes_deterministically() {
    let active = ranks();
    let spares = 8; // one spare node
    let app = Heatdis::fixed(2 * 8 * 16 * 8, 16, 8);
    let cfg = ExperimentConfig {
        strategy: Strategy::FenixKokkosResilience,
        spares,
        checkpoints: 2,
        backend: Backend::Des { seed: 1024 },
        ..ExperimentConfig::default()
    };
    let run = || {
        run_experiment(
            &virtual_cluster(active + spares),
            &app,
            &cfg,
            // One failure past the first checkpoint, in the middle of the
            // rank grid.
            Arc::new(FaultPlan::kill_at(active / 2, "iter", 5)),
        )
    };
    let rec = run();
    // The EXPERIMENTS.md weak-scaling panel is this line at several
    // SCALE_RANKS values (run with `--nocapture`).
    println!(
        "scale_smoke: ranks={} virtual_wall={:?} repairs={} digest={:#x}",
        rec.ranks, rec.wall, rec.repairs, rec.digest
    );
    assert_eq!(rec.ranks, active + spares);
    assert_eq!(rec.failures, 1);
    assert!(
        rec.repairs >= 1,
        "the kill must have been repaired in place"
    );
    assert_eq!(rec.iterations, 8, "recovered run must reach the last step");
    // Same seed, same schedule: the recovered digest replays exactly.
    let again = run();
    assert_eq!(rec.digest, again.digest, "digest must replay bit-for-bit");
    assert_eq!(rec.wall, again.wall, "virtual wall time must replay");
}
