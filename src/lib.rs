//! # layered-resilience
//!
//! Umbrella crate for the Rust reproduction of *Integrating process,
//! control-flow, and data resiliency layers using a hybrid Fenix/Kokkos
//! approach* (IEEE CLUSTER 2022).
//!
//! The system is a set of cooperating runtimes, one per resilience layer,
//! plus the integration protocol that is the paper's contribution:
//!
//! * [`fenix`] — **process** resilience: spare ranks, a resilient
//!   communicator that survives rank failures, a single control-flow exit
//!   point, and in-memory-redundancy (buddy) checkpoint storage.
//! * [`kokkos_resilience`] — **control-flow** resilience: checkpoint regions
//!   wrapped in closures, automatic detection of the [`kokkos`] views a
//!   region uses, checkpoint-interval filters, and pluggable data backends.
//! * [`veloc`] — **data** resilience: asynchronous multi-tier
//!   checkpoint/restart (node-local scratch + parallel filesystem), in
//!   collective or non-collective ("single") mode.
//! * [`resilience`] — the glue: the strategy matrix of the paper's §V and
//!   the integrated Fenix + Kokkos Resilience + VeloC run loop of Figure 4.
//!
//! Substrates (pure simulation; see `DESIGN.md` for the substitution table):
//!
//! * [`simmpi`] — simulated MPI with ULFM fault-tolerance semantics and
//!   fault injection.
//! * [`cluster`] — modeled interconnect / parallel filesystem / node scratch
//!   with real contention via bandwidth governors.
//! * [`kokkos`] — labelled views and parallel patterns.
//! * [`apps`] — the paper's two evaluation applications, Heatdis and MiniMD.
//! * [`telemetry`] — cross-layer observability: structured event log,
//!   span timers backing the cost categories, metrics, and trace exporters
//!   (JSONL / Chrome `trace_event` / failure timeline).
//!
//! ## Quickstart
//!
//! See `examples/quickstart.rs` for the Figure 4 pattern: a resilient
//! iteration loop that survives a mid-run rank failure.

pub use apps;
pub use cluster;
pub use fenix;
pub use kokkos;
pub use kokkos_resilience;
pub use resilience;
pub use simmpi;
pub use telemetry;
pub use veloc;

/// Crate version, for reports.
pub const VERSION: &str = env!("CARGO_PKG_VERSION");

#[cfg(test)]
mod tests {
    #[test]
    fn version_is_set() {
        assert!(!super::VERSION.is_empty());
    }
}
